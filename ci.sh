#!/usr/bin/env bash
# Offline CI gate for the TVS workspace. The environment has no network
# access, so every cargo invocation runs with --offline; the workspace has
# no external dependencies, making that a no-op resolver-wise.
set -euxo pipefail

cd "$(dirname "$0")"

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Microbench smoke: the incremental simulation kernel must evaluate fewer
# gates than full sweeps on the largest profile (s38417), with bit-identical
# outputs. Writes BENCH_sim.json; exits nonzero on any regression.
cargo run -q -p tvs-bench --release --offline --bin simbench

# Static analysis (tvs-lint): fails on any deny-level diagnostic.
# Engine 2 (source determinism lint) over the workspace tree:
cargo run -q -p tvs-lint --release --offline --bin tvs-lint -- --workspace --format json
# Engine 1 (IR design rules) + the SCOAP testability dataflow (TB001-TB003)
# over every built-in circuit profile:
cargo run -q --release --offline --bin tvs -- lint --testability --profiles > /dev/null

# Abstract interpretation of emitted programs: stitch a tester program for
# every built-in profile and require each to be SP006-clean (no capture may
# depend on unestablished power-up state; `tvs lint --program` exits
# nonzero on any deny). The six small profiles run to completion; the
# larger ones run under a deterministic work budget, stopping at a stage
# boundary with a valid partial program — same interpreter contract, and
# the budget is work units, so the emitted program is machine-independent.
PROGS=$(mktemp -d)
TVS=./target/release/tvs
emit_and_interpret() { # <profile> [--budget N]
  local p=$1; shift
  "$TVS" gen "$p" "$PROGS/$p.bench" > /dev/null
  "$TVS" program "$PROGS/$p.bench" "$PROGS/$p.tvp" "$@"
  "$TVS" lint --program "$PROGS/$p.tvp" "$p" > "$PROGS/$p.lint"
}
for p in s444 s526 s641 s953 s1196 s1423; do
  emit_and_interpret "$p"
done
emit_and_interpret s5378  --budget 4000000
emit_and_interpret s9234  --budget 8000000
for p in s13207 s15850; do
  emit_and_interpret "$p" --budget 16000000
done
for p in s35932 s38417 s38584; do
  emit_and_interpret "$p" --budget 24000000
done
# Guard against catalog drift: the calls above must cover every profile.
test "$(ls "$PROGS"/*.tvp | wc -l)" = "$(grep -c 'name: "' crates/circuits/src/profiles.rs)"
rm -rf "$PROGS"

# Serve smoke: start the daemon on a loopback port, drive a job through
# submit/wait/fetch with the client binary, check the warm path is a cache
# hit with byte-identical bytes, then shut down and assert a clean drain.
SMOKE=$(mktemp -d)
ADDR=""
cargo run -q --release --offline --bin tvs -- gen s444 "$SMOKE/s444.bench"
cargo run -q --release --offline --bin tvs -- serve --listen 127.0.0.1:0 \
  --cache-dir "$SMOKE/cache" --workers 2 --queue 8 > "$SMOKE/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^tvs-serve: listening on //p' "$SMOKE/serve.log")
  if [ -n "$ADDR" ]; then break; fi
  sleep 0.1
done
test -n "$ADDR"
client() { cargo run -q --release --offline -p tvs-serve --bin tvs-client -- --addr "$ADDR" "$@"; }
client submit --wait --fetch --out "$SMOKE/artifact.json" "$SMOKE/s444.bench"
# Capture before grepping: grep -q closes the pipe at first match, and under
# pipefail the client's SIGPIPE would read as a stage failure.
client submit --fetch --out "$SMOKE/artifact2.json" "$SMOKE/s444.bench" > "$SMOKE/resubmit.out"
grep -q cache-hit "$SMOKE/resubmit.out"
cmp "$SMOKE/artifact.json" "$SMOKE/artifact2.json"
client stats > "$SMOKE/stats.out"
grep -q '"serve.engine_runs":1' "$SMOKE/stats.out"

# Admission smoke: a deny-level netlist (combinational cycle) is rejected
# with the typed wire code before any engine run; the resubmit is answered
# from the rejection cache; the engine-run count is untouched.
printf 'INPUT(a)\nOUTPUT(y)\nb = AND(a, c)\nc = NOT(b)\ny = AND(a, b)\n' \
  > "$SMOKE/cyclic.bench"
client lint "$SMOKE/cyclic.bench" > "$SMOKE/lint.out"
grep -q 'admitted false' "$SMOKE/lint.out"
grep -q 'IR004' "$SMOKE/lint.out"
if client submit "$SMOKE/cyclic.bench" 2> "$SMOKE/reject1.err"; then
  echo "deny-level submit was admitted" >&2; exit 1
fi
grep -q '\[rejected\]' "$SMOKE/reject1.err"
if client submit "$SMOKE/cyclic.bench" 2> "$SMOKE/reject2.err"; then
  echo "deny-level resubmit was admitted" >&2; exit 1
fi
grep -q '\[rejected\]' "$SMOKE/reject2.err"
client stats > "$SMOKE/stats2.out"
grep -q '"serve.engine_runs":1' "$SMOKE/stats2.out"
grep -q '"serve.rejected":1' "$SMOKE/stats2.out"
grep -q '"serve.rejected_cache_hits":1' "$SMOKE/stats2.out"

client shutdown
wait "$SERVE_PID"
grep -q "drained, exiting" "$SMOKE/serve.log"
rm -rf "$SMOKE"

# Fleet smoke: two workers sharing a cache dir behind the coordinator.
# Kill the job's home worker mid-run and assert the retried artifact is
# byte-identical to a cold single-serve reference, the fleet-wide engine
# run count is exact, the warm path is a cache hit, and shutdown drains
# the survivors. Workers run as direct binaries (not via cargo run) so the
# kill reaches the process that holds the job.
FLEET=$(mktemp -d)
TVS=./target/release/tvs
TVS_CLIENT=./target/release/tvs-client
"$TVS" gen s1423 "$FLEET/s1423.bench"
"$TVS" gen s444 "$FLEET/s444.bench"
await_addr() { # <logfile> <prefix> — poll for the "listening on" line
  local addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n "s/^$2: listening on //p" "$1")
    if [ -n "$addr" ]; then break; fi
    sleep 0.1
  done
  test -n "$addr"
  echo "$addr"
}

# Reference artifacts from a solo daemon with its own cold cache.
"$TVS" serve --listen 127.0.0.1:0 --cache-dir "$FLEET/ref-cache" \
  --workers 2 > "$FLEET/ref.log" &
REF_PID=$!
REF_ADDR=$(await_addr "$FLEET/ref.log" tvs-serve)
"$TVS_CLIENT" --addr "$REF_ADDR" submit --wait --fetch \
  --out "$FLEET/ref-s1423.json" --seed 3 "$FLEET/s1423.bench"
"$TVS_CLIENT" --addr "$REF_ADDR" submit --wait --fetch \
  --out "$FLEET/ref-s444.json" --seed 3 "$FLEET/s444.bench"
"$TVS_CLIENT" --addr "$REF_ADDR" shutdown
wait "$REF_PID"

# The fleet: two workers, one shared cache, the coordinator in front.
"$TVS" serve --listen 127.0.0.1:0 --cache-dir "$FLEET/cache" \
  --workers 2 --checkpoint-every 4 > "$FLEET/w1.log" &
W1_PID=$!
"$TVS" serve --listen 127.0.0.1:0 --cache-dir "$FLEET/cache" \
  --workers 2 --checkpoint-every 4 > "$FLEET/w2.log" &
W2_PID=$!
W1_ADDR=$(await_addr "$FLEET/w1.log" tvs-serve)
W2_ADDR=$(await_addr "$FLEET/w2.log" tvs-serve)
"$TVS" fleet --listen 127.0.0.1:0 --workers "$W1_ADDR,$W2_ADDR" \
  > "$FLEET/fleet.log" &
COORD_PID=$!
FLEET_ADDR=$(await_addr "$FLEET/fleet.log" tvs-fleet)
fclient() { "$TVS_CLIENT" --addr "$FLEET_ADDR" "$@"; }

# Submit the slow job, map its home worker from the coordinator's routing
# line to a PID, and kill that worker mid-run.
fclient submit --seed 3 "$FLEET/s1423.bench" > "$FLEET/submit.out"
JOB=$(sed -n 's/^job \([^ ]*\) admission.*/\1/p' "$FLEET/submit.out")
test -n "$JOB"
HOME_ADDR=""
for _ in $(seq 1 100); do
  HOME_ADDR=$(sed -n "s/^tvs-fleet: job $JOB key .* -> worker //p" "$FLEET/fleet.log")
  if [ -n "$HOME_ADDR" ]; then break; fi
  sleep 0.1
done
test -n "$HOME_ADDR"
if [ "$HOME_ADDR" = "$W1_ADDR" ]; then
  DOOMED_PID=$W1_PID SURVIVOR_PID=$W2_PID
else
  DOOMED_PID=$W2_PID SURVIVOR_PID=$W1_PID
fi
kill -9 "$DOOMED_PID"
wait "$DOOMED_PID" || true

# The blocked wait survives the death: the coordinator marks the worker
# dead and replays the job on the ring successor.
fclient wait "$JOB" > "$FLEET/wait.out"
grep -q "state \"done\"" "$FLEET/wait.out"
grep -q "retry -> worker" "$FLEET/fleet.log"
fclient fetch "$JOB" --out "$FLEET/fleet-s1423.json"
cmp "$FLEET/ref-s1423.json" "$FLEET/fleet-s1423.json"

# A second job routes around the dead worker and matches its reference.
fclient submit --wait --fetch --out "$FLEET/fleet-s444.json" \
  --seed 3 "$FLEET/s444.bench"
cmp "$FLEET/ref-s444.json" "$FLEET/fleet-s444.json"

# Fleet-wide stats: exactly two engine runs across the surviving fleet
# (the dead worker's partial run died with it), and exactly one death.
fclient stats > "$FLEET/stats.out"
grep -q '"engine_runs":2' "$FLEET/stats.out"
grep -q '"worker_deaths":1' "$FLEET/stats.out"

# Warm resubmission through the coordinator is a cache hit.
fclient submit --seed 3 "$FLEET/s1423.bench" > "$FLEET/resubmit.out"
grep -q cache-hit "$FLEET/resubmit.out"

# Coordinator shutdown drains the coordinator and the surviving worker.
fclient shutdown
wait "$COORD_PID"
grep -q "drained, exiting" "$FLEET/fleet.log"
wait "$SURVIVOR_PID"
rm -rf "$FLEET"

# Delta smoke: incremental recompression through the daemon. Submit a base
# s1423, then a one-gate edit of it; the edit must land as a miss that
# reuses prescreen verdicts from the base's cone manifest
# (delta.faults_reused > 0) while its artifact stays byte-identical to a
# cold run of the same edit on a separate daemon with a cold cache.
DELTA=$(mktemp -d)
"$TVS" gen s1423 "$DELTA/s1423.bench"
# One-gate edit: flip the first AND to its same-arity dual. The gate keeps
# its name, so the edit dirties exactly the cones containing it.
sed '0,/ = AND(/s// = OR(/' "$DELTA/s1423.bench" > "$DELTA/s1423_edit.bench"
cmp -s "$DELTA/s1423.bench" "$DELTA/s1423_edit.bench" && exit 1

"$TVS" serve --listen 127.0.0.1:0 --cache-dir "$DELTA/ref-cache" \
  --workers 2 > "$DELTA/ref.log" &
REF_PID=$!
REF_ADDR=$(await_addr "$DELTA/ref.log" tvs-serve)
"$TVS_CLIENT" --addr "$REF_ADDR" submit --wait --fetch \
  --out "$DELTA/ref-edit.json" --seed 3 "$DELTA/s1423_edit.bench"
"$TVS_CLIENT" --addr "$REF_ADDR" shutdown
wait "$REF_PID"

"$TVS" serve --listen 127.0.0.1:0 --cache-dir "$DELTA/cache" \
  --workers 2 > "$DELTA/delta.log" &
DELTA_PID=$!
DELTA_ADDR=$(await_addr "$DELTA/delta.log" tvs-serve)
dclient() { "$TVS_CLIENT" --addr "$DELTA_ADDR" "$@"; }
dclient submit --wait --seed 3 "$DELTA/s1423.bench"
dclient submit --wait --fetch --out "$DELTA/delta-edit.json" \
  --seed 3 "$DELTA/s1423_edit.bench"
cmp "$DELTA/ref-edit.json" "$DELTA/delta-edit.json"
dclient stats > "$DELTA/stats.out"
grep -q '"delta.plans":1' "$DELTA/stats.out"
grep -q '"delta.faults_reused":[1-9]' "$DELTA/stats.out"
dclient shutdown
wait "$DELTA_PID"

# Cache hygiene: under a tiny byte cap the store evicts oldest-first
# (deterministic insertion order, no clock reads) and says so in the
# counters; the newest artifact always survives.
"$TVS" gen s444 "$DELTA/s444.bench"
"$TVS" serve --listen 127.0.0.1:0 --cache-dir "$DELTA/evict-cache" \
  --cache-cap-bytes 1024 --workers 2 > "$DELTA/evict.log" &
EVICT_PID=$!
EVICT_ADDR=$(await_addr "$DELTA/evict.log" tvs-serve)
for seed in 1 2 3; do
  "$TVS_CLIENT" --addr "$EVICT_ADDR" submit --wait --seed "$seed" \
    "$DELTA/s444.bench"
done
"$TVS_CLIENT" --addr "$EVICT_ADDR" stats > "$DELTA/evict-stats.out"
grep -q '"cache.evictions":[1-9]' "$DELTA/evict-stats.out"
test "$(ls "$DELTA/evict-cache"/*.json | wc -l)" -ge 1
"$TVS_CLIENT" --addr "$EVICT_ADDR" shutdown
wait "$EVICT_PID"
rm -rf "$DELTA"

# Delta-reuse gate: the reuse × edit-size table must be byte-reproducible,
# and a one-gate edit of the largest profile (s38417) must keep at least
# half of its fault classification reusable — the table is pure manifest
# arithmetic, so this gate is exactly deterministic.
DBENCH=$(mktemp -d)
"$TVS" bench delta --profiles s1423,s38417 --edits 1,8 --gate --floor 0.5 \
  --out "$DBENCH/a.json"
"$TVS" bench delta --profiles s1423,s38417 --edits 1,8 --gate --floor 0.5 \
  --out "$DBENCH/b.json"
cmp "$DBENCH/a.json" "$DBENCH/b.json"
rm -rf "$DBENCH"

# Strategy sweep gate: run the strategies × profiles Pareto bench twice on
# the three smallest profiles at a comfortable budget. `--gate` fails (exit
# 11) if any strategy's coverage drops strictly below the MostFaults
# baseline on the same profile; the cmp fails if the sweep is not
# byte-for-byte reproducible. (The tight default budget is not gated: there,
# prepare-heavy strategies legitimately trade coverage for budget — see
# EXPERIMENTS.md "Strategy Pareto sweep".)
SWEEP=$(mktemp -d)
"$TVS" bench strategies --profiles s444,s526,s641 --budget 200000 --gate \
  --out "$SWEEP/a.json"
"$TVS" bench strategies --profiles s444,s526,s641 --budget 200000 --gate \
  --out "$SWEEP/b.json"
cmp "$SWEEP/a.json" "$SWEEP/b.json"
rm -rf "$SWEEP"

# Chaos suite: deterministic fault injection (worker panics, PODEM abort
# storms, corrupted hidden-chain images, truncated inputs). The injection
# sites only exist in debug builds, so this stage runs unoptimized on
# purpose; release builds compile them out entirely.
cargo test -q --offline --test chaos
cargo test -q --offline --test checkpoint_resume

# Fuzz stage: bounded deterministic structured fuzzing of every input
# surface (.bench text, wire frames, .tvsnap checkpoints, and the whole
# run→checkpoint→resume pipeline). The seed schedule is a pure function of
# the base seed, so this stage either passes identically everywhere or
# fails printing a replayable seed (exit 10); corrupt-snapshot sweeps and
# the checked-in corpus ride along in the same stage.
for fuzz_target in bench frame snapshot e2e delta; do
  "$TVS" fuzz --target "$fuzz_target" --rounds 256 --base-seed 5707716
done
cargo test -q --offline --test snapshot_corrupt
cargo test -q --offline -p tvs-fuzz

cargo fmt --check
