#!/usr/bin/env bash
# Offline CI gate for the TVS workspace. The environment has no network
# access, so every cargo invocation runs with --offline; the workspace has
# no external dependencies, making that a no-op resolver-wise.
set -euxo pipefail

cd "$(dirname "$0")"

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Microbench smoke: the incremental simulation kernel must evaluate fewer
# gates than full sweeps on the largest profile (s38417), with bit-identical
# outputs. Writes BENCH_sim.json; exits nonzero on any regression.
cargo run -q -p tvs-bench --release --offline --bin simbench

# Static analysis (tvs-lint): fails on any deny-level diagnostic.
# Engine 2 (source determinism lint) over the workspace tree:
cargo run -q -p tvs-lint --release --offline --bin tvs-lint -- --workspace --format json
# Engine 1 (IR design rules) over every built-in circuit profile:
cargo run -q --release --offline --bin tvs -- lint --profiles > /dev/null

# Serve smoke: start the daemon on a loopback port, drive a job through
# submit/wait/fetch with the client binary, check the warm path is a cache
# hit with byte-identical bytes, then shut down and assert a clean drain.
SMOKE=$(mktemp -d)
ADDR=""
cargo run -q --release --offline --bin tvs -- gen s444 "$SMOKE/s444.bench"
cargo run -q --release --offline --bin tvs -- serve --listen 127.0.0.1:0 \
  --cache-dir "$SMOKE/cache" --workers 2 --queue 8 > "$SMOKE/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  ADDR=$(sed -n 's/^tvs-serve: listening on //p' "$SMOKE/serve.log")
  if [ -n "$ADDR" ]; then break; fi
  sleep 0.1
done
test -n "$ADDR"
client() { cargo run -q --release --offline -p tvs-serve --bin tvs-client -- --addr "$ADDR" "$@"; }
client submit --wait --fetch --out "$SMOKE/artifact.json" "$SMOKE/s444.bench"
# Capture before grepping: grep -q closes the pipe at first match, and under
# pipefail the client's SIGPIPE would read as a stage failure.
client submit --fetch --out "$SMOKE/artifact2.json" "$SMOKE/s444.bench" > "$SMOKE/resubmit.out"
grep -q cache-hit "$SMOKE/resubmit.out"
cmp "$SMOKE/artifact.json" "$SMOKE/artifact2.json"
client stats > "$SMOKE/stats.out"
grep -q '"serve.engine_runs":1' "$SMOKE/stats.out"
client shutdown
wait "$SERVE_PID"
grep -q "drained, exiting" "$SMOKE/serve.log"
rm -rf "$SMOKE"

# Chaos suite: deterministic fault injection (worker panics, PODEM abort
# storms, corrupted hidden-chain images, truncated inputs). The injection
# sites only exist in debug builds, so this stage runs unoptimized on
# purpose; release builds compile them out entirely.
cargo test -q --offline --test chaos
cargo test -q --offline --test checkpoint_resume

cargo fmt --check
