#!/usr/bin/env bash
# Offline CI gate for the TVS workspace. The environment has no network
# access, so every cargo invocation runs with --offline; the workspace has
# no external dependencies, making that a no-op resolver-wise.
set -euxo pipefail

cd "$(dirname "$0")"

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings
cargo fmt --check
