#!/usr/bin/env bash
# Offline CI gate for the TVS workspace. The environment has no network
# access, so every cargo invocation runs with --offline; the workspace has
# no external dependencies, making that a no-op resolver-wise.
set -euxo pipefail

cd "$(dirname "$0")"

cargo build --release --workspace --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Microbench smoke: the incremental simulation kernel must evaluate fewer
# gates than full sweeps on the largest profile (s38417), with bit-identical
# outputs. Writes BENCH_sim.json; exits nonzero on any regression.
cargo run -q -p tvs-bench --release --offline --bin simbench

# Static analysis (tvs-lint): fails on any deny-level diagnostic.
# Engine 2 (source determinism lint) over the workspace tree:
cargo run -q -p tvs-lint --release --offline --bin tvs-lint -- --workspace --format json
# Engine 1 (IR design rules) over every built-in circuit profile:
cargo run -q --release --offline --bin tvs -- lint --profiles > /dev/null

# Chaos suite: deterministic fault injection (worker panics, PODEM abort
# storms, corrupted hidden-chain images, truncated inputs). The injection
# sites only exist in debug builds, so this stage runs unoptimized on
# purpose; release builds compile them out entirely.
cargo test -q --offline --test chaos
cargo test -q --offline --test checkpoint_resume

cargo fmt --check
