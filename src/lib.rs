//! # tvs — Test Vector Stitching
//!
//! Facade crate for the TVS toolkit, a from-scratch Rust reproduction of
//! W. Rao & A. Orailoglu, *"Virtual Compression through Test Vector Stitching
//! for Scan Based Designs"*, DATE 2003.
//!
//! The toolkit is a layered DFT (design-for-test) stack:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | logic values | [`logic`] | three-valued logic, test cubes, bit vectors |
//! | circuits | [`netlist`] | gate-level netlists, `.bench` I/O, scan views |
//! | simulation | [`sim`] | 3-valued + 64-slot bit-parallel simulation |
//! | faults | [`fault`] | stuck-at model, collapsing, fault simulation, SCOAP |
//! | test generation | [`atpg`] | PODEM with pinned scan bits, compaction |
//! | scan mechanics | [`scan`] | partial shift, VXOR/HXOR, cost accounting |
//! | **stitching** | [`stitch`] | the paper's compression algorithm |
//! | delta reuse | [`delta`] | cone-level content addressing, manifests, incremental recompression |
//! | benchmarks | [`circuits`] | paper example + ISCAS89-calibrated profiles |
//! | virtual tester | [`ate`] | pin-accurate program execution, screening, diagnosis |
//! | execution | [`exec`] | deterministic work-stealing pool, counters, span timers |
//! | serving core | [`core`] | single-flight job table, content-addressed artifact cache, JSON model |
//! | serving | [`serve`] | batching TCP daemon speaking the versioned wire protocol |
//! | fleet | [`fleet`] | sharded coordinator: consistent hashing, health checks, retry on worker death |
//! | static analysis | [`lint`] | IR design-rule checks + source determinism lint |
//! | fuzzing | [`fuzz`] | deterministic structured fuzzing of every input surface |
//!
//! Failures from every layer funnel into the [`TvsError`] taxonomy, which
//! also defines the CLI's structured exit codes.
//!
//! # Quickstart
//!
//! ```
//! use tvs::circuits;
//! use tvs::stitch::{StitchConfig, StitchEngine};
//!
//! // The paper's Figure 1 circuit: 3 scan cells, 3 gates, no PIs/POs.
//! let netlist = circuits::fig1();
//! let report = StitchEngine::new(&netlist)?
//!     .run(&StitchConfig::default())?;
//! assert!(report.metrics.fault_coverage >= 1.0 - 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub use error::TvsError;

pub use tvs_ate as ate;
pub use tvs_atpg as atpg;
pub use tvs_bench as bench;
pub use tvs_circuits as circuits;
pub use tvs_core as core;
pub use tvs_delta as delta;
pub use tvs_exec as exec;
pub use tvs_fault as fault;
pub use tvs_fleet as fleet;
pub use tvs_fuzz as fuzz;
pub use tvs_lint as lint;
pub use tvs_logic as logic;
pub use tvs_netlist as netlist;
pub use tvs_scan as scan;
pub use tvs_serve as serve;
pub use tvs_sim as sim;
pub use tvs_stitch as stitch;
