//! `tvs` — command-line front end for the test vector stitching toolkit.
//!
//! ```text
//! tvs stats   <circuit.bench>                circuit statistics
//! tvs faults  <circuit.bench>                collapsed fault list summary
//! tvs atpg    <circuit.bench>                conventional full-shift ATPG
//! tvs stitch  <circuit.bench> [options]      stitched test generation
//! tvs run     <circuit.bench> [options]      stitched generation with budgets
//!                                            and checkpoint/resume
//! tvs program <circuit.bench> <out.tvp>      stitch and export a tester program
//! tvs verify  <circuit.bench> <prog.tvp>     execute a program on the virtual ATE
//! tvs gen     <name|profile> <out.bench>     synthesize a calibrated benchmark
//! tvs lint    [options] [circuit.bench ...]  static analysis (IR + determinism)
//! tvs serve   --listen ADDR [options]        batching compression daemon with a
//!                                            content-addressed artifact cache
//! tvs fleet   --listen ADDR --workers a,b,…  sharded coordinator over several
//!                                            serve daemons with health checks
//! tvs fuzz    --target <t> [options]         deterministic structured fuzzing
//!                                            of the toolkit's input surfaces
//! ```
//!
//! Stitch options: `--vxor`, `--hxor <g>`, `--fixed <k>`,
//! `--select random|hardness|most|weighted`, `--seed <n>`, `--budget <n>`,
//! `--threads <n>` (also the `TVS_THREADS` environment variable), `--stats`.
//!
//! Every failure maps to a [`TvsError`] and its structured exit code
//! (2 usage, 3 malformed input, 4 engine, 5 snapshot, 6 I/O, 7 lint,
//! 8 serve, 9 fleet, 10 fuzz); exit code 1 stays reserved for panics.

use std::fs;
use std::process::ExitCode;
use std::str::FromStr;

use tvs::ate::{Dut, TestProgram, VirtualAte};
use tvs::atpg::{generate_tests, AtpgConfig};
use tvs::fault::FaultList;
use tvs::netlist::{bench, Netlist};
use tvs::scan::{CaptureTransform, ObserveTransform};
use tvs::stitch::{
    RunOptions, SelectionStrategy, ShiftPolicy, Snapshot, StitchConfig, StitchEngine, StitchReport,
    StrategyId, Termination,
};
use tvs::TvsError;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run() -> Result<(), TvsError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "stats" => stats(&args[1..]),
        "faults" => faults(&args[1..]),
        "atpg" => atpg(&args[1..]),
        "stitch" => stitch(&args[1..]),
        "run" => run_cmd(&args[1..]),
        "program" => program(&args[1..]),
        "verify" => verify(&args[1..]),
        "gen" => gen(&args[1..]),
        "lint" => lint(&args[1..]),
        "serve" => serve(&args[1..]),
        "fleet" => fleet(&args[1..]),
        "fuzz" => fuzz(&args[1..]),
        "bench" => bench_cmd(&args[1..]),
        _ => {
            print!("{USAGE}");
            Ok(())
        }
    }
}

const USAGE: &str = "\
tvs — test vector stitching toolkit (DATE 2003 reproduction)

  tvs stats   <circuit.bench>              circuit statistics
  tvs faults  <circuit.bench>              collapsed fault list summary
  tvs atpg    <circuit.bench>              conventional full-shift ATPG
  tvs stitch  <circuit.bench> [options]    stitched test generation
  tvs run     <circuit.bench> [options]    stitched generation with budgets
                                           and checkpoint/resume
  tvs program <circuit.bench> <out.tvp>    stitch and export a tester program
  tvs verify  <circuit.bench> <prog.tvp>   run a program on the virtual ATE
  tvs gen     <profile> <out.bench>        synthesize a calibrated benchmark
  tvs lint    [options] [circuit.bench …]  static analysis (IR + determinism)
  tvs serve   --listen ADDR [options]      batching compression daemon
  tvs fleet   --listen ADDR --workers a,b  sharded coordinator over several
                                           serve daemons
  tvs fuzz    --target <t> [options]       deterministic structured fuzzing of
                                           the toolkit's input surfaces
  tvs bench strategies [options]           strategies × profiles sweep with
                                           per-profile compression/coverage
                                           Pareto fronts
  tvs bench delta [options]                delta-reuse ratio × edit size table
                                           over the built-in profiles

lint options:
  --profiles           analyze every built-in circuit profile
  --workspace          run the source determinism lint over the source tree
  --root <dir>         workspace root for --workspace (default: .)
  --testability        add the SCOAP testability dataflow (TB001-TB003)
  --deny-unobservable  escalate TB003 (unobservable net) to deny level
  --scores <file>      write per-net SCOAP scores as JSON (implies --testability)
  --program <p.tvp>    abstract-interpret a tester program (SP006/SP007)
                       against one circuit (.bench path or profile name)
  --format <f>         text | json   (default: text)
  (no arguments at all: --profiles --workspace)

stitch options (also accepted by run and program):
  --vxor            vertical-XOR capture (paper Fig. 3)
  --hxor <g>        horizontal-XOR observation with g taps (paper Fig. 4)
  --fixed <k>       fixed shift size instead of the variable policy
  --select <s>      random | hardness | most | weighted   (default: most;
                    legacy spelling of --strategy)
  --strategy <s>    random | hardness | most | weighted | adi |
                    scheme-search | buckets   (default: most)
  --seed <n>        RNG seed
  --budget <n>      work budget in deterministic work units (backtracks,
                    simulation slots, cycles — never wall clock); on
                    exhaustion the run stops at a stage boundary with a
                    valid partial program and the residual fault list
  --threads <n>     worker threads (default: TVS_THREADS env, then all cores;
                    results are bit-identical at any thread count)
  --stats           print instrumentation counters and span timers after the run

run options:
  --checkpoint-every <n>   write a checkpoint snapshot every n cycles
  --checkpoint <file>      snapshot path (default: <circuit.bench>.tvsnap)
  --resume <file>          resume from a snapshot; the continued run is
                           bit-identical to one that never stopped
  --stats-json <file>      write the instrumentation report as JSON (the
                           same serializer behind the daemon's stats op)
  --cache-dir <dir>        artifact cache for cone manifests (default:
                           tvs-cache); the run stores its own manifest there
  --delta-from <key>       reuse prescreen verdicts from the cached cone
                           manifest with this 16-hex artifact key; any
                           mismatch falls back to a cold run with a notice,
                           and the result is byte-identical either way

serve options:
  --listen <addr>          TCP address to bind, e.g. 127.0.0.1:7077 (:0 picks
                           a free port; the bound address is printed)
  --cache-dir <dir>        artifact cache directory (default: tvs-cache)
  --workers <n>            engine worker threads (default: 2)
  --queue <n>              max open jobs before submits get busy (default: 64)
  --checkpoint-every <n>   snapshot running jobs every n cycles (default: 8)
  --cache-cap-bytes <n>    evict oldest cached artifacts once the cache
                           exceeds n bytes (default: 0 = unbounded)
  --client-quota <n>       max open jobs per client id (default: 0 = none;
                           anonymous submissions are exempt)

fleet options:
  --listen <addr>            TCP address to bind (:0 picks a free port; the
                             bound address is printed)
  --workers <a,b,…>          comma-separated worker daemon addresses (required)
  --vnodes <n>               virtual nodes per worker on the hash ring
                             (default: 64)
  --health-interval-ms <n>   pause between health-probe sweeps (default: 500)
  --probe-timeout-ms <n>     connect/read timeout for probes and quick
                             forwarded ops (default: 1000)
  --fail-threshold <n>       consecutive probe failures that mark a worker
                             dead (default: 2)
  --cache-cap-bytes <n>      broadcast this artifact-cache byte cap to every
                             worker at startup (default: 0 = leave workers'
                             own caps in place)

fuzz options:
  --target <t>      bench | frame | snapshot | e2e | delta | all   (required)
  --rounds <n>      schedule-driven rounds per target (default: 256)
  --base-seed <n>   base of the deterministic seed schedule (default: 5707716)
  --seed-hex <hex>  replay one seed given as hex bytes (overrides --rounds)
  --seed-file <f>   replay one corpus seed file (hex with # comments)

bench strategies options:
  --out <f>         report path (default: BENCH_strategies.json); the file is
                    byte-identical across reruns with the same options
  --profiles <a,b>  comma-separated profile names (default: all 13)
  --budget <n>      deterministic work budget per run (default: 20000)
  --scale <f>       gate-count scaling factor (default: 0.08)
  --threads <n>     worker threads per run (default: 1; results identical)
  --gate            fail (exit 11) if any strategy's coverage falls below
                    the most-faults baseline column on any profile

bench delta options:
  --out <f>         report path (default: BENCH_delta.json); byte-identical
                    across reruns with the same options
  --profiles <a,b>  comma-separated profile names (default: all 13)
  --edits <a,b>     comma-separated edit sizes in flipped gates
                    (default: 1,2,4,8)
  --scale <f>       gate-count scaling factor (default: 1.0)
  --floor <f>       one-gate reuse-ratio floor for --gate (default: 0.5)
  --gate            fail (exit 11) if any profile's one-gate edit reuses no
                    faults or falls below the floor

exit codes: 0 ok · 2 usage · 3 bad input · 4 engine · 5 snapshot · 6 io ·
7 lint · 8 serve · 9 fleet · 10 fuzz · 11 bench gate (1 stays reserved for
panics)
";

fn load(path: &str) -> Result<Netlist, TvsError> {
    let text = fs::read_to_string(path).map_err(|e| TvsError::io(path, e))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Ok(bench::parse(name, &text)?)
}

fn need<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, TvsError> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| TvsError::usage(format!("missing {what}")))
}

/// Parses a `--option value` operand, mapping malformed values to a usage
/// error naming the option.
fn parse_value<T: FromStr>(args: &[String], i: usize, what: &str) -> Result<T, TvsError> {
    let text = need(args, i, what)?;
    text.parse()
        .map_err(|_| TvsError::usage(format!("malformed {what} {text:?}")))
}

fn stats(args: &[String]) -> Result<(), TvsError> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    println!("{netlist}");
    println!("{}", netlist.stats());
    let view = netlist.scan_view()?;
    println!(
        "full-scan view: {} inputs -> {} outputs, depth {}",
        view.input_count(),
        view.output_count(),
        view.depth()
    );
    Ok(())
}

fn faults(args: &[String]) -> Result<(), TvsError> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let full = FaultList::full(&netlist);
    let collapsed = FaultList::collapsed(&netlist);
    println!(
        "{}: {} faults in the universe, {} after equivalence collapsing ({:.1}%)",
        netlist.name(),
        full.len(),
        collapsed.len(),
        100.0 * collapsed.len() as f64 / full.len().max(1) as f64
    );
    Ok(())
}

fn atpg(args: &[String]) -> Result<(), TvsError> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let set = generate_tests(&netlist, &AtpgConfig::default())?;
    println!(
        "{}: {} vectors, coverage {:.4}, {} redundant, {} aborted",
        netlist.name(),
        set.len(),
        set.fault_coverage,
        set.redundant.len(),
        set.aborted.len()
    );
    Ok(())
}

/// Parsed stitch-family options: the engine configuration plus whether the
/// `--stats` instrumentation report was requested.
struct StitchOpts {
    config: StitchConfig,
    stats: bool,
}

fn stitch_config(args: &[String]) -> Result<StitchOpts, TvsError> {
    let mut config = StitchConfig {
        threads: tvs::exec::default_threads(),
        ..StitchConfig::default()
    };
    let mut stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--vxor" => config.capture = CaptureTransform::VerticalXor,
            "--hxor" => {
                config.observe =
                    ObserveTransform::HorizontalXor(parse_value(args, i + 1, "tap count")?);
                i += 1;
            }
            "--fixed" => {
                config.policy = ShiftPolicy::Fixed(parse_value(args, i + 1, "shift size")?);
                i += 1;
            }
            "--select" => {
                let selection = match need(args, i + 1, "strategy")? {
                    "random" => SelectionStrategy::Random,
                    "hardness" => SelectionStrategy::Hardness,
                    "most" => SelectionStrategy::MostFaults,
                    "weighted" => SelectionStrategy::Weighted,
                    other => return Err(TvsError::usage(format!("unknown strategy {other:?}"))),
                };
                config.strategy = StrategyId::from_selection(selection);
                i += 1;
            }
            "--strategy" => {
                let name = need(args, i + 1, "strategy")?;
                config.strategy = StrategyId::parse(name).ok_or_else(|| {
                    TvsError::usage(format!(
                        "unknown strategy {name:?} (expected one of {})",
                        tvs::stitch::ALL_STRATEGIES.map(|s| s.name()).join(", ")
                    ))
                })?;
                i += 1;
            }
            "--seed" => {
                config.seed = parse_value(args, i + 1, "seed")?;
                i += 1;
            }
            "--budget" => {
                config.budget = Some(parse_value(args, i + 1, "work budget")?);
                i += 1;
            }
            "--threads" => {
                config.threads = parse_value::<usize>(args, i + 1, "thread count")?.max(1);
                i += 1;
            }
            "--stats" => stats = true,
            other if other.starts_with("--") => {
                return Err(TvsError::usage(format!("unknown option {other:?}")))
            }
            _ => {}
        }
        i += 1;
    }
    Ok(StitchOpts { config, stats })
}

/// Renders the common stitch-report block (`tvs stitch` and `tvs run` share
/// it, so the resume-equivalence guarantee is visible as identical stdout).
fn print_report(name: &str, report: &StitchReport) {
    println!("{}: {}", name, report.metrics);
    let tail = report
        .shifts
        .get(1..report.shifts.len().min(9))
        .unwrap_or(&[]);
    println!(
        "shift schedule: initial {} then {:?}… closing flush {}",
        report.shifts.first().copied().unwrap_or(0),
        tail,
        report.final_flush
    );
    let (entered, converted, erased) = report.hidden_transitions;
    println!("hidden faults: {entered} entered, {converted} caught, {erased} erased");
}

fn stitch(args: &[String]) -> Result<(), TvsError> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let opts = stitch_config(&args[1..])?;
    let engine = StitchEngine::new(&netlist)?;
    let report = engine.run(&opts.config)?;
    print_report(netlist.name(), &report);
    if opts.stats {
        print!("{}", tvs::exec::report());
    }
    Ok(())
}

fn run_cmd(args: &[String]) -> Result<(), TvsError> {
    let circuit_path = need(args, 0, "circuit path")?.to_owned();
    let netlist = load(&circuit_path)?;

    // Split the run-only options out; everything else is stitch options.
    let mut checkpoint_every = 0usize;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut stats_json_path: Option<String> = None;
    let mut delta_from: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut stitch_args: Vec<String> = Vec::new();
    let rest = &args[1..];
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--checkpoint-every" => {
                checkpoint_every = parse_value(rest, i + 1, "checkpoint interval")?;
                i += 1;
            }
            "--checkpoint" => {
                checkpoint_path = Some(need(rest, i + 1, "checkpoint path")?.to_owned());
                i += 1;
            }
            "--resume" => {
                resume_path = Some(need(rest, i + 1, "resume path")?.to_owned());
                i += 1;
            }
            "--stats-json" => {
                stats_json_path = Some(need(rest, i + 1, "stats json path")?.to_owned());
                i += 1;
            }
            "--delta-from" => {
                delta_from = Some(need(rest, i + 1, "ancestor artifact key")?.to_owned());
                i += 1;
            }
            "--cache-dir" => {
                cache_dir = Some(need(rest, i + 1, "cache directory")?.to_owned());
                i += 1;
            }
            other => stitch_args.push(other.to_owned()),
        }
        i += 1;
    }
    let opts = stitch_config(&stitch_args)?;

    let resume = match &resume_path {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| TvsError::io(path, e))?;
            Some(Snapshot::parse(&text)?)
        }
        None => None,
    };
    let checkpoint_path = checkpoint_path.unwrap_or_else(|| format!("{circuit_path}.tvsnap"));

    // Delta reuse is strictly best-effort: a missing store, absent or
    // corrupt manifest, or interface/config mismatch prints a notice and
    // the run proceeds cold. The result is byte-identical either way; only
    // the work done differs.
    let store = if delta_from.is_some() || cache_dir.is_some() {
        let dir = cache_dir.clone().unwrap_or_else(|| "tvs-cache".to_owned());
        match tvs::core::ArtifactStore::open(&dir) {
            Ok(store) => Some((store, dir)),
            Err(e) => {
                println!("delta: cache {dir} unavailable ({e}); running cold");
                None
            }
        }
    } else {
        None
    };
    let mut delta_applied: Option<(tvs::core::ArtifactKey, usize, usize)> = None;
    let prescreen_plan = match (&store, &delta_from) {
        (Some((store, dir)), Some(text)) => {
            let ancestor = tvs::core::ArtifactKey::parse(text).ok_or_else(|| {
                TvsError::usage(format!(
                    "malformed artifact key {text:?} (expected 16 hex digits)"
                ))
            })?;
            match load_delta_plan(store, ancestor, &netlist, &opts.config) {
                Ok(plan) => {
                    tvs::exec::counter("delta.plans").incr();
                    tvs::exec::counter("delta.cones_dirty").add(plan.cones_dirty as u64);
                    delta_applied = Some((ancestor, plan.faults_total, plan.cones_dirty));
                    Some(plan.plan)
                }
                Err(reason) => {
                    println!("delta: {reason} (ancestor {ancestor} in {dir}); running cold");
                    None
                }
            }
        }
        _ => None,
    };

    let engine = StitchEngine::new(&netlist)?;
    // Snapshots are written atomically (tmp + rename) so an interrupt mid-
    // write can never leave a truncated checkpoint behind; the checksum
    // line guards against everything else.
    let mut write_error: Option<TvsError> = None;
    let mut written = 0usize;
    let mut on_checkpoint = |snap: Snapshot| {
        if write_error.is_some() {
            return;
        }
        let tmp = format!("{checkpoint_path}.tmp");
        let result =
            fs::write(&tmp, snap.to_text()).and_then(|()| fs::rename(&tmp, &checkpoint_path));
        match result {
            Ok(()) => written += 1,
            Err(e) => write_error = Some(TvsError::io(&*checkpoint_path, e)),
        }
    };
    let mut trace: Option<tvs::stitch::PrescreenTrace> = None;
    let mut on_prescreen = |t: tvs::stitch::PrescreenTrace| trace = Some(t);
    let want_trace = store.is_some();
    let report = engine.run_with(
        &opts.config,
        RunOptions {
            resume,
            checkpoint_every,
            on_checkpoint: if checkpoint_every > 0 {
                Some(&mut on_checkpoint)
            } else {
                None
            },
            on_progress: None,
            prescreen_plan,
            on_prescreen: if want_trace {
                Some(&mut on_prescreen)
            } else {
                None
            },
        },
    )?;
    if let Some(e) = write_error {
        return Err(e);
    }

    if let Some(trace) = &trace {
        tvs::exec::counter("delta.faults_reused").add(trace.reused as u64);
        if let Some((ancestor, total, dirty)) = &delta_applied {
            println!(
                "delta: reused {}/{total} prescreen verdicts from {ancestor} ({dirty} cones dirty)",
                trace.reused
            );
        }
    }
    // Persist this run's own cone manifest so future edits can diff against
    // it. Resumed runs skip the prescreen (no trace) and store nothing.
    if let (Some((store, dir)), Some(trace)) = (&store, &trace) {
        let canonical = bench::to_string(&netlist);
        let key = tvs::core::SubmissionIdentity::of(&netlist, &canonical, &opts.config).key;
        match tvs::delta::ConeManifest::build(&netlist, opts.config.fingerprint(), &trace.records) {
            Ok(manifest) => match store.store_manifest(key, &manifest.to_text()) {
                Ok(()) => println!("delta: manifest for key {key} stored in {dir}"),
                Err(e) => println!("delta: manifest write failed ({e})"),
            },
            Err(e) => println!("delta: manifest build skipped ({e})"),
        }
    }

    print_report(netlist.name(), &report);
    match &report.termination {
        Termination::Complete => println!("termination: complete"),
        Termination::BudgetExhausted { residual } => println!(
            "termination: budget exhausted ({} residual faults; partial program is valid)",
            residual.len()
        ),
        Termination::WorkerPanic { message, residual } => println!(
            "termination: worker panic ({message}; {} residual faults; partial program is valid)",
            residual.len()
        ),
    }
    if written > 0 {
        println!("checkpoints: {written} written to {checkpoint_path}");
    }
    if opts.stats {
        print!("{}", tvs::exec::report());
    }
    if let Some(path) = stats_json_path {
        fs::write(&path, tvs::exec::report().to_json()).map_err(|e| TvsError::io(&path, e))?;
        println!("stats written to {path}");
    }
    Ok(())
}

/// Loads the ancestor manifest behind `--delta-from` and derives a prescreen
/// replay plan for this run's netlist. Every failure mode comes back as a
/// reason string for the cold-run notice — none of them is fatal.
fn load_delta_plan(
    store: &tvs::core::ArtifactStore,
    ancestor: tvs::core::ArtifactKey,
    netlist: &Netlist,
    config: &StitchConfig,
) -> Result<tvs::delta::DeltaPlan, String> {
    let text = store
        .load_manifest(ancestor)
        .map_err(|e| format!("manifest unreadable: {e}"))?
        .ok_or_else(|| "no manifest cached".to_owned())?;
    let manifest = tvs::delta::ConeManifest::parse(&text).map_err(|e| {
        tvs::exec::counter("delta.manifest_rejected").incr();
        format!("manifest rejected: {e}")
    })?;
    tvs::delta::plan_for(&manifest, netlist, config.fingerprint())
        .map_err(|e| format!("plan rejected: {e}"))
}

fn serve(args: &[String]) -> Result<(), TvsError> {
    let mut config = tvs::serve::ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                config.listen = need(args, i + 1, "listen address")?.to_owned();
                i += 1;
            }
            "--cache-dir" => {
                config.cache_dir = need(args, i + 1, "cache directory")?.into();
                i += 1;
            }
            "--workers" => {
                config.workers = parse_value::<usize>(args, i + 1, "worker count")?.max(1);
                i += 1;
            }
            "--queue" => {
                config.queue_capacity = parse_value::<usize>(args, i + 1, "queue capacity")?.max(1);
                i += 1;
            }
            "--checkpoint-every" => {
                config.checkpoint_every = parse_value(args, i + 1, "checkpoint interval")?;
                i += 1;
            }
            "--cache-cap-bytes" => {
                config.cache_cap_bytes = parse_value(args, i + 1, "cache cap")?;
                i += 1;
            }
            "--client-quota" => {
                config.client_quota = parse_value(args, i + 1, "client quota")?;
                i += 1;
            }
            other => return Err(TvsError::usage(format!("unknown serve option {other:?}"))),
        }
        i += 1;
    }
    let server = tvs::serve::Server::bind(&config)?;
    let addr = server.local_addr()?;
    // The smoke harness and scripts parse this line to learn the port.
    println!("tvs-serve: listening on {addr}");
    println!(
        "tvs-serve: cache {} · {} workers · queue {} · checkpoint every {} cycles",
        config.cache_dir.display(),
        config.workers,
        config.queue_capacity,
        config.checkpoint_every
    );
    if config.cache_cap_bytes > 0 {
        println!("tvs-serve: cache cap {} bytes", config.cache_cap_bytes);
    }
    if config.client_quota > 0 {
        println!(
            "tvs-serve: client quota {} open jobs per client",
            config.client_quota
        );
    }
    server.run()?;
    println!("tvs-serve: drained, exiting");
    Ok(())
}

fn fleet(args: &[String]) -> Result<(), TvsError> {
    let mut config = tvs::fleet::CoordinatorConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                config.listen = need(args, i + 1, "listen address")?.to_owned();
                i += 1;
            }
            "--workers" => {
                config.workers = need(args, i + 1, "worker address list")?
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(str::to_owned)
                    .collect();
                i += 1;
            }
            "--vnodes" => {
                config.vnodes = parse_value::<usize>(args, i + 1, "vnode count")?.max(1);
                i += 1;
            }
            "--health-interval-ms" => {
                let ms = parse_value::<u64>(args, i + 1, "health interval")?;
                config.health_interval = std::time::Duration::from_millis(ms.max(1));
                i += 1;
            }
            "--probe-timeout-ms" => {
                let ms = parse_value::<u64>(args, i + 1, "probe timeout")?;
                config.probe_timeout = std::time::Duration::from_millis(ms.max(1));
                i += 1;
            }
            "--fail-threshold" => {
                config.fail_threshold = parse_value::<u32>(args, i + 1, "fail threshold")?.max(1);
                i += 1;
            }
            "--cache-cap-bytes" => {
                config.cache_cap_bytes = parse_value(args, i + 1, "cache cap")?;
                i += 1;
            }
            other => return Err(TvsError::usage(format!("unknown fleet option {other:?}"))),
        }
        i += 1;
    }
    if config.workers.is_empty() {
        return Err(TvsError::usage(
            "fleet requires --workers with at least one worker address",
        ));
    }
    let coordinator = tvs::fleet::Coordinator::bind(&config)?;
    let addr = coordinator.local_addr()?;
    // The smoke harness and scripts parse this line to learn the port.
    println!("tvs-fleet: listening on {addr}");
    println!(
        "tvs-fleet: {} workers · {} vnodes/worker · probe every {}ms (timeout {}ms, threshold {})",
        config.workers.len(),
        config.vnodes,
        config.health_interval.as_millis(),
        config.probe_timeout.as_millis(),
        config.fail_threshold
    );
    if config.cache_cap_bytes > 0 {
        println!(
            "tvs-fleet: broadcasting cache cap {} bytes to workers",
            config.cache_cap_bytes
        );
    }
    coordinator.run()?;
    println!("tvs-fleet: drained, exiting");
    Ok(())
}

fn fuzz(args: &[String]) -> Result<(), TvsError> {
    let mut target: Option<String> = None;
    let mut rounds: u64 = 256;
    let mut base_seed: u64 = 0x5717C4;
    let mut seed_file: Option<String> = None;
    let mut seed_hex: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--target" => {
                target = Some(need(args, i + 1, "target name")?.to_owned());
                i += 1;
            }
            "--rounds" => {
                rounds = parse_value(args, i + 1, "round count")?;
                i += 1;
            }
            "--base-seed" => {
                base_seed = parse_value(args, i + 1, "base seed")?;
                i += 1;
            }
            "--seed-file" => {
                seed_file = Some(need(args, i + 1, "seed file path")?.to_owned());
                i += 1;
            }
            "--seed-hex" => {
                seed_hex = Some(need(args, i + 1, "seed hex")?.to_owned());
                i += 1;
            }
            other => return Err(TvsError::usage(format!("unknown fuzz option {other:?}"))),
        }
        i += 1;
    }
    let target = target.ok_or_else(|| {
        TvsError::usage("fuzz requires --target (bench, frame, snapshot, e2e, delta or all)")
    })?;
    let targets: Vec<&str> = if target == "all" {
        tvs::fuzz::TARGETS.to_vec()
    } else {
        match tvs::fuzz::TARGETS.iter().find(|t| **t == target) {
            Some(t) => vec![t],
            None => {
                return Err(TvsError::usage(format!(
                    "unknown fuzz target {target:?} (bench, frame, snapshot, e2e, delta, all)"
                )))
            }
        }
    };
    let replay_seed = match (&seed_file, &seed_hex) {
        (Some(_), Some(_)) => {
            return Err(TvsError::usage("--seed-file and --seed-hex are exclusive"))
        }
        (Some(path), None) => {
            let text = fs::read_to_string(path).map_err(|e| TvsError::io(path, e))?;
            Some(tvs::fuzz::parse_seed_text(&text).map_err(TvsError::usage)?)
        }
        (None, Some(hex)) => Some(tvs::fuzz::parse_seed_text(hex).map_err(TvsError::usage)?),
        (None, None) => None,
    };

    // The harness catches target panics, but the default panic hook would
    // still print a backtrace for each one; keep the loop quiet and restore
    // the hook afterwards so a genuine driver panic stays visible.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = fuzz_drive(&targets, replay_seed, rounds, base_seed);
    std::panic::set_hook(saved_hook);
    result
}

/// The fuzz loop proper: replay one seed, or drive `rounds` schedule seeds
/// per target. Any harness-contract failure prints the seed in replayable
/// form and exits with code 10.
fn fuzz_drive(
    targets: &[&str],
    replay_seed: Option<Vec<u8>>,
    rounds: u64,
    base_seed: u64,
) -> Result<(), TvsError> {
    use tvs::fuzz::{check, schedule_seed, seed_to_hex, Outcome};

    if let Some(seed) = replay_seed {
        for t in targets {
            match check(t, &seed) {
                Ok(outcome) => println!("{t}: {}", outcome.describe()),
                Err(failure) => {
                    eprintln!("{t}: seed {} failed", seed_to_hex(&seed));
                    return Err(failure.into());
                }
            }
        }
        return Ok(());
    }

    for t in targets {
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for round in 0..rounds {
            let seed = schedule_seed(base_seed, round);
            match check(t, &seed) {
                Ok(Outcome::Ok(_)) => accepted += 1,
                Ok(_) => rejected += 1,
                Err(failure) => {
                    let hex = seed_to_hex(&seed);
                    eprintln!("fuzz failure: target={t} round={round} seed={hex}");
                    eprintln!("replay with: tvs fuzz --target {t} --seed-hex {hex}");
                    return Err(failure.into());
                }
            }
        }
        println!(
            "{t}: {rounds} rounds (base seed {base_seed}) · {accepted} accepted · \
             {rejected} typed-error · 0 contract failures"
        );
    }
    Ok(())
}

fn program(args: &[String]) -> Result<(), TvsError> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let out = need(args, 1, "output path")?;
    let opts = stitch_config(&args[2..])?;
    let engine = StitchEngine::new(&netlist)?;
    let report = engine.run(&opts.config)?;
    let program = TestProgram::from_report(&netlist, &report, &opts.config);
    fs::write(out, program.to_text()).map_err(|e| TvsError::io(out, e))?;
    println!(
        "wrote {} ({} cycles, {} shift clocks; {})",
        out,
        program.cycles.len(),
        program.shift_cycles(),
        report.metrics
    );
    if opts.stats {
        print!("{}", tvs::exec::report());
    }
    Ok(())
}

fn verify(args: &[String]) -> Result<(), TvsError> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let path = need(args, 1, "program path")?;
    let text = fs::read_to_string(path).map_err(|e| TvsError::io(path, e))?;
    let program = TestProgram::parse(&text)?;
    let view = netlist.scan_view()?;
    let mut dut = Dut::new(&netlist, &view, program.capture, program.observe);
    let outcome = VirtualAte::execute(&program, &mut dut);
    println!("{outcome:?}");
    Ok(())
}

fn lint(args: &[String]) -> Result<(), TvsError> {
    use tvs::lint::{
        analyze_netlist, analyze_testability, analyze_trace, has_deny, render_json, render_text,
        testability_json, Diagnostic, IrGraph, Testability, TestabilityConfig,
    };

    let mut profiles = false;
    let mut workspace = false;
    let mut testability = false;
    let mut root = String::from(".");
    let mut json = false;
    let mut tb_config = TestabilityConfig::default();
    let mut scores_path: Option<String> = None;
    let mut program_path: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profiles" => profiles = true,
            "--workspace" => workspace = true,
            "--testability" => testability = true,
            "--deny-unobservable" => {
                testability = true;
                tb_config.deny_unobservable = true;
            }
            "--scores" => {
                testability = true;
                scores_path = Some(need(args, i + 1, "scores path")?.to_owned());
                i += 1;
            }
            "--program" => {
                program_path = Some(need(args, i + 1, "program path")?.to_owned());
                i += 1;
            }
            "--root" => {
                root = need(args, i + 1, "workspace root")?.to_owned();
                i += 1;
            }
            "--format" => {
                json = match need(args, i + 1, "format")? {
                    "text" => false,
                    "json" => true,
                    other => return Err(TvsError::usage(format!("unknown format {other:?}"))),
                };
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(TvsError::usage(format!("unknown option {other:?}")))
            }
            file => files.push(file.to_owned()),
        }
        i += 1;
    }
    // Bare `tvs lint` checks everything checkable without arguments.
    if !profiles && !workspace && files.is_empty() && program_path.is_none() {
        profiles = true;
        workspace = true;
    }

    // `--program <prog.tvp>` interprets a tester program against one
    // circuit (a `.bench` path or a built-in profile name).
    if let Some(path) = &program_path {
        let circuit = files
            .first()
            .ok_or_else(|| TvsError::usage("--program needs a circuit (.bench or profile)"))?;
        if files.len() > 1 {
            return Err(TvsError::usage("--program takes exactly one circuit"));
        }
        let netlist = match tvs::circuits::profile(circuit) {
            Some(profile) => profile.build(),
            None => load(circuit)?,
        };
        let text = fs::read_to_string(path).map_err(|e| TvsError::io(path, e))?;
        let program = TestProgram::parse(&text)?;
        let graph = IrGraph::from(&netlist);
        let diags = analyze_trace(&graph, &lower_program(&program));
        if json {
            print!("{}", render_json(&diags));
        } else {
            print!("{}", render_text(&diags));
        }
        if has_deny(&diags) {
            return Err(TvsError::Lint("deny-level diagnostics found".into()));
        }
        return Ok(());
    }

    // Each netlist under analysis, with its graph for the testability pass.
    let mut targets: Vec<Netlist> = Vec::new();
    for file in &files {
        targets.push(load(file)?);
    }
    if profiles {
        for profile in tvs::circuits::all_profiles() {
            targets.push(profile.build());
        }
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scores = String::new();
    for netlist in &targets {
        let graph = IrGraph::from(netlist);
        diags.extend(analyze_netlist(netlist));
        if testability {
            diags.extend(analyze_testability(&graph, &tb_config));
            if scores_path.is_some() {
                if let Some(t) = Testability::compute(&graph) {
                    scores.push_str(&testability_json(&graph, &t));
                }
            }
        }
    }
    if workspace {
        diags.extend(
            tvs::lint::lint_workspace(std::path::Path::new(&root))
                .map_err(|e| TvsError::io(&*root, e))?,
        );
    }
    if let Some(path) = &scores_path {
        fs::write(path, &scores).map_err(|e| TvsError::io(path, e))?;
        println!("testability scores written to {path}");
    }

    if json {
        print!("{}", render_json(&diags));
    } else {
        print!("{}", render_text(&diags));
    }
    if has_deny(&diags) {
        return Err(TvsError::Lint("deny-level diagnostics found".into()));
    }
    Ok(())
}

/// Lowers a tester program to the abstract interpreter's trace form: the
/// stimulus is copied bit for bit; expectations are dropped (the
/// interpreter derives its own).
fn lower_program(program: &TestProgram) -> tvs::lint::ProgramTrace {
    use tvs::logic::Logic;
    let bits = |bv: &tvs::logic::BitVec| -> Vec<Logic> { bv.iter().map(Logic::from).collect() };
    tvs::lint::ProgramTrace {
        capture: program.capture,
        observe: program.observe,
        cycles: program
            .cycles
            .iter()
            .map(|c| tvs::lint::TraceCycle {
                pi: bits(&c.pi),
                scan_in: bits(&c.scan_in),
            })
            .collect(),
        final_flush: program.expected_flush.len(),
    }
}

fn gen(args: &[String]) -> Result<(), TvsError> {
    let name = need(args, 0, "profile name")?;
    let out = need(args, 1, "output path")?;
    let profile = tvs::circuits::profile(name).ok_or_else(|| {
        TvsError::usage(format!(
            "unknown profile {name:?} (try s444, s1423, s5378, …)"
        ))
    })?;
    let netlist = profile.build();
    fs::write(out, bench::to_string(&netlist)).map_err(|e| TvsError::io(out, e))?;
    println!("wrote {out}: {netlist}");
    Ok(())
}

fn bench_cmd(args: &[String]) -> Result<(), TvsError> {
    match args.first().map(String::as_str) {
        Some("strategies") => bench_strategies(&args[1..]),
        Some("delta") => bench_delta(&args[1..]),
        Some(other) => Err(TvsError::usage(format!(
            "unknown bench experiment {other:?} (expected strategies or delta)"
        ))),
        None => Err(TvsError::usage("missing bench experiment name")),
    }
}

fn bench_strategies(args: &[String]) -> Result<(), TvsError> {
    use tvs::bench::strategies::{coverage_regressions, sweep, to_json, SweepOpts};

    let mut opts = SweepOpts::default();
    let mut out = "BENCH_strategies.json".to_owned();
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = need(args, i + 1, "output path")?.to_owned();
                i += 1;
            }
            "--profiles" => {
                opts.profiles = need(args, i + 1, "profile list")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
                i += 1;
            }
            "--budget" => {
                opts.budget = parse_value(args, i + 1, "work budget")?;
                i += 1;
            }
            "--scale" => {
                opts.scale = parse_value(args, i + 1, "scaling factor")?;
                i += 1;
            }
            "--threads" => {
                opts.threads = parse_value::<usize>(args, i + 1, "thread count")?.max(1);
                i += 1;
            }
            "--gate" => gate = true,
            other => return Err(TvsError::usage(format!("unknown option {other:?}"))),
        }
        i += 1;
    }
    let result = sweep(&opts).map_err(TvsError::usage)?;
    let json = to_json(&result);
    fs::write(&out, &json).map_err(|e| TvsError::io(&*out, e))?;
    println!(
        "wrote {out}: {} profiles x {} strategies",
        result.profiles.len(),
        result.profiles.first().map_or(0, |p| p.rows.len())
    );
    for profile in &result.profiles {
        let front: Vec<&str> = profile
            .rows
            .iter()
            .filter(|r| r.pareto)
            .map(|r| r.strategy)
            .collect();
        println!("  {:8} pareto: {}", profile.name, front.join(", "));
    }
    if gate {
        let regressions = coverage_regressions(&result);
        if !regressions.is_empty() {
            let mut lines = Vec::new();
            for (profile, strategy, got, baseline) in &regressions {
                lines.push(format!(
                    "{profile}/{strategy} coverage {got:.4} < most {baseline:.4}"
                ));
            }
            return Err(TvsError::Bench(format!(
                "coverage regression vs most-faults baseline: {}",
                lines.join("; ")
            )));
        }
    }
    Ok(())
}

fn bench_delta(args: &[String]) -> Result<(), TvsError> {
    use tvs::bench::delta::{reuse_failures, sweep, to_json, DeltaOpts};

    let mut opts = DeltaOpts::default();
    let mut out = "BENCH_delta.json".to_owned();
    let mut gate = false;
    let mut floor = 0.5f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = need(args, i + 1, "output path")?.to_owned();
                i += 1;
            }
            "--profiles" => {
                opts.profiles = need(args, i + 1, "profile list")?
                    .split(',')
                    .map(str::to_owned)
                    .collect();
                i += 1;
            }
            "--edits" => {
                opts.edits = need(args, i + 1, "edit size list")?
                    .split(',')
                    .map(|t| {
                        t.parse::<usize>()
                            .map_err(|_| TvsError::usage(format!("malformed edit size {t:?}")))
                    })
                    .collect::<Result<Vec<usize>, TvsError>>()?;
                i += 1;
            }
            "--scale" => {
                opts.scale = parse_value(args, i + 1, "scaling factor")?;
                i += 1;
            }
            "--floor" => {
                floor = parse_value(args, i + 1, "reuse floor")?;
                i += 1;
            }
            "--gate" => gate = true,
            other => return Err(TvsError::usage(format!("unknown option {other:?}"))),
        }
        i += 1;
    }
    let result = sweep(&opts).map_err(TvsError::usage)?;
    let json = to_json(&result);
    fs::write(&out, &json).map_err(|e| TvsError::io(&*out, e))?;
    println!(
        "wrote {out}: {} profiles x {} edit sizes",
        result.profiles.len(),
        opts.edits.len()
    );
    for profile in &result.profiles {
        let ratios: Vec<String> = profile
            .rows
            .iter()
            .map(|r| format!("{}:{:.2}", r.edits, r.reuse_ratio()))
            .collect();
        println!(
            "  {:8} {} gates, {} cones · reuse {}",
            profile.name,
            profile.gates,
            profile.cones,
            ratios.join(" ")
        );
    }
    if gate {
        let failures = reuse_failures(&result, floor);
        if !failures.is_empty() {
            let lines: Vec<String> = failures
                .iter()
                .map(|(profile, ratio)| format!("{profile} one-gate reuse {ratio:.4} < {floor}"))
                .collect();
            return Err(TvsError::Bench(format!(
                "delta reuse below floor: {}",
                lines.join("; ")
            )));
        }
    }
    Ok(())
}
