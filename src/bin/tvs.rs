//! `tvs` — command-line front end for the test vector stitching toolkit.
//!
//! ```text
//! tvs stats   <circuit.bench>                circuit statistics
//! tvs faults  <circuit.bench>                collapsed fault list summary
//! tvs atpg    <circuit.bench>                conventional full-shift ATPG
//! tvs stitch  <circuit.bench> [options]      stitched test generation
//! tvs program <circuit.bench> <out.tvp>      stitch and export a tester program
//! tvs verify  <circuit.bench> <prog.tvp>     execute a program on the virtual ATE
//! tvs gen     <name|profile> <out.bench>     synthesize a calibrated benchmark
//! tvs lint    [options] [circuit.bench ...]  static analysis (IR + determinism)
//! ```
//!
//! Stitch options: `--vxor`, `--hxor <g>`, `--fixed <k>`,
//! `--select random|hardness|most|weighted`, `--seed <n>`, `--threads <n>`
//! (also the `TVS_THREADS` environment variable), `--stats`.

use std::error::Error;
use std::fs;
use std::process::ExitCode;

use tvs::ate::{Dut, TestProgram, VirtualAte};
use tvs::atpg::{generate_tests, AtpgConfig};
use tvs::fault::FaultList;
use tvs::netlist::{bench, Netlist};
use tvs::scan::{CaptureTransform, ObserveTransform};
use tvs::stitch::{SelectionStrategy, ShiftPolicy, StitchConfig, StitchEngine};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "stats" => stats(&args[1..]),
        "faults" => faults(&args[1..]),
        "atpg" => atpg(&args[1..]),
        "stitch" => stitch(&args[1..]),
        "program" => program(&args[1..]),
        "verify" => verify(&args[1..]),
        "gen" => gen(&args[1..]),
        "lint" => lint(&args[1..]),
        _ => {
            print!("{}", USAGE);
            Ok(())
        }
    }
}

const USAGE: &str = "\
tvs — test vector stitching toolkit (DATE 2003 reproduction)

  tvs stats   <circuit.bench>              circuit statistics
  tvs faults  <circuit.bench>              collapsed fault list summary
  tvs atpg    <circuit.bench>              conventional full-shift ATPG
  tvs stitch  <circuit.bench> [options]    stitched test generation
  tvs program <circuit.bench> <out.tvp>    stitch and export a tester program
  tvs verify  <circuit.bench> <prog.tvp>   run a program on the virtual ATE
  tvs gen     <profile> <out.bench>        synthesize a calibrated benchmark
  tvs lint    [options] [circuit.bench …]  static analysis (IR + determinism)

lint options:
  --profiles        analyze every built-in circuit profile
  --workspace       run the source determinism lint over the source tree
  --root <dir>      workspace root for --workspace (default: .)
  --format <f>      text | json   (default: text)
  (no arguments at all: --profiles --workspace)

stitch options:
  --vxor            vertical-XOR capture (paper Fig. 3)
  --hxor <g>        horizontal-XOR observation with g taps (paper Fig. 4)
  --fixed <k>       fixed shift size instead of the variable policy
  --select <s>      random | hardness | most | weighted   (default: most)
  --seed <n>        RNG seed
  --threads <n>     worker threads (default: TVS_THREADS env, then all cores;
                    results are bit-identical at any thread count)
  --stats           print instrumentation counters and span timers after the run
";

fn load(path: &str) -> Result<Netlist, Box<dyn Error>> {
    let text = fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    Ok(bench::parse(name, &text)?)
}

fn need<'a>(args: &'a [String], i: usize, what: &str) -> Result<&'a str, Box<dyn Error>> {
    args.get(i)
        .map(String::as_str)
        .ok_or_else(|| format!("missing {what}").into())
}

fn stats(args: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    println!("{netlist}");
    println!("{}", netlist.stats());
    let view = netlist.scan_view()?;
    println!(
        "full-scan view: {} inputs -> {} outputs, depth {}",
        view.input_count(),
        view.output_count(),
        view.depth()
    );
    Ok(())
}

fn faults(args: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let full = FaultList::full(&netlist);
    let collapsed = FaultList::collapsed(&netlist);
    println!(
        "{}: {} faults in the universe, {} after equivalence collapsing ({:.1}%)",
        netlist.name(),
        full.len(),
        collapsed.len(),
        100.0 * collapsed.len() as f64 / full.len().max(1) as f64
    );
    Ok(())
}

fn atpg(args: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let set = generate_tests(&netlist, &AtpgConfig::default())?;
    println!(
        "{}: {} vectors, coverage {:.4}, {} redundant, {} aborted",
        netlist.name(),
        set.len(),
        set.fault_coverage,
        set.redundant.len(),
        set.aborted.len()
    );
    Ok(())
}

/// Parsed stitch-family options: the engine configuration plus whether the
/// `--stats` instrumentation report was requested.
struct StitchOpts {
    config: StitchConfig,
    stats: bool,
}

fn stitch_config(args: &[String]) -> Result<StitchOpts, Box<dyn Error>> {
    let mut config = StitchConfig {
        threads: tvs::exec::default_threads(),
        ..StitchConfig::default()
    };
    let mut stats = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--vxor" => config.capture = CaptureTransform::VerticalXor,
            "--hxor" => {
                config.observe =
                    ObserveTransform::HorizontalXor(need(args, i + 1, "tap count")?.parse()?);
                i += 1;
            }
            "--fixed" => {
                config.policy = ShiftPolicy::Fixed(need(args, i + 1, "shift size")?.parse()?);
                i += 1;
            }
            "--select" => {
                config.selection = match need(args, i + 1, "strategy")? {
                    "random" => SelectionStrategy::Random,
                    "hardness" => SelectionStrategy::Hardness,
                    "most" => SelectionStrategy::MostFaults,
                    "weighted" => SelectionStrategy::Weighted,
                    other => return Err(format!("unknown strategy {other:?}").into()),
                };
                i += 1;
            }
            "--seed" => {
                config.seed = need(args, i + 1, "seed")?.parse()?;
                i += 1;
            }
            "--threads" => {
                config.threads = need(args, i + 1, "thread count")?.parse::<usize>()?.max(1);
                i += 1;
            }
            "--stats" => stats = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}").into())
            }
            _ => {}
        }
        i += 1;
    }
    Ok(StitchOpts { config, stats })
}

fn stitch(args: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let opts = stitch_config(&args[1..])?;
    let engine = StitchEngine::new(&netlist)?;
    let report = engine.run(&opts.config)?;
    println!("{}: {}", netlist.name(), report.metrics);
    println!(
        "shift schedule: initial {} then {:?}… closing flush {}",
        report.shifts.first().copied().unwrap_or(0),
        &report.shifts[1..report.shifts.len().min(9)],
        report.final_flush
    );
    let (entered, converted, erased) = report.hidden_transitions;
    println!("hidden faults: {entered} entered, {converted} caught, {erased} erased");
    if opts.stats {
        print!("{}", tvs::exec::report());
    }
    Ok(())
}

fn program(args: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let out = need(args, 1, "output path")?;
    let opts = stitch_config(&args[2..])?;
    let engine = StitchEngine::new(&netlist)?;
    let report = engine.run(&opts.config)?;
    let program = TestProgram::from_report(&netlist, &report, &opts.config);
    fs::write(out, program.to_text())?;
    println!(
        "wrote {} ({} cycles, {} shift clocks; {})",
        out,
        program.cycles.len(),
        program.shift_cycles(),
        report.metrics
    );
    if opts.stats {
        print!("{}", tvs::exec::report());
    }
    Ok(())
}

fn verify(args: &[String]) -> Result<(), Box<dyn Error>> {
    let netlist = load(need(args, 0, "circuit path")?)?;
    let text = fs::read_to_string(need(args, 1, "program path")?)?;
    let program = TestProgram::parse(&text)?;
    let view = netlist.scan_view()?;
    let mut dut = Dut::new(&netlist, &view, program.capture, program.observe);
    let outcome = VirtualAte::execute(&program, &mut dut);
    println!("{outcome:?}");
    Ok(())
}

fn lint(args: &[String]) -> Result<(), Box<dyn Error>> {
    use tvs::lint::{analyze_netlist, has_deny, render_json, render_text, Diagnostic};

    let mut profiles = false;
    let mut workspace = false;
    let mut root = String::from(".");
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profiles" => profiles = true,
            "--workspace" => workspace = true,
            "--root" => {
                root = need(args, i + 1, "workspace root")?.to_owned();
                i += 1;
            }
            "--format" => {
                json = match need(args, i + 1, "format")? {
                    "text" => false,
                    "json" => true,
                    other => return Err(format!("unknown format {other:?}").into()),
                };
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}").into())
            }
            file => files.push(file.to_owned()),
        }
        i += 1;
    }
    // Bare `tvs lint` checks everything checkable without arguments.
    if !profiles && !workspace && files.is_empty() {
        profiles = true;
        workspace = true;
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        diags.extend(analyze_netlist(&load(file)?));
    }
    if profiles {
        for profile in tvs::circuits::all_profiles() {
            diags.extend(analyze_netlist(&profile.build()));
        }
    }
    if workspace {
        diags.extend(tvs::lint::lint_workspace(std::path::Path::new(&root))?);
    }

    if json {
        print!("{}", render_json(&diags));
    } else {
        print!("{}", render_text(&diags));
    }
    if has_deny(&diags) {
        return Err("deny-level diagnostics found".into());
    }
    Ok(())
}

fn gen(args: &[String]) -> Result<(), Box<dyn Error>> {
    let name = need(args, 0, "profile name")?;
    let out = need(args, 1, "output path")?;
    let profile = tvs::circuits::profile(name)
        .ok_or_else(|| format!("unknown profile {name:?} (try s444, s1423, s5378, …)"))?;
    let netlist = profile.build();
    fs::write(out, bench::to_string(&netlist))?;
    println!("wrote {out}: {netlist}");
    Ok(())
}
