//! The toolkit-level error taxonomy and the CLI's structured exit codes.
//!
//! Every failure the `tvs` binary can hit maps onto one [`TvsError`]
//! variant, and every variant onto a stable [`exit code`](TvsError::exit_code)
//! — scripts and CI can branch on *what kind* of failure occurred without
//! parsing stderr:
//!
//! | code | variant | meaning |
//! |---|---|---|
//! | 2 | [`Usage`](TvsError::Usage) | bad invocation: unknown option, missing argument, malformed value |
//! | 3 | [`Netlist`](TvsError::Netlist) / [`Program`](TvsError::Program) | malformed input artifact (`.bench` or `.tvp`) |
//! | 4 | [`Stitch`](TvsError::Stitch) / [`Atpg`](TvsError::Atpg) / [`Fault`](TvsError::Fault) | the generation engines rejected the run |
//! | 5 | [`Snapshot`](TvsError::Snapshot) | a checkpoint file is corrupt, foreign or mismatched |
//! | 6 | [`Io`](TvsError::Io) | the operating system failed us |
//! | 7 | [`Lint`](TvsError::Lint) | deny-level diagnostics found |
//! | 8 | [`Serve`](TvsError::Serve) | the compression service or its client failed |
//! | 9 | [`Fleet`](TvsError::Fleet) | the fleet coordinator failed (no live workers, abandoned job) |
//! | 10 | [`Fuzz`](TvsError::Fuzz) | a fuzz target broke its contract (panic, violation, nondeterminism) |
//! | 11 | [`Bench`](TvsError::Bench) | a benchmark gate tripped (coverage regression vs. baseline) |
//!
//! Exit code 1 stays reserved for panics (which the library layers avoid by
//! construction — see the SRC005 lint) so an abort is distinguishable from
//! every typed failure.

use std::error::Error;
use std::fmt;

use tvs_ate::ParseProgramError;
use tvs_atpg::AtpgOutcome;
use tvs_fault::FaultError;
use tvs_fleet::FleetError;
use tvs_fuzz::FuzzFailure;
use tvs_netlist::NetlistError;
use tvs_serve::ServeError;
use tvs_stitch::{SnapshotError, StitchError};

/// Top-level error for the `tvs` toolkit and CLI.
#[derive(Debug)]
#[non_exhaustive]
pub enum TvsError {
    /// The command line itself is wrong (unknown option, missing or
    /// malformed argument).
    Usage(String),
    /// A `.bench` netlist failed to parse or validate.
    Netlist(NetlistError),
    /// A `.tvp` tester program failed to parse.
    Program(ParseProgramError),
    /// The stitching engine rejected or could not finish the run.
    Stitch(StitchError),
    /// The conventional ATPG flow failed.
    Atpg(AtpgOutcome),
    /// The fault-simulation session rejected a sweep request.
    Fault(FaultError),
    /// A checkpoint snapshot is truncated, corrupt, foreign or mismatched.
    Snapshot(SnapshotError),
    /// An operating-system I/O failure, with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// Deny-level lint diagnostics were found.
    Lint(String),
    /// The compression service (daemon or client side) failed.
    Serve(ServeError),
    /// The fleet coordinator failed (no live workers, abandoned job).
    Fleet(FleetError),
    /// A fuzz target broke its harness contract: the offending seed is in
    /// the message in replayable hex form.
    Fuzz(FuzzFailure),
    /// A benchmark gate tripped (e.g. a strategy regressed coverage below
    /// the `MostFaults` baseline in `tvs bench strategies --gate`).
    Bench(String),
}

impl TvsError {
    /// The structured process exit code for this error (1 is reserved for
    /// panics, so every typed failure is distinguishable from an abort).
    pub fn exit_code(&self) -> u8 {
        match self {
            TvsError::Usage(_) => 2,
            TvsError::Netlist(_) | TvsError::Program(_) => 3,
            TvsError::Stitch(_) | TvsError::Atpg(_) | TvsError::Fault(_) => 4,
            TvsError::Snapshot(_) => 5,
            TvsError::Io { .. } => 6,
            TvsError::Lint(_) => 7,
            TvsError::Serve(_) => 8,
            TvsError::Fleet(_) => 9,
            TvsError::Fuzz(_) => 10,
            TvsError::Bench(_) => 11,
        }
    }

    /// Convenience constructor for usage errors.
    pub fn usage(message: impl Into<String>) -> Self {
        TvsError::Usage(message.into())
    }

    /// Wraps an I/O error with the path it concerned.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        TvsError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for TvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvsError::Usage(m) => write!(f, "usage: {m}"),
            TvsError::Netlist(e) => write!(f, "netlist: {e}"),
            TvsError::Program(e) => write!(f, "program: {e}"),
            TvsError::Stitch(e) => write!(f, "stitch: {e}"),
            TvsError::Atpg(e) => write!(f, "atpg: {e}"),
            TvsError::Fault(e) => write!(f, "fault: {e}"),
            TvsError::Snapshot(e) => write!(f, "snapshot: {e}"),
            TvsError::Io { path, source } => write!(f, "io: {path}: {source}"),
            TvsError::Lint(m) => write!(f, "lint: {m}"),
            TvsError::Serve(e) => write!(f, "serve: {e}"),
            TvsError::Fleet(e) => write!(f, "fleet: {e}"),
            TvsError::Fuzz(e) => write!(f, "fuzz: {e}"),
            TvsError::Bench(m) => write!(f, "bench: {m}"),
        }
    }
}

impl Error for TvsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TvsError::Netlist(e) => Some(e),
            TvsError::Program(e) => Some(e),
            TvsError::Stitch(e) => Some(e),
            TvsError::Atpg(e) => Some(e),
            TvsError::Fault(e) => Some(e),
            TvsError::Snapshot(e) => Some(e),
            TvsError::Io { source, .. } => Some(source),
            TvsError::Serve(e) => Some(e),
            TvsError::Fleet(e) => Some(e),
            TvsError::Fuzz(e) => Some(e),
            TvsError::Usage(_) | TvsError::Lint(_) | TvsError::Bench(_) => None,
        }
    }
}

impl From<NetlistError> for TvsError {
    fn from(e: NetlistError) -> Self {
        TvsError::Netlist(e)
    }
}

impl From<ParseProgramError> for TvsError {
    fn from(e: ParseProgramError) -> Self {
        TvsError::Program(e)
    }
}

impl From<StitchError> for TvsError {
    fn from(e: StitchError) -> Self {
        // Snapshot problems keep their own exit code even when surfaced
        // through the stitch engine's resume path.
        match e {
            StitchError::Snapshot(s) => TvsError::Snapshot(s),
            other => TvsError::Stitch(other),
        }
    }
}

impl From<FaultError> for TvsError {
    fn from(e: FaultError) -> Self {
        TvsError::Fault(e)
    }
}

impl From<AtpgOutcome> for TvsError {
    fn from(e: AtpgOutcome) -> Self {
        TvsError::Atpg(e)
    }
}

impl From<ServeError> for TvsError {
    fn from(e: ServeError) -> Self {
        TvsError::Serve(e)
    }
}

impl From<SnapshotError> for TvsError {
    fn from(e: SnapshotError) -> Self {
        TvsError::Snapshot(e)
    }
}

impl From<FleetError> for TvsError {
    fn from(e: FleetError) -> Self {
        TvsError::Fleet(e)
    }
}

impl From<FuzzFailure> for TvsError {
    fn from(e: FuzzFailure) -> Self {
        TvsError::Fuzz(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable_and_distinct_per_category() {
        assert_eq!(TvsError::usage("x").exit_code(), 2);
        assert_eq!(
            TvsError::from(NetlistError::UndefinedSignal("g".into())).exit_code(),
            3
        );
        assert_eq!(TvsError::from(StitchError::NoScanChain).exit_code(), 4);
        assert_eq!(
            TvsError::from(FaultError::TooManySlots { given: 65 }).exit_code(),
            4
        );
        assert_eq!(TvsError::from(SnapshotError::Truncated).exit_code(), 5);
        assert_eq!(TvsError::io("x", std::io::Error::other("e")).exit_code(), 6);
        assert_eq!(TvsError::Lint("deny".into()).exit_code(), 7);
        assert_eq!(TvsError::from(ServeError::Draining).exit_code(), 8);
        assert_eq!(
            TvsError::from(FleetError::NoWorkers {
                workers: 3,
                alive: 0
            })
            .exit_code(),
            9
        );
        assert_eq!(
            TvsError::from(FuzzFailure::Panicked("boom".into())).exit_code(),
            10
        );
    }

    #[test]
    fn stitch_snapshot_errors_route_to_the_snapshot_code() {
        let e = TvsError::from(StitchError::Snapshot(SnapshotError::Truncated));
        assert!(matches!(e, TvsError::Snapshot(_)));
        assert_eq!(e.exit_code(), 5);
    }
}
