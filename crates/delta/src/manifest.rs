//! The cone manifest: a checksummed text sidecar recording a run's cone
//! table, per-fault support hashes and prescreen outcome, plus the diff
//! that turns a cached manifest into a prescreen replay plan.
//!
//! The on-disk form mirrors the snapshot format: a `tvs-manifest v1` header,
//! line-oriented sections, and a closing FNV-1a-64 checksum line. Parsing
//! validates structure, counts, the checksum *and* the recorded root (it is
//! recomputed from the interface and cone lines), so a forged cone hash, a
//! dropped entry or a stale root all fail with a typed [`ManifestError`] —
//! callers fall back to a cold run, never to a wrong reuse.

use std::error::Error;
use std::fmt;

use tvs_fault::{Fault, FaultList, StuckAt};
use tvs_netlist::Netlist;
use tvs_stitch::{fnv1a, PodemVerdict, PrescreenRecord};

use crate::cones::{fault_supports, interface_signature, netlist_root};

/// The format version this build writes and reads.
pub const MANIFEST_VERSION: u32 = 1;

const HEADER: &str = "tvs-manifest v1";

/// Errors from building, parsing or diffing a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ManifestError {
    /// The text ends before the closing checksum line.
    Truncated,
    /// The body does not hash to the recorded checksum.
    Checksum {
        /// The checksum the file claims.
        expected: u64,
        /// The checksum the body actually hashes to.
        found: u64,
    },
    /// The header names a version this build does not read.
    Version(String),
    /// A body line is malformed.
    Parse {
        /// 1-based line number of the defect.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The recorded root does not match the interface and cone lines it
    /// claims to summarize (forged cone hash, dropped entry or stale root).
    Root {
        /// The root the file claims.
        expected: u64,
        /// The root the cone lines actually hash to.
        found: u64,
    },
    /// The manifest is well-formed but belongs to a different circuit
    /// interface or configuration than the submission diffing against it.
    Mismatch(String),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Truncated => write!(f, "manifest truncated before its checksum line"),
            ManifestError::Checksum { expected, found } => write!(
                f,
                "manifest checksum mismatch: file claims {expected:016x}, body hashes to {found:016x}"
            ),
            ManifestError::Version(v) => write!(f, "unsupported manifest header {v:?}"),
            ManifestError::Parse { line, message } => write!(f, "manifest line {line}: {message}"),
            ManifestError::Root { expected, found } => write!(
                f,
                "manifest root mismatch: file claims {expected:016x}, cone table hashes to {found:016x}"
            ),
            ManifestError::Mismatch(what) => {
                write!(f, "manifest does not match this submission: {what}")
            }
        }
    }
}

impl Error for ManifestError {}

/// One collapsed fault's manifest entry: identity (by signal name, so it
/// survives gate-id renumbering), support hash and recorded prescreen
/// outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestFault {
    /// Site gate's signal name.
    pub gate: String,
    /// `None` = output stem; `Some(p)` = input pin `p`.
    pub pin: Option<u32>,
    /// The stuck value.
    pub stuck: StuckAt,
    /// The fault's support hash on the recorded netlist.
    pub support: u64,
    /// The recorded prescreen outcome.
    pub record: PrescreenRecord,
}

/// A run's cone manifest: everything a later submission needs to decide
/// which prescreen verdicts it may reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeManifest {
    /// Netlist name (diagnostics only; identity lives in the hashes).
    pub circuit: String,
    /// Interface signature (see [`interface_signature`]).
    pub interface_sig: u64,
    /// Stitch-configuration fingerprint the run used. The budget is
    /// deliberately not part of manifest validity: the prescreen charges
    /// the budget but never stops early on it, so its verdicts are
    /// budget-independent.
    pub config_fingerprint: u64,
    /// Root over the interface signature and cone table.
    pub root: u64,
    /// `(gate name, cone hash)` for every gate, in dense id order.
    pub cones: Vec<(String, u64)>,
    /// One entry per collapsed fault, in collapsed list order.
    pub faults: Vec<ManifestFault>,
}

impl ConeManifest {
    /// Builds the manifest for a completed run from its netlist, stitch
    /// configuration fingerprint and captured prescreen records.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Mismatch`] when the records do not align with the
    /// netlist's collapsed fault list, or when the netlist has no scan view
    /// (a combinational cycle — such a netlist cannot have run at all).
    pub fn build(
        netlist: &Netlist,
        config_fingerprint: u64,
        records: &[PrescreenRecord],
    ) -> Result<ConeManifest, ManifestError> {
        let view = netlist
            .scan_view()
            .map_err(|e| ManifestError::Mismatch(format!("no scan view: {e}")))?;
        let collapsed = FaultList::collapsed(netlist);
        if records.len() != collapsed.len() {
            return Err(ManifestError::Mismatch(format!(
                "{} prescreen records for {} collapsed faults",
                records.len(),
                collapsed.len()
            )));
        }
        let interface_sig = interface_signature(netlist);
        let cones = crate::cones::cone_table(netlist, &view);
        let supports = fault_supports(netlist, &view, collapsed.faults());
        let faults = collapsed
            .faults()
            .iter()
            .zip(supports)
            .zip(records)
            .map(|((fault, support), &record)| ManifestFault {
                gate: netlist.gate_name(fault.site.gate).to_string(),
                pin: fault.site.pin,
                stuck: fault.stuck,
                support,
                record,
            })
            .collect();
        Ok(ConeManifest {
            circuit: netlist.name().to_string(),
            interface_sig,
            config_fingerprint,
            root: netlist_root(interface_sig, &cones),
            cones,
            faults,
        })
    }

    /// Renders the manifest as its versioned text form, checksum included.
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        // Infallible: writing to a String cannot error. lint:allow(SRC005)
        let mut w = |line: String| writeln!(s, "{line}").expect("write to String");
        w(HEADER.to_string());
        w(format!("circuit {}", self.circuit));
        w(format!("interface {:016x}", self.interface_sig));
        w(format!("config {:016x}", self.config_fingerprint));
        w(format!("root {:016x}", self.root));
        w(format!("cones {}", self.cones.len()));
        for (name, hash) in &self.cones {
            w(format!("c {hash:016x} {name}"));
        }
        w(format!("faults {}", self.faults.len()));
        for f in &self.faults {
            let pin = match f.pin {
                Some(p) => p.to_string(),
                None => "-".to_string(),
            };
            let round = match f.record.first_detect_round {
                Some(r) => r.to_string(),
                None => "-".to_string(),
            };
            let podem = match f.record.podem {
                Some((verdict, backtracks)) => format!("{}{backtracks}", verdict.code()),
                None => "-".to_string(),
            };
            w(format!(
                "f {pin} {} {:016x} {round} {podem} {}",
                f.stuck, f.support, f.gate
            ));
        }
        let sum = fnv1a(s.as_bytes());
        s.push_str(&format!("checksum {sum:016x}\n"));
        s
    }

    /// Parses the text form, verifying header, checksum, counts and that
    /// the recorded root matches the interface and cone lines.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Truncated`] without a closing checksum line,
    /// [`ManifestError::Checksum`] when the body was altered,
    /// [`ManifestError::Version`] for a foreign header,
    /// [`ManifestError::Parse`] for malformed body lines and
    /// [`ManifestError::Root`] when the cone table does not hash to the
    /// recorded root.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let trimmed = text.trim_end_matches('\n');
        let (body, last) = match trimmed.rfind('\n') {
            Some(pos) => (&text[..pos + 1], &trimmed[pos + 1..]),
            None => return Err(ManifestError::Truncated),
        };
        let expected = last
            .strip_prefix("checksum ")
            .ok_or(ManifestError::Truncated)?;
        let expected =
            u64::from_str_radix(expected.trim(), 16).map_err(|_| ManifestError::Truncated)?;
        let found = fnv1a(body.as_bytes());
        if expected != found {
            return Err(ManifestError::Checksum { expected, found });
        }

        let mut lines = body.lines().enumerate();
        let mut next = |what: &str| -> Result<(usize, &str), ManifestError> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l))
                .ok_or_else(|| ManifestError::Parse {
                    line: 0,
                    message: format!("missing {what} line"),
                })
        };

        let (_, header) = next("header")?;
        if header != HEADER {
            return Err(ManifestError::Version(header.to_string()));
        }

        let (line, text) = next("circuit")?;
        let circuit = field(line, text, "circuit")?.to_string();

        let (line, text) = next("interface")?;
        let interface_sig = parse_hex(line, field(line, text, "interface")?)?;

        let (line, text) = next("config")?;
        let config_fingerprint = parse_hex(line, field(line, text, "config")?)?;

        let (line, text) = next("root")?;
        let root = parse_hex(line, field(line, text, "root")?)?;

        let (line, text) = next("cones")?;
        let cn = parse_num(line, field(line, text, "cones")?, "cone count")? as usize;
        let mut cones = Vec::with_capacity(cap_alloc(cn));
        for _ in 0..cn {
            let (line, text) = next("cone entry")?;
            let rest = field(line, text, "c")?;
            let mut it = rest.splitn(2, ' ');
            let hash = parse_hex(line, it.next().unwrap_or_default())?;
            let name = it
                .next()
                .ok_or_else(|| malformed(line, "missing gate name"))?
                .to_string();
            cones.push((name, hash));
        }

        let (line, text) = next("faults")?;
        let fan = parse_num(line, field(line, text, "faults")?, "fault count")? as usize;
        let mut faults = Vec::with_capacity(cap_alloc(fan));
        for _ in 0..fan {
            let (line, text) = next("fault entry")?;
            let rest = field(line, text, "f")?;
            let mut it = rest.splitn(6, ' ');
            let pin = match it.next() {
                Some("-") => None,
                Some(p) => Some(
                    p.parse::<u32>()
                        .map_err(|_| malformed(line, &format!("bad pin {p:?}")))?,
                ),
                None => return Err(malformed(line, "missing pin")),
            };
            let stuck = match it.next() {
                Some("0") => StuckAt::Zero,
                Some("1") => StuckAt::One,
                other => return Err(malformed(line, &format!("bad stuck value {other:?}"))),
            };
            let support = parse_hex(
                line,
                it.next()
                    .ok_or_else(|| malformed(line, "missing support"))?,
            )?;
            let first_detect_round = match it.next() {
                Some("-") => None,
                Some(r) => {
                    let r = r
                        .parse::<u8>()
                        .map_err(|_| malformed(line, &format!("bad round {r:?}")))?;
                    if r >= 8 {
                        return Err(malformed(line, &format!("round {r} out of range")));
                    }
                    Some(r)
                }
                None => return Err(malformed(line, "missing detect round")),
            };
            let podem = match it.next() {
                Some("-") => None,
                Some(v) => {
                    let mut chars = v.chars();
                    let verdict = chars
                        .next()
                        .and_then(PodemVerdict::from_code)
                        .ok_or_else(|| malformed(line, &format!("bad podem verdict {v:?}")))?;
                    let backtracks = chars
                        .as_str()
                        .parse::<u32>()
                        .map_err(|_| malformed(line, &format!("bad backtrack count {v:?}")))?;
                    Some((verdict, backtracks))
                }
                None => return Err(malformed(line, "missing podem verdict")),
            };
            let gate = it
                .next()
                .ok_or_else(|| malformed(line, "missing gate name"))?
                .to_string();
            faults.push(ManifestFault {
                gate,
                pin,
                stuck,
                support,
                record: PrescreenRecord {
                    first_detect_round,
                    podem,
                },
            });
        }

        let recomputed = netlist_root(interface_sig, &cones);
        if recomputed != root {
            return Err(ManifestError::Root {
                expected: root,
                found: recomputed,
            });
        }

        Ok(ConeManifest {
            circuit,
            interface_sig,
            config_fingerprint,
            root,
            cones,
            faults,
        })
    }
}

/// The result of diffing a cached manifest against an edited netlist: a
/// prescreen replay plan plus the reuse accounting the counters report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaPlan {
    /// One entry per collapsed fault of the *edited* netlist: `Some` replays
    /// the ancestor's record (clean support), `None` recomputes (dirty).
    pub plan: Vec<Option<PrescreenRecord>>,
    /// Collapsed fault count of the edited netlist.
    pub faults_total: usize,
    /// Faults whose support hash matched the ancestor (clean).
    pub faults_matched: usize,
    /// Gates of the edited netlist whose cone hash differs from (or is
    /// absent in) the ancestor's cone table.
    pub cones_dirty: usize,
}

/// Diffs a cached ancestor manifest against an edited netlist and derives
/// the prescreen replay plan.
///
/// # Errors
///
/// [`ManifestError::Mismatch`] when the manifest belongs to a different
/// interface or configuration (reuse would be unsound), or when the edited
/// netlist has no scan view.
pub fn plan_for(
    manifest: &ConeManifest,
    netlist: &Netlist,
    config_fingerprint: u64,
) -> Result<DeltaPlan, ManifestError> {
    if manifest.config_fingerprint != config_fingerprint {
        return Err(ManifestError::Mismatch(format!(
            "configuration fingerprint {:016x} vs {:016x}",
            manifest.config_fingerprint, config_fingerprint
        )));
    }
    let view = netlist
        .scan_view()
        .map_err(|e| ManifestError::Mismatch(format!("no scan view: {e}")))?;
    let interface_sig = interface_signature(netlist);
    if manifest.interface_sig != interface_sig {
        return Err(ManifestError::Mismatch(format!(
            "interface signature {:016x} vs {:016x}",
            manifest.interface_sig, interface_sig
        )));
    }

    let ancestor: std::collections::BTreeMap<(&str, Option<u32>, bool), (u64, PrescreenRecord)> =
        manifest
            .faults
            .iter()
            .map(|f| {
                (
                    (f.gate.as_str(), f.pin, f.stuck.as_bool()),
                    (f.support, f.record),
                )
            })
            .collect();

    let collapsed = FaultList::collapsed(netlist);
    let supports = fault_supports(netlist, &view, collapsed.faults());
    let plan: Vec<Option<PrescreenRecord>> = collapsed
        .faults()
        .iter()
        .zip(&supports)
        .map(|(fault, &support)| {
            let key = (
                netlist.gate_name(fault.site.gate),
                fault.site.pin,
                fault.stuck.as_bool(),
            );
            ancestor
                .get(&key)
                .filter(|&&(ancestor_support, _)| ancestor_support == support)
                .map(|&(_, record)| record)
        })
        .collect();
    let faults_matched = plan.iter().filter(|p| p.is_some()).count();

    let ancestor_cones: std::collections::BTreeMap<&str, u64> = manifest
        .cones
        .iter()
        .map(|(name, hash)| (name.as_str(), *hash))
        .collect();
    let cones_dirty = crate::cones::cone_table(netlist, &view)
        .iter()
        .filter(|(name, hash)| ancestor_cones.get(name.as_str()) != Some(hash))
        .count();

    Ok(DeltaPlan {
        faults_total: plan.len(),
        faults_matched,
        plan,
        cones_dirty,
    })
}

/// Caps a section count before it is used as an allocation hint — the same
/// defense the snapshot parser uses against forged count lines.
fn cap_alloc(n: usize) -> usize {
    n.min(4096)
}

fn malformed(line: usize, message: &str) -> ManifestError {
    ManifestError::Parse {
        line,
        message: message.to_string(),
    }
}

fn field<'t>(line: usize, text: &'t str, key: &str) -> Result<&'t str, ManifestError> {
    text.strip_prefix(key)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| malformed(line, &format!("expected a {key:?} line, got {text:?}")))
}

fn parse_num(line: usize, text: &str, what: &str) -> Result<u64, ManifestError> {
    text.parse::<u64>()
        .map_err(|_| malformed(line, &format!("bad {what} {text:?}")))
}

fn parse_hex(line: usize, text: &str) -> Result<u64, ManifestError> {
    u64::from_str_radix(text, 16).map_err(|_| malformed(line, &format!("bad hex field {text:?}")))
}

/// Convenience for call sites that only have faults (not a list): the
/// collapsed-order fault slice a plan aligns to.
pub fn collapsed_faults(netlist: &Netlist) -> Vec<Fault> {
    FaultList::collapsed(netlist).faults().to_vec()
}
