//! **tvs-delta** — incremental recompression through cone-level content
//! addressing.
//!
//! The artifact cache keys a run by the whole canonicalized `.bench`, so a
//! one-gate edit of a large design used to mean a full cold run. This crate
//! Merkle-izes the netlist instead: every gate gets a **cone hash** — an
//! FNV-1a fingerprint of its entire fanin cone, rolled bottom-up in
//! topological order ([`cones::cone_hashes`]) — and every collapsed fault
//! gets a **support hash** covering exactly the circuit region that can
//! influence its prescreen verdicts ([`cones::fault_supports`]). A
//! [`ConeManifest`] bundles the cone table, the per-fault supports and the
//! recorded prescreen outcome ([`tvs_stitch::PrescreenRecord`]s) into a
//! checksummed sidecar next to the artifact.
//!
//! On resubmission of an edited design, [`manifest::plan_for`] diffs the new
//! supports against a cached ancestor's manifest: faults whose support hash
//! is unchanged are *clean* and replay the recorded verdicts verbatim;
//! everything else is *dirty* and re-simulated through the ordinary
//! `SimSession`/`StaticPrune` paths. The replay changes where verdicts come
//! from — never their values, budget charges or PRNG draws — so a delta run
//! is **byte-identical** to a cold run of the edited netlist.
//!
//! The support hash is deliberately conservative. It folds, in topological
//! (Kahn) order, the cone hashes of every gate in the fault's combinational
//! fanout region, plus the positions of the primary and pseudo-primary
//! outputs that observe the region. Kahn-order folding also pins the
//! region's relative evaluation order, which PODEM's D-frontier tie-breaks
//! depend on: any edit that could reorder the frontier walk changes the
//! fold and dirties the fault. Flip-flops hash as leaves (sequential loops
//! stay finite); a fault on a flip-flop's D pin therefore folds the D
//! driver's cone explicitly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cones;
pub mod manifest;

pub use cones::{
    cone_hashes, cone_table, family_key, fault_supports, interface_signature, netlist_root,
};
pub use manifest::{plan_for, ConeManifest, DeltaPlan, ManifestError, ManifestFault};
