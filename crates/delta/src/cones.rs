//! Cone hashing: per-gate Merkle fingerprints, interface signatures and
//! per-fault support hashes.
//!
//! Everything here is a pure function of the netlist, so two parses of the
//! same `.bench` text — or of two texts that canonicalize identically —
//! produce identical hashes on any machine.

use tvs_fault::Fault;
use tvs_netlist::{GateId, GateKind, Netlist, ScanView};
use tvs_stitch::fnv1a;

/// Streaming FNV-1a-64 over heterogeneous fields, byte-compatible with
/// feeding the same bytes to [`tvs_stitch::fnv1a`] in one go.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Per-gate cone hashes, indexed by dense gate id.
///
/// Sources hash as leaves over `(kind, name)`: a primary input has no cone,
/// and a flip-flop's *output* is a pseudo-primary input whose value does not
/// depend on combinational logic — hashing it as a leaf keeps sequential
/// loops finite. Combinational gates hash `(kind, name, fanin cone hashes in
/// pin order)`, rolled bottom-up in topological order, so a gate's hash
/// covers its entire combinational fanin cone down to the source leaves.
pub fn cone_hashes(netlist: &Netlist, view: &ScanView) -> Vec<u64> {
    let mut hashes = vec![0u64; netlist.gate_count()];
    for id in netlist.gate_ids() {
        let gate = netlist.gate(id);
        if gate.kind().is_source() {
            let mut h = Fnv::new();
            h.bytes(b"leaf ");
            h.bytes(gate.kind().keyword().as_bytes());
            h.bytes(b" ");
            h.bytes(netlist.gate_name(id).as_bytes());
            hashes[id.index()] = h.finish();
        }
    }
    for &id in view.order() {
        let gate = netlist.gate(id);
        let mut h = Fnv::new();
        h.bytes(b"gate ");
        h.bytes(gate.kind().keyword().as_bytes());
        h.bytes(b" ");
        h.bytes(netlist.gate_name(id).as_bytes());
        for &fanin in gate.fanin() {
            h.u64(hashes[fanin.index()]);
        }
        hashes[id.index()] = h.finish();
    }
    hashes
}

/// The cone table: `(gate name, cone hash)` for every gate in dense id
/// order — the manifest's `c` section and the input of [`netlist_root`].
pub fn cone_table(netlist: &Netlist, view: &ScanView) -> Vec<(String, u64)> {
    let hashes = cone_hashes(netlist, view);
    netlist
        .gate_ids()
        .map(|id| (netlist.gate_name(id).to_string(), hashes[id.index()]))
        .collect()
}

/// FNV fingerprint of the circuit interface: PI names in declaration order,
/// PO names in declaration order, flip-flop names in scan-chain order.
///
/// Two netlists with equal signatures agree on every input index, output
/// index and chain position — the name-to-position mappings that pattern
/// bits, observation points and scan images are addressed by.
pub fn interface_signature(netlist: &Netlist) -> u64 {
    let mut h = Fnv::new();
    h.bytes(b"pi");
    for &id in netlist.inputs() {
        h.bytes(b" ");
        h.bytes(netlist.gate_name(id).as_bytes());
    }
    h.bytes(b"\npo");
    for &id in netlist.outputs() {
        h.bytes(b" ");
        h.bytes(netlist.gate_name(id).as_bytes());
    }
    h.bytes(b"\nff");
    for &id in netlist.dffs() {
        h.bytes(b" ");
        h.bytes(netlist.gate_name(id).as_bytes());
    }
    h.finish()
}

/// Combines the interface signature with the cone table into the manifest
/// root — the netlist-identity half of a delta-aware artifact key. The cone
/// table alone cannot distinguish two netlists that differ only in which
/// signals are marked `OUTPUT`, so the interface signature is folded in.
pub fn netlist_root(interface_sig: u64, cones: &[(String, u64)]) -> u64 {
    let mut body = format!("interface {interface_sig:016x}\n");
    for (name, hash) in cones {
        body.push_str(&format!("c {hash:016x} {name}\n"));
    }
    fnv1a(body.as_bytes())
}

/// The routing family of a submission: every edit of the same design (same
/// interface) under the same configuration maps to one family, so the fleet
/// coordinator can route all of them to the worker holding the warm
/// manifests.
pub fn family_key(interface_sig: u64, config_fingerprint: u64) -> u64 {
    fnv1a(format!("family {interface_sig:016x} {config_fingerprint:016x}").as_bytes())
}

/// Per-fault support hashes, aligned to `faults` (normally the collapsed
/// fault list).
///
/// A fault's support covers everything its prescreen verdicts can depend
/// on: the fault identity, the cone hash of its site (activation logic),
/// the cone hashes of every gate in its combinational fanout region folded
/// in topological order (propagation logic, side-input cones and the
/// D-frontier walk order), and the positions of the POs/PPOs that observe
/// the region. A fault on a flip-flop's D pin only affects the captured
/// PPO value, so its support is the D driver's cone plus that chain
/// position — the flip-flop's own leaf hash deliberately covers nothing.
pub fn fault_supports(netlist: &Netlist, view: &ScanView, faults: &[Fault]) -> Vec<u64> {
    let hashes = cone_hashes(netlist, view);
    let n = netlist.gate_count();

    // Kahn position of every combinational gate (sources stay usize::MAX and
    // never appear inside a fanout region — only as its seed).
    let mut pos = vec![usize::MAX; n];
    for (p, &id) in view.order().iter().enumerate() {
        pos[id.index()] = p;
    }
    // Observation markers: which PO / chain positions each gate drives.
    let mut po_at: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (p, &id) in netlist.outputs().iter().enumerate() {
        po_at[id.index()].push(p as u32);
    }
    let mut ppo_at: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut chain_of = vec![u32::MAX; n];
    for (p, &dff) in netlist.dffs().iter().enumerate() {
        chain_of[dff.index()] = p as u32;
        if let Some(&driver) = netlist.gate(dff).fanin().first() {
            ppo_at[driver.index()].push(p as u32);
        }
    }

    // The fanout-region fold is shared by every fault on the same site gate,
    // so it is memoized per gate. Region membership uses generation stamps
    // to avoid clearing a visited array per fault.
    let mut region_hash: Vec<Option<u64>> = vec![None; n];
    let mut stamp = vec![0u32; n];
    let mut generation = 0u32;
    let mut members: Vec<GateId> = Vec::new();
    let mut compute_region = |seed: GateId| -> u64 {
        generation += 1;
        members.clear();
        let mut stack = vec![seed];
        stamp[seed.index()] = generation;
        while let Some(g) = stack.pop() {
            for &consumer in view.comb_fanout(g) {
                if stamp[consumer.index()] != generation {
                    stamp[consumer.index()] = generation;
                    members.push(consumer);
                    stack.push(consumer);
                }
            }
        }
        members.sort_by_key(|g| pos[g.index()]);
        let mut h = Fnv::new();
        h.bytes(b"region");
        h.u64(hashes[seed.index()]);
        for &m in &members {
            h.bytes(b"m");
            h.u64(hashes[m.index()]);
        }
        let mut mark = |tag: &[u8], at: u32| {
            h.bytes(tag);
            h.u64(u64::from(at));
        };
        for g in std::iter::once(&seed).chain(&members) {
            for &p in &po_at[g.index()] {
                mark(b"po", p);
            }
            for &p in &ppo_at[g.index()] {
                mark(b"ppo", p);
            }
        }
        h.finish()
    };

    faults
        .iter()
        .map(|fault| {
            let site = fault.site.gate;
            let gate = netlist.gate(site);
            let mut h = Fnv::new();
            if gate.kind() == GateKind::Dff && fault.site.pin == Some(0) {
                // D-pin fault: only the captured PPO value is affected.
                h.bytes(b"dpin ");
                h.bytes(if fault.stuck.as_bool() { b"1 " } else { b"0 " });
                h.bytes(netlist.gate_name(site).as_bytes());
                if let Some(&driver) = gate.fanin().first() {
                    h.u64(hashes[driver.index()]);
                }
                h.u64(u64::from(chain_of[site.index()]));
            } else {
                let region = match region_hash[site.index()] {
                    Some(r) => r,
                    None => {
                        let r = compute_region(site);
                        region_hash[site.index()] = Some(r);
                        r
                    }
                };
                h.bytes(b"site ");
                match fault.site.pin {
                    Some(p) => h.u64(u64::from(p)),
                    None => h.bytes(b"-"),
                }
                h.bytes(if fault.stuck.as_bool() {
                    b" 1 "
                } else {
                    b" 0 "
                });
                h.bytes(netlist.gate_name(site).as_bytes());
                h.u64(region);
            }
            h.finish()
        })
        .collect()
}
