//! Tier-1 tests for the delta subsystem: manifest round trip, the
//! corruption sweep (every forged manifest must fail parse — fall back to
//! cold, never reuse wrongly), the single-edit dirty-set property, and the
//! non-negotiable invariant that a delta run is byte-identical to a cold
//! run of the edited netlist.

use tvs_circuits::profile;
use tvs_delta::{
    cone_table, interface_signature, netlist_root, plan_for, ConeManifest, ManifestError,
};
use tvs_fault::FaultList;
use tvs_netlist::{bench, GateId, GateKind, Netlist, NetlistBuilder};
use tvs_stitch::{
    fnv1a, PodemVerdict, PrescreenRecord, PrescreenTrace, RunOptions, StitchConfig, StitchEngine,
    StitchReport,
};

/// The kind a combinational gate flips to in a single-gate edit: its
/// same-arity dual, so the text reparses without structural changes.
fn flipped(kind: GateKind) -> GateKind {
    match kind {
        GateKind::And => GateKind::Or,
        GateKind::Or => GateKind::And,
        GateKind::Nand => GateKind::Nor,
        GateKind::Nor => GateKind::Nand,
        GateKind::Xor => GateKind::Xnor,
        GateKind::Xnor => GateKind::Xor,
        GateKind::Not => GateKind::Buf,
        GateKind::Buf => GateKind::Not,
        GateKind::Input | GateKind::Dff => kind,
    }
}

/// Rebuilds `netlist` with one combinational gate's kind flipped to its
/// same-arity dual.
fn flip_gate(netlist: &Netlist, name: &str) -> Netlist {
    let id = netlist.find(name).unwrap();
    let kind = netlist.gate(id).kind();
    assert!(kind.is_combinational(), "{name} is not flippable");
    let from = format!("{name} = {}(", kind.keyword());
    let to = format!("{name} = {}(", flipped(kind).keyword());
    let text = bench::to_string(netlist).replacen(&from, &to, 1);
    let edited = bench::parse(netlist.name(), &text).unwrap();
    assert_ne!(
        edited.gate(edited.find(name).unwrap()).kind(),
        kind,
        "edit did not take"
    );
    edited
}

/// The combinational fanout closure of `seed`, including the seed itself.
fn fanout_closure(netlist: &Netlist, seed: GateId) -> Vec<bool> {
    let view = netlist.scan_view().unwrap();
    let mut hit = vec![false; netlist.gate_count()];
    hit[seed.index()] = true;
    let mut stack = vec![seed];
    while let Some(g) = stack.pop() {
        for &c in view.comb_fanout(g) {
            if !hit[c.index()] {
                hit[c.index()] = true;
                stack.push(c);
            }
        }
    }
    hit
}

/// Fabricated prescreen records with varied field values, aligned to the
/// netlist's collapsed fault list.
fn fake_records(netlist: &Netlist) -> Vec<PrescreenRecord> {
    let n = FaultList::collapsed(netlist).len();
    (0..n)
        .map(|i| {
            let first_detect_round = if i % 3 == 0 {
                Some((i % 8) as u8)
            } else {
                None
            };
            let podem = match i % 4 {
                0 => None,
                1 => Some((PodemVerdict::Test, i as u32)),
                2 => Some((PodemVerdict::Untestable, 0)),
                _ => Some((PodemVerdict::Aborted, 64)),
            };
            PrescreenRecord {
                first_detect_round,
                podem,
            }
        })
        .collect()
}

/// Recomputes the trailing checksum line after a deliberate body edit, so
/// corruption tests exercise the *semantic* validators, not just the hash.
fn fix_checksum(text: &str) -> String {
    let body_end = text.trim_end_matches('\n').rfind('\n').unwrap() + 1;
    let body = &text[..body_end];
    format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()))
}

#[test]
fn cone_hashes_distinguish_interface_only_diffs() {
    let build = |mark_extra: bool| {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("x", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("y", GateKind::Or, &["a", "x"]).unwrap();
        b.mark_output("y").unwrap();
        if mark_extra {
            b.mark_output("x").unwrap();
        }
        b.build().unwrap()
    };
    let plain = build(false);
    let marked = build(true);
    // Same gates, same cones — only the OUTPUT marking differs.
    let pv = plain.scan_view().unwrap();
    let mv = marked.scan_view().unwrap();
    assert_eq!(cone_table(&plain, &pv), cone_table(&marked, &mv));
    assert_ne!(
        netlist_root(interface_signature(&plain), &cone_table(&plain, &pv)),
        netlist_root(interface_signature(&marked), &cone_table(&marked, &mv)),
        "root must fold the interface, or PO-marking edits would alias"
    );
}

#[test]
fn single_gate_edit_dirties_exactly_its_fanout_cones() {
    for name in ["s444", "s526"] {
        let base = profile(name).unwrap().build();
        let view = base.scan_view().unwrap();
        let before = cone_table(&base, &view);
        for id in base.gate_ids() {
            if !base.gate(id).kind().is_combinational() {
                continue;
            }
            let gate_name = base.gate_name(id).to_string();
            let edited = flip_gate(&base, &gate_name);
            let ev = edited.scan_view().unwrap();
            let after = cone_table(&edited, &ev);
            assert_eq!(before.len(), after.len());
            let expect = fanout_closure(&base, id);
            for (gi, (b, a)) in before.iter().zip(&after).enumerate() {
                assert_eq!(b.0, a.0, "gate order must be stable");
                let in_cone = expect[edited.find(&b.0).unwrap().index()];
                // Guard against an accidental hash collision aliasing a
                // truly-changed cone back to its old value.
                assert_eq!(
                    b.1 != a.1,
                    in_cone,
                    "{name}: edit of {gate_name} vs cone of gate #{gi} ({})",
                    b.0
                );
            }
        }
    }
}

#[test]
fn manifest_round_trips_through_text() {
    let n = profile("s444").unwrap().build();
    let records = fake_records(&n);
    let m = ConeManifest::build(&n, 0x1234_5678_9abc_def0, &records).unwrap();
    assert_eq!(m.circuit, "s444");
    assert_eq!(m.faults.len(), records.len());
    let text = m.to_text();
    let parsed = ConeManifest::parse(&text).unwrap();
    assert_eq!(parsed, m);
    // Stability: rendering the parse reproduces the text byte-for-byte.
    assert_eq!(parsed.to_text(), text);
}

#[test]
fn corrupt_manifests_always_fail_parse() {
    let n = profile("s444").unwrap().build();
    let m = ConeManifest::build(&n, 7, &fake_records(&n)).unwrap();
    let text = m.to_text();

    // Truncation: no checksum line at all.
    let cut = text.trim_end_matches('\n').rfind('\n').unwrap();
    assert_eq!(
        ConeManifest::parse(&text[..cut + 1]),
        Err(ManifestError::Truncated)
    );

    // A flipped body byte fails the checksum.
    let corrupt = text.replacen("faults", "fawlts", 1);
    assert!(matches!(
        ConeManifest::parse(&corrupt),
        Err(ManifestError::Checksum { .. })
    ));

    // A foreign header version.
    let foreign = fix_checksum(&text.replacen("tvs-manifest v1", "tvs-manifest v9", 1));
    assert!(matches!(
        ConeManifest::parse(&foreign),
        Err(ManifestError::Version(_))
    ));

    // A forged cone hash (checksum fixed up): root recompute catches it.
    let c_line = text
        .lines()
        .find(|l| l.starts_with("c "))
        .unwrap()
        .to_string();
    let forged_line = format!("c {:016x}{}", !0u64, &c_line[18..]);
    let forged = fix_checksum(&text.replacen(&c_line, &forged_line, 1));
    assert!(matches!(
        ConeManifest::parse(&forged),
        Err(ManifestError::Root { .. })
    ));

    // A dropped cone entry with the count patched: root recompute catches it.
    let count = m.cones.len();
    let dropped = fix_checksum(
        &text
            .replacen(
                &format!("cones {count}"),
                &format!("cones {}", count - 1),
                1,
            )
            .replacen(&format!("{c_line}\n"), "", 1),
    );
    assert!(matches!(
        ConeManifest::parse(&dropped),
        Err(ManifestError::Root { .. })
    ));

    // A dropped entry *without* patching the count shears the section frame.
    let sheared = fix_checksum(&text.replacen(&format!("{c_line}\n"), "", 1));
    assert!(matches!(
        ConeManifest::parse(&sheared),
        Err(ManifestError::Parse { .. })
    ));

    // A stale root line (checksum fixed up).
    let root_line = format!("root {:016x}", m.root);
    let stale = fix_checksum(&text.replacen(&root_line, &format!("root {:016x}", m.root ^ 1), 1));
    assert!(matches!(
        ConeManifest::parse(&stale),
        Err(ManifestError::Root { .. })
    ));

    // An out-of-range prescreen round.
    let f_line = text
        .lines()
        .find(|l| l.starts_with("f ") && l.split(' ').nth(4) == Some("0"))
        .unwrap()
        .to_string();
    let mut fields: Vec<&str> = f_line.split(' ').collect();
    fields[4] = "9";
    let bad_round = fix_checksum(&text.replacen(&f_line, &fields.join(" "), 1));
    assert!(matches!(
        ConeManifest::parse(&bad_round),
        Err(ManifestError::Parse { .. })
    ));
}

#[test]
fn plan_for_identical_netlist_reuses_everything() {
    let n = profile("s526").unwrap().build();
    let records = fake_records(&n);
    let m = ConeManifest::build(&n, 11, &records).unwrap();
    let plan = plan_for(&m, &n, 11).unwrap();
    assert_eq!(plan.faults_total, records.len());
    assert_eq!(plan.faults_matched, records.len());
    assert_eq!(plan.cones_dirty, 0);
    for (p, r) in plan.plan.iter().zip(&records) {
        assert_eq!(p.as_ref(), Some(r));
    }
}

#[test]
fn plan_for_rejects_foreign_config_and_interface() {
    let n = profile("s526").unwrap().build();
    let m = ConeManifest::build(&n, 11, &fake_records(&n)).unwrap();
    assert!(matches!(
        plan_for(&m, &n, 12),
        Err(ManifestError::Mismatch(_))
    ));
    let other = profile("s444").unwrap().build();
    assert!(matches!(
        plan_for(&m, &other, 11),
        Err(ManifestError::Mismatch(_))
    ));
}

#[test]
fn plan_dirty_set_is_support_region_membership() {
    let base = profile("s526").unwrap().build();
    let m = ConeManifest::build(&base, 3, &fake_records(&base)).unwrap();
    // Flip a mid-circuit gate and check each fault's clean/dirty call
    // against an independent region-membership computation.
    let target = base
        .gate_ids()
        .find(|&id| base.gate(id).kind().is_combinational() && !base.fanout(id).is_empty())
        .unwrap();
    let target_name = base.gate_name(target).to_string();
    let edited = flip_gate(&base, &target_name);
    let plan = plan_for(&m, &edited, 3).unwrap();
    assert!(plan.faults_matched > 0, "reuse must survive a 1-gate edit");
    assert!(plan.faults_matched < plan.faults_total);
    assert!(plan.cones_dirty > 0);

    let changed = fanout_closure(&edited, edited.find(&target_name).unwrap());
    let collapsed = FaultList::collapsed(&edited);
    for (fault, entry) in collapsed.faults().iter().zip(&plan.plan) {
        let site = fault.site.gate;
        let gate = edited.gate(site);
        let dirty = if gate.kind() == GateKind::Dff && fault.site.pin == Some(0) {
            let driver = gate.fanin()[0];
            changed[driver.index()]
        } else {
            let region = fanout_closure(&edited, site);
            region.iter().zip(&changed).any(|(&r, &c)| r && c)
        };
        assert_eq!(
            entry.is_none(),
            dirty,
            "fault {} clean/dirty call",
            fault.display_in(&edited)
        );
    }
}

/// Runs the engine, capturing the prescreen trace.
fn run_traced(netlist: &Netlist, cfg: &StitchConfig) -> (StitchReport, PrescreenTrace) {
    let engine = StitchEngine::new(netlist).unwrap();
    let mut trace = None;
    let mut sink = |t: PrescreenTrace| trace = Some(t);
    let report = engine
        .run_with(
            cfg,
            RunOptions {
                resume: None,
                checkpoint_every: 0,
                on_checkpoint: None,
                on_progress: None,
                prescreen_plan: None,
                on_prescreen: Some(&mut sink),
            },
        )
        .unwrap();
    let trace = trace.unwrap();
    (report, trace)
}

#[test]
fn delta_run_is_byte_identical_to_cold_run() {
    for (name, threads) in [("s444", 1), ("s526", 8), ("s1423", 8)] {
        let base = profile(name).unwrap().build_scaled(0.3);
        let cfg = StitchConfig {
            threads,
            ..StitchConfig::default()
        };
        let fp = cfg.fingerprint();

        let (_, trace) = run_traced(&base, &cfg);
        assert_eq!(trace.reused, 0, "cold run reuses nothing");
        let manifest = ConeManifest::build(&base, fp, &trace.records).unwrap();
        // Exercise the persistence path too: plan from the parsed text.
        let manifest = ConeManifest::parse(&manifest.to_text()).unwrap();

        let target = base
            .gate_ids()
            .filter(|&id| base.gate(id).kind().is_combinational())
            .nth(3)
            .unwrap();
        let edited = flip_gate(&base, base.gate_name(target));

        let (cold, cold_trace) = run_traced(&edited, &cfg);
        let plan = plan_for(&manifest, &edited, fp).unwrap();
        assert!(plan.faults_matched > 0, "{name}: no reuse on a 1-gate edit");

        let engine = StitchEngine::new(&edited).unwrap();
        let mut delta_trace = None;
        let mut sink = |t: PrescreenTrace| delta_trace = Some(t);
        let delta = engine
            .run_with(
                &cfg,
                RunOptions {
                    resume: None,
                    checkpoint_every: 0,
                    on_checkpoint: None,
                    on_progress: None,
                    prescreen_plan: Some(plan.plan.clone()),
                    on_prescreen: Some(&mut sink),
                },
            )
            .unwrap();
        assert_eq!(
            format!("{delta:?}"),
            format!("{cold:?}"),
            "{name}: delta report must be byte-identical to cold"
        );
        let delta_trace = delta_trace.unwrap();
        assert!(delta_trace.reused > 0, "{name}: counters must show reuse");
        assert!(delta_trace.reused <= plan.faults_matched);
        // The trace a delta run emits must rebuild the same manifest a cold
        // run of the edited netlist would, so chains of edits keep working.
        assert_eq!(
            ConeManifest::build(&edited, fp, &delta_trace.records).unwrap(),
            ConeManifest::build(&edited, fp, &cold_trace.records).unwrap(),
            "{name}: delta-produced manifest drifts from cold"
        );
    }
}

#[test]
fn corrupt_record_plan_still_matches_cold_when_supports_differ() {
    // A manifest whose *records* are wrong but whose supports honestly
    // mismatch must simply fall back to recomputation for those faults.
    let base = profile("s444").unwrap().build_scaled(0.5);
    let cfg = StitchConfig::default();
    let fp = cfg.fingerprint();
    let (_, trace) = run_traced(&base, &cfg);
    let manifest = ConeManifest::build(&base, fp, &trace.records).unwrap();
    let target = base
        .gate_ids()
        .find(|&id| base.gate(id).kind().is_combinational())
        .unwrap();
    let edited = flip_gate(&base, base.gate_name(target));
    let plan = plan_for(&manifest, &edited, fp).unwrap();
    // Every dirty fault recomputes; the run must still be exact.
    let (cold, _) = run_traced(&edited, &cfg);
    let engine = StitchEngine::new(&edited).unwrap();
    let delta = engine
        .run_with(
            &cfg,
            RunOptions {
                resume: None,
                checkpoint_every: 0,
                on_checkpoint: None,
                on_progress: None,
                prescreen_plan: Some(plan.plan),
                on_prescreen: None,
            },
        )
        .unwrap();
    assert_eq!(format!("{delta:?}"), format!("{cold:?}"));
}
