//! Replays every checked-in corpus seed on every `cargo test`.
//!
//! Each `crates/fuzz/corpus/<target>/*.seed` file is hex bytes with `#`
//! comments; an optional `# expect: <substring>` marker asserts against the
//! outcome's one-line description, pinning the *category* of the typed error
//! (not its exact wording). Every seed is run through the full harness
//! twice, so a regression to panic, violation or nondeterminism fails here
//! before any fuzzing runs.

use std::fs;
use std::path::PathBuf;

use tvs_fuzz::{check, parse_seed_text, TARGETS};

fn corpus_dir(target: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(target)
}

/// The `# expect:` marker, if any, from a corpus file.
fn expect_marker(text: &str) -> Option<String> {
    text.lines().find_map(|line| {
        line.trim()
            .strip_prefix("# expect:")
            .map(|rest| rest.trim().to_string())
    })
}

#[test]
fn every_corpus_seed_replays_clean() {
    let mut replayed = 0usize;
    for target in TARGETS {
        let dir = corpus_dir(target);
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
            .map(|entry| entry.expect("corpus dir entry").path())
            .filter(|p| p.extension().is_some_and(|e| e == "seed"))
            .collect();
        entries.sort();
        assert!(
            !entries.is_empty(),
            "target {target} has no corpus seeds in {}",
            dir.display()
        );
        for path in entries {
            let text = fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
            let seed = parse_seed_text(&text)
                .unwrap_or_else(|e| panic!("malformed seed in {}: {e}", path.display()));

            // The harness itself already runs the target twice; calling it
            // twice more proves the whole check is replayable byte for byte.
            let first = check(target, &seed)
                .unwrap_or_else(|e| panic!("{} regressed: {e}", path.display()));
            let second = check(target, &seed)
                .unwrap_or_else(|e| panic!("{} regressed on replay: {e}", path.display()));
            assert_eq!(
                first.describe(),
                second.describe(),
                "{} is not replay-stable",
                path.display()
            );

            if let Some(expect) = expect_marker(&text) {
                let got = first.describe();
                assert!(
                    got.contains(&expect),
                    "{}: expected outcome containing {expect:?}, got {got:?}",
                    path.display()
                );
            }
            replayed += 1;
        }
    }
    assert!(
        replayed >= 15,
        "corpus unexpectedly small: {replayed} seeds"
    );
}
