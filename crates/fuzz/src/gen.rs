//! Seed-driven generators for `.bench` netlist text.
//!
//! Two modes, both pure functions of the seed bytes:
//!
//! * **grammar synthesis** — builds a netlist line by line from the format's
//!   grammar. In *valid-leaning* mode the construction is correct by design
//!   (acyclic fanin, fresh names, every sink observed); in *defect* mode each
//!   line may be replaced by one of the classic parser traps (duplicate
//!   definitions, self-feeding flip-flops, unterminated parens, non-ASCII
//!   identifiers, zero-input gates, …).
//! * **mutation** — takes one of the cached base texts (the paper's Figure 1
//!   circuit plus two small synthesized profiles) and applies a short burst
//!   of line- and character-level edits: near-valid inputs probe the parser
//!   paths that pure noise never reaches.

use std::sync::OnceLock;

use tvs_circuits::{fig1, profile};
use tvs_netlist::bench;

use crate::rng::FuzzRng;

const GATE_KINDS: &[&str] = &["AND", "OR", "NAND", "NOR", "XOR", "XNOR", "BUF", "NOT"];

/// The near-valid mutation bases: small, structurally diverse, cached for
/// the process lifetime (synthesis is deterministic, so the cache cannot
/// perturb results).
pub fn base_texts() -> &'static [String] {
    static TEXTS: OnceLock<Vec<String>> = OnceLock::new();
    TEXTS.get_or_init(|| {
        let mut texts = vec![bench::to_string(&fig1())];
        for name in ["s444", "s526"] {
            if let Some(p) = profile(name) {
                texts.push(bench::to_string(&p.build()));
            }
        }
        texts
    })
}

/// Grammar-driven `.bench` synthesis. With `defects` the output stays close
/// to the grammar but each line may carry one deliberate flaw; without, the
/// text is valid by construction (parse must succeed).
pub fn grammar_bench(rng: &mut FuzzRng, defects: bool) -> String {
    let n_in = 1 + rng.range(4);
    let n_ff = 1 + rng.range(5);
    let n_gate = 1 + rng.range(16);
    let mut text = String::from("# fuzz grammar netlist\n");

    // The full name pool is fixed up front so fanin can forward-reference.
    let name = |kind: &str, k: usize| format!("{kind}{k}");
    let mut pool: Vec<String> = Vec::new();
    for k in 0..n_in {
        pool.push(name("i", k));
    }
    for k in 0..n_ff {
        pool.push(name("q", k));
    }
    for k in 0..n_gate {
        pool.push(name("g", k));
    }

    for k in 0..n_in {
        text.push_str(&format!("INPUT({})\n", name("i", k)));
    }

    let mut used = vec![false; pool.len()];
    let mut defect_budget = 2usize;
    let mut defect = |rng: &mut FuzzRng| {
        if defects && defect_budget > 0 && rng.chance(48) {
            defect_budget -= 1;
            Some(rng.range(7))
        } else {
            None
        }
    };

    for k in 0..n_ff {
        let q = name("q", k);
        // Any signal but itself: flip-flops legally close sequential loops.
        let mut d = rng.range(pool.len());
        if pool[d] == q {
            d = (d + 1) % pool.len();
        }
        match defect(rng) {
            Some(0) => text.push_str(&format!("{q} = DFF({q})\n")), // self-feed
            Some(1) => text.push_str(&format!("{q} = DFF()\n")),    // zero-input
            Some(2) => text.push_str(&format!("{q} = DFF({}\n", pool[d])), // unterminated
            _ => {
                used[d] = true;
                text.push_str(&format!("{q} = DFF({})\n", pool[d]));
            }
        }
    }

    for k in 0..n_gate {
        let g = name("g", k);
        let kind = GATE_KINDS[rng.range(GATE_KINDS.len())];
        let arity = if kind == "BUF" || kind == "NOT" {
            1
        } else {
            1 + rng.range(3)
        };
        // Fanin from inputs, flip-flops and *earlier* gates only, so the
        // combinational core is acyclic by construction.
        let horizon = n_in + n_ff + k;
        let mut fanin = Vec::new();
        for _ in 0..arity {
            let idx = rng.range(horizon.max(1));
            used[idx] = true;
            fanin.push(pool[idx].clone());
        }
        match defect(rng) {
            Some(0) => text.push_str(&format!("{g} = {kind}()\n")),
            Some(1) => {
                text.push_str(&format!("{g} = {kind}({})\n", fanin.join(", ")).replace(')', ""))
            }
            Some(2) => text.push_str(&format!("{g} = {kind}(phantom{k})\n")),
            Some(3) => {
                // Duplicate definition of an existing name.
                let dup = pool[rng.range(n_in + n_ff + k)].clone();
                text.push_str(&format!("{dup} = {kind}({})\n", fanin.join(", ")));
            }
            Some(4) => text.push_str(&format!("caf\u{e9}{k} = {kind}({})\n", fanin.join(", "))),
            Some(5) => text.push_str(&format!("{g} {kind}({})\n", fanin.join(", "))),
            Some(6) => text.push_str(&format!("{g} = MAJ3({})\n", fanin.join(", "))),
            _ => text.push_str(&format!("{g} = {kind}({})\n", fanin.join(", "))),
        }
    }

    // Observe every sink (signals nothing consumed) so valid-mode circuits
    // pass dangling-logic lint checks; defect mode may double-declare one.
    let mut any = false;
    for (idx, name) in pool.iter().enumerate().skip(n_in) {
        if !used[idx] {
            text.push_str(&format!("OUTPUT({name})\n"));
            any = true;
        }
    }
    if !any {
        text.push_str(&format!("OUTPUT({})\n", pool[pool.len() - 1]));
    }
    if defects && rng.chance(32) {
        let target = pool[rng.range(pool.len())].clone();
        text.push_str(&format!("OUTPUT({target})\nOUTPUT({target})\n"));
    }
    text
}

/// Applies a short seed-driven burst of line- and character-level edits.
pub fn mutate(base: &str, rng: &mut FuzzRng) -> String {
    let mut text = base.to_string();
    for _ in 0..1 + rng.range(4) {
        text = mutate_once(&text, rng);
    }
    text
}

fn mutate_once(text: &str, rng: &mut FuzzRng) -> String {
    match rng.range(6) {
        // Truncate at an arbitrary character boundary.
        0 => {
            let chars: Vec<char> = text.chars().collect();
            let cut = rng.range(chars.len() + 1);
            chars[..cut].iter().collect()
        }
        // Delete one line.
        1 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                lines.remove(rng.range(lines.len()));
            }
            join_lines(&lines)
        }
        // Duplicate one line (re-declarations, duplicate outputs, …).
        2 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let at = rng.range(lines.len());
                lines.insert(at, lines[at]);
            }
            join_lines(&lines)
        }
        // Overwrite one character with seed-chosen printable ASCII.
        3 => {
            let mut chars: Vec<char> = text.chars().collect();
            if !chars.is_empty() {
                let at = rng.range(chars.len());
                chars[at] = char::from(b' ' + (rng.byte() % 95));
            }
            chars.into_iter().collect()
        }
        // Insert a non-ASCII character.
        4 => {
            let mut chars: Vec<char> = text.chars().collect();
            let at = rng.range(chars.len() + 1);
            let c = ['\u{e9}', '\u{201c}', '\u{200b}', '\u{0430}'][rng.range(4)];
            chars.insert(at, c);
            chars.into_iter().collect()
        }
        // Swap two lines (forward references, order-dependent defects).
        _ => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() >= 2 {
                let a = rng.range(lines.len());
                let b = rng.range(lines.len());
                lines.swap(a, b);
            }
            join_lines(&lines)
        }
    }
}

fn join_lines(lines: &[&str]) -> String {
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_mode_always_parses() {
        // Valid-leaning grammar output must parse for any seed prefix.
        for len in 0..48usize {
            let seed: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37)).collect();
            let mut rng = FuzzRng::new(&seed);
            let text = grammar_bench(&mut rng, false);
            bench::parse("gen", &text).expect(&text);
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let seed: Vec<u8> = (0..64u8).collect();
        let a = grammar_bench(&mut FuzzRng::new(&seed), true);
        let b = grammar_bench(&mut FuzzRng::new(&seed), true);
        assert_eq!(a, b);
        let base = &base_texts()[0];
        let m1 = mutate(base, &mut FuzzRng::new(&seed));
        let m2 = mutate(base, &mut FuzzRng::new(&seed));
        assert_eq!(m1, m2);
    }
}
