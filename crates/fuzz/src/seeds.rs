//! Seed encoding and the CI schedule.
//!
//! Seeds travel as hex text: a corpus file is hex bytes with free
//! whitespace, `#`-to-end-of-line comments, and an optional
//! `# expect: <substring>` marker the corpus replay test asserts against the
//! outcome. The CI schedule derives round seeds from a fixed base with
//! SplitMix64 (the same seeder the engine PRNG uses), so the whole fuzz
//! stage is one deterministic function of `(base, rounds)`.

use tvs_logic::SplitMix64;

/// Renders a seed as lowercase hex, the replayable form printed on failure.
pub fn seed_to_hex(seed: &[u8]) -> String {
    if seed.is_empty() {
        return "(empty)".to_string();
    }
    let mut out = String::with_capacity(seed.len() * 2);
    for b in seed {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Parses corpus seed text: hex bytes with arbitrary whitespace and `#`
/// comments. `(empty)` (the failure-report rendering of an empty seed) and
/// fully-commented files parse to an empty seed.
///
/// # Errors
///
/// Returns a description of the first non-hex character or a trailing odd
/// nibble.
pub fn parse_seed_text(text: &str) -> Result<Vec<u8>, String> {
    let mut nibbles: Vec<u8> = Vec::new();
    for line in text.lines() {
        let line = match line.find('#') {
            Some(pos) => &line[..pos],
            None => line,
        };
        for c in line.chars() {
            if c.is_whitespace() {
                continue;
            }
            if line.trim() == "(empty)" {
                break;
            }
            let nibble = c
                .to_digit(16)
                .ok_or_else(|| format!("non-hex character {c:?} in seed"))?;
            nibbles.push(nibble as u8);
        }
    }
    if !nibbles.len().is_multiple_of(2) {
        return Err("odd number of hex digits in seed".to_string());
    }
    Ok(nibbles.chunks(2).map(|p| p[0] << 4 | p[1]).collect())
}

/// The deterministic CI seed schedule: round `i` of base `b` is a byte
/// string of seed-derived length (1–96 bytes) drawn from
/// `SplitMix64(b XOR f(i))`. Varying lengths matter — the zero tail after
/// exhaustion is exactly the "short seed" behaviour the generators must
/// stay total under.
pub fn schedule_seed(base: u64, round: u64) -> Vec<u8> {
    let mut sm = SplitMix64::new(base ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let len = 1 + (sm.next_u64() % 96) as usize;
    let mut seed = Vec::with_capacity(len);
    while seed.len() < len {
        for b in sm.next_u64().to_be_bytes() {
            if seed.len() < len {
                seed.push(b);
            }
        }
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let seed = vec![0x00, 0xff, 0x12, 0xab];
        assert_eq!(parse_seed_text(&seed_to_hex(&seed)).unwrap(), seed);
        assert_eq!(parse_seed_text("(empty)").unwrap(), Vec::<u8>::new());
        assert_eq!(seed_to_hex(&[]), "(empty)");
    }

    #[test]
    fn comments_and_whitespace_are_free() {
        let text = "# expect: typed-error\n12 ab # trailing\n  cd\n";
        assert_eq!(parse_seed_text(text).unwrap(), vec![0x12, 0xab, 0xcd]);
    }

    #[test]
    fn malformed_seed_text_is_typed() {
        assert!(parse_seed_text("zz").is_err());
        assert!(parse_seed_text("abc").is_err());
    }

    #[test]
    fn schedule_is_deterministic_with_varied_lengths() {
        let a = schedule_seed(42, 7);
        assert_eq!(a, schedule_seed(42, 7));
        assert_ne!(a, schedule_seed(42, 8));
        let lens: std::collections::BTreeSet<usize> =
            (0..64).map(|i| schedule_seed(1, i).len()).collect();
        assert!(lens.len() > 8, "lengths vary: {lens:?}");
    }
}
