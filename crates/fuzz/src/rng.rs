//! The byte-seed reader every generator draws from.
//!
//! A [`FuzzRng`] is not a random number generator at all: it is a cursor
//! over the caller's seed bytes. Every structural decision a generator makes
//! consumes bytes from the front of the seed, so the seed *is* the test case
//! — two runs over the same bytes make identical decisions, and a failing
//! input is reported (and replayed, and minimized) as the byte string
//! itself. Once the seed is exhausted the reader yields an endless tail of
//! zeros, so every seed is total: short seeds simply mean "all remaining
//! choices take the zero branch".

/// A deterministic byte-string reader with a fixed all-zeros tail.
#[derive(Debug, Clone)]
pub struct FuzzRng<'s> {
    seed: &'s [u8],
    pos: usize,
}

impl<'s> FuzzRng<'s> {
    /// Wraps a seed byte string.
    pub fn new(seed: &'s [u8]) -> Self {
        FuzzRng { seed, pos: 0 }
    }

    /// True once every seed byte has been consumed (the zero tail is live).
    pub fn exhausted(&self) -> bool {
        self.pos >= self.seed.len()
    }

    /// Seed bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.seed.len().saturating_sub(self.pos)
    }

    /// The next seed byte, or `0` forever after exhaustion.
    pub fn byte(&mut self) -> u8 {
        let b = self.seed.get(self.pos).copied().unwrap_or(0);
        self.pos = self.pos.saturating_add(1);
        b
    }

    /// Two seed bytes, big-endian.
    pub fn u16(&mut self) -> u16 {
        u16::from(self.byte()) << 8 | u16::from(self.byte())
    }

    /// Four seed bytes, big-endian.
    pub fn u32(&mut self) -> u32 {
        u32::from(self.u16()) << 16 | u32::from(self.u16())
    }

    /// Eight seed bytes, big-endian.
    pub fn u64(&mut self) -> u64 {
        u64::from(self.u32()) << 32 | u64::from(self.u32())
    }

    /// A value in `0..n` (`0` when `n == 0`), from one byte for small `n`
    /// and four bytes otherwise. The modulo bias is irrelevant here — the
    /// mapping only needs to be deterministic and to reach every branch.
    pub fn range(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        if n <= usize::from(u8::MAX) {
            usize::from(self.byte()) % n
        } else {
            self.u32() as usize % n
        }
    }

    /// True with probability `p/256` (one byte consumed).
    pub fn chance(&mut self, p: u8) -> bool {
        self.byte() < p
    }

    /// Up to `n` raw bytes; stops early at seed exhaustion so garbage
    /// payloads shrink with the seed instead of padding out with zeros.
    pub fn take(&mut self, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n.min(self.remaining()));
        for _ in 0..n {
            if self.exhausted() {
                break;
            }
            out.push(self.byte());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_yields_fixed_zero_tail() {
        let mut r = FuzzRng::new(&[7]);
        assert_eq!(r.byte(), 7);
        assert!(r.exhausted());
        assert_eq!(r.byte(), 0);
        assert_eq!(r.u64(), 0);
        assert_eq!(r.range(13), 0);
        assert!(!r.chance(0));
    }

    #[test]
    fn every_draw_is_a_pure_function_of_the_seed() {
        let seed = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut a = FuzzRng::new(&seed);
        let mut b = FuzzRng::new(&seed);
        assert_eq!(a.u16(), b.u16());
        assert_eq!(a.range(300), b.range(300));
        assert_eq!(a.take(8), b.take(8));
    }

    #[test]
    fn range_is_always_in_bounds() {
        let seed: Vec<u8> = (0..=255).collect();
        let mut r = FuzzRng::new(&seed);
        for n in 1..60usize {
            assert!(r.range(n) < n);
        }
        assert_eq!(r.range(0), 0);
    }

    #[test]
    fn take_stops_at_exhaustion() {
        let mut r = FuzzRng::new(&[1, 2, 3]);
        assert_eq!(r.take(10), vec![1, 2, 3]);
        assert!(r.take(4).is_empty());
    }
}
