//! Deterministic structured fuzzing of every TVS input surface.
//!
//! Every byte the toolkit accepts from outside — `.bench` netlist text, the
//! length-prefixed JSON wire frames of the serve/fleet protocol, `.tvsnap`
//! checkpoint text — flows through a parser whose contract is "typed error
//! or success, never a panic". This crate checks that contract the way the
//! clvm_rs exemplar does: a [`FuzzRng`] derives structured inputs
//! deterministically from a seed **byte string**, so every failure is a
//! replayable seed, and minimized seeds live in `crates/fuzz/corpus/` where
//! a regression test replays them on every `cargo test`.
//!
//! Five targets, each a pure function `fn(seed: &[u8]) -> Outcome`:
//!
//! | target     | surface |
//! |------------|---------|
//! | `bench`    | `.bench` parser: grammar synthesis, near-valid mutations of cached profiles, raw noise; round-trips every accepted netlist |
//! | `frame`    | wire framing + JSON + version/config decoding (the serve *and* fleet entry path) |
//! | `snapshot` | `.tvsnap` parse, round-trip, and the engine's resume validation |
//! | `e2e`      | whole random netlists through lint → run → checkpoint → resume, byte-comparing reports at 1 and 4 threads |
//! | `delta`    | base + mutation netlist pairs through manifest build → round trip → plan → delta run, byte-compared to the mutant's cold run |
//!
//! The harness ([`check`]) runs a target **twice** per seed under
//! `catch_unwind`: a panic, a contract violation reported by the target
//! itself, or any divergence between the two runs is a [`FuzzFailure`]
//! carrying the seed in replayable hex form. `tvs fuzz` drives bounded
//! deterministic rounds of this harness from a fixed seed schedule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod rng;
mod seeds;
mod targets;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub use rng::FuzzRng;
pub use seeds::{parse_seed_text, schedule_seed, seed_to_hex};

/// What a fuzz target observed for one seed. `Ok` and `TypedError` both
/// satisfy the target contract; `Violation` is the target reporting a broken
/// invariant in-band (round-trip mismatch, thread divergence) — the harness
/// treats it like a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The input was accepted; the string is a deterministic digest of what
    /// was produced (used for the double-run determinism compare).
    Ok(String),
    /// The input was rejected with a typed error, rendered.
    TypedError(String),
    /// The target detected a broken invariant on an *accepted* input.
    Violation(String),
}

impl Outcome {
    /// One-line rendering for logs and determinism comparison.
    pub fn describe(&self) -> String {
        match self {
            Outcome::Ok(d) => format!("ok: {d}"),
            Outcome::TypedError(e) => format!("typed-error: {e}"),
            Outcome::Violation(v) => format!("violation: {v}"),
        }
    }
}

/// The registered fuzz target names, in the order `tvs fuzz` and the CI
/// schedule iterate them.
pub const TARGETS: &[&str] = &["bench", "frame", "snapshot", "e2e", "delta"];

/// Runs one target once, unguarded. Returns `None` for an unknown target
/// name.
pub fn run_target(target: &str, seed: &[u8]) -> Option<Outcome> {
    match target {
        "bench" => Some(targets::bench_target(seed)),
        "frame" => Some(targets::frame_target(seed)),
        "snapshot" => Some(targets::snapshot_target(seed)),
        "e2e" => Some(targets::e2e_target(seed)),
        "delta" => Some(targets::delta_target(seed)),
        _ => None,
    }
}

/// How a seed failed the harness contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzFailure {
    /// No target is registered under this name.
    UnknownTarget(String),
    /// The target panicked instead of returning a typed outcome.
    Panicked(String),
    /// The target reported a broken invariant on an accepted input.
    Violation(String),
    /// Two runs over the same seed produced different outcomes.
    NonDeterministic {
        /// Outcome of the first run.
        first: String,
        /// Outcome of the second run.
        second: String,
    },
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::UnknownTarget(t) => write!(f, "unknown fuzz target {t:?}"),
            FuzzFailure::Panicked(m) => write!(f, "target panicked: {m}"),
            FuzzFailure::Violation(v) => write!(f, "invariant violation: {v}"),
            FuzzFailure::NonDeterministic { first, second } => write!(
                f,
                "outcome not deterministic: first run {first:?}, second run {second:?}"
            ),
        }
    }
}

impl std::error::Error for FuzzFailure {}

fn run_guarded(target: &str, seed: &[u8]) -> Result<Outcome, FuzzFailure> {
    let outcome = catch_unwind(AssertUnwindSafe(|| run_target(target, seed)))
        .map_err(|payload| FuzzFailure::Panicked(panic_message(payload.as_ref())))?;
    outcome.ok_or_else(|| FuzzFailure::UnknownTarget(target.to_string()))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Enforces the full harness contract for one `(target, seed)` pair: the
/// target must return a typed outcome (no panic, no violation), and running
/// it twice must produce byte-identical outcomes.
pub fn check(target: &str, seed: &[u8]) -> Result<Outcome, FuzzFailure> {
    let first = run_guarded(target, seed)?;
    let second = run_guarded(target, seed)?;
    if first != second {
        return Err(FuzzFailure::NonDeterministic {
            first: first.describe(),
            second: second.describe(),
        });
    }
    if let Outcome::Violation(v) = &first {
        return Err(FuzzFailure::Violation(v.clone()));
    }
    Ok(first)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_targets_are_a_typed_failure() {
        assert!(matches!(
            check("no-such-target", &[]),
            Err(FuzzFailure::UnknownTarget(_))
        ));
    }

    #[test]
    fn empty_seed_is_total_for_every_target() {
        for target in TARGETS {
            let outcome = check(target, &[]).expect(target);
            assert!(!matches!(outcome, Outcome::Violation(_)), "{target}");
        }
    }
}
