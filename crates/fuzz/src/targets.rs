//! The four fuzz targets. Each is a pure function of the seed bytes that
//! returns an [`Outcome`]: `Ok` with a deterministic digest, `TypedError`
//! when a library layer rejected the input through its error type, or
//! `Violation` when an *accepted* input broke an invariant the target
//! checks (round-trip identity, thread-count independence). Anything else —
//! a panic, an abort, nondeterminism — is the bug class this crate exists
//! to find.

use std::io::Cursor;
use std::sync::OnceLock;

use tvs_circuits::fig1;
use tvs_core::json::{self, Value};
use tvs_lint::{admission_diagnostics, has_deny, TestabilityConfig};
use tvs_netlist::bench;
use tvs_serve::proto::{read_frame, write_frame, PROTO_VERSION};
use tvs_serve::{check_version, config_from_wire};
use tvs_stitch::{
    fnv1a, RunOptions, Snapshot, StitchConfig, StitchEngine, StitchReport, Termination,
};

use crate::gen;
use crate::rng::FuzzRng;
use crate::Outcome;

// ---------------------------------------------------------------- bench --

/// `.bench` netlist text: grammar synthesis (with and without injected
/// defects), near-valid mutation of cached base circuits, and raw noise.
/// Accepted netlists must round-trip through the canonical writer.
pub fn bench_target(seed: &[u8]) -> Outcome {
    let mut rng = FuzzRng::new(seed);
    let text = match rng.range(4) {
        0 => gen::grammar_bench(&mut rng, false),
        1 => gen::grammar_bench(&mut rng, true),
        2 => {
            let bases = gen::base_texts();
            let base = &bases[rng.range(bases.len())];
            gen::mutate(base, &mut rng)
        }
        _ => String::from_utf8_lossy(&rng.take(256)).into_owned(),
    };
    let netlist = match bench::parse("fuzz", &text) {
        Err(e) => return Outcome::TypedError(format!("netlist: {e}")),
        Ok(n) => n,
    };
    // Round-trip: the canonical rendering of an accepted netlist must parse
    // back to the same structure.
    let canon = bench::to_string(&netlist);
    let back = match bench::parse("fuzz", &canon) {
        Err(e) => return Outcome::Violation(format!("canonical text failed to reparse: {e}")),
        Ok(n) => n,
    };
    let shape = |n: &tvs_netlist::Netlist| {
        (
            n.gate_count(),
            n.input_count(),
            n.output_count(),
            n.dff_count(),
        )
    };
    if shape(&netlist) != shape(&back) {
        return Outcome::Violation(format!(
            "round-trip changed the shape: {:?} -> {:?}",
            shape(&netlist),
            shape(&back)
        ));
    }
    // The admission lint must hold its no-panic contract on anything the
    // parser admits.
    let diags = admission_diagnostics(&netlist, &TestabilityConfig::default());
    Outcome::Ok(format!(
        "shape {:?}, {} diagnostics, deny {}",
        shape(&netlist),
        diags.len(),
        has_deny(&diags)
    ))
}

// ---------------------------------------------------------------- frame --

const OPS: &[&str] = &[
    "submit", "status", "wait", "fetch", "stats", "lint", "shutdown", "nonsense",
];

/// Builds a request document the way a (possibly broken) client would.
fn build_request(rng: &mut FuzzRng) -> Value {
    let mut pairs = Vec::new();
    match rng.range(4) {
        0 => pairs.push(("v".to_string(), Value::num_u64(PROTO_VERSION))),
        1 => pairs.push(("v".to_string(), Value::num_u64(u64::from(rng.byte())))),
        2 => pairs.push(("v".to_string(), Value::str("one"))),
        _ => {} // absent
    }
    pairs.push(("op".to_string(), Value::str(OPS[rng.range(OPS.len())])));
    if rng.chance(128) {
        pairs.push((
            "bench".to_string(),
            Value::str(String::from_utf8_lossy(&rng.take(24)).into_owned()),
        ));
    }
    if rng.chance(128) {
        pairs.push(("job".to_string(), Value::str(format!("j{}", rng.byte()))));
    }
    if rng.chance(160) {
        let mut config = Vec::new();
        for _ in 0..rng.range(4) {
            let key = [
                "seed", "fixed", "select", "vxor", "hxor", "budget", "bogus", "strategy",
            ][rng.range(8)]
            .to_string();
            // The string pool mixes legacy selection names, valid strategy
            // names, near-miss spellings (case drift, missing dash) and
            // plain garbage: every unknown name must come back as a typed
            // rejection, never a panic.
            let value = match rng.range(4) {
                0 => Value::num_u64(u64::from(rng.u16())),
                1 => Value::str(
                    [
                        "random",
                        "most",
                        "sideways",
                        "adi",
                        "scheme-search",
                        "buckets",
                        "adI",
                        "schemesearch",
                        "warp",
                    ][rng.range(9)],
                ),
                2 => Value::Bool(rng.chance(128)),
                _ => Value::Null,
            };
            config.push((key, value));
        }
        pairs.push(("config".to_string(), Value::Obj(config)));
    }
    Value::Obj(pairs)
}

/// Length-prefixed JSON protocol frames, exactly as the serve daemon and the
/// fleet coordinator read them: framing → JSON → version check → config
/// decode. Mutations cover version drift, oversize declared lengths,
/// truncation and raw garbage.
pub fn frame_target(seed: &[u8]) -> Outcome {
    let mut rng = FuzzRng::new(seed);

    // The mutation plan is drawn *before* the request builder so short seeds
    // still reach every stream-level corruption (the builder consumes most
    // of the seed; after exhaustion every draw is the fixed zero tail).
    let mutation = rng.range(5);
    let cut = rng.u16() as usize;
    let decl_kind = rng.range(4);
    let decl_extra = u64::from(rng.u16());

    // A well-formed stream of 1..=3 frames...
    let mut stream: Vec<u8> = Vec::new();
    for _ in 0..1 + rng.range(3) {
        let doc = build_request(&mut rng).to_text();
        if write_frame(&mut stream, &doc).is_err() {
            return Outcome::TypedError("oversize frame at write time".to_string());
        }
    }
    // ...then mutated at the byte level.
    match mutation {
        0 => {} // leave well-formed
        1 => stream.truncate(cut % (stream.len() + 1)),
        2 => {
            // Overwrite the length line with a seed-chosen declared length:
            // plausible, just-over-cap, u64::MAX, or zero-padded past the
            // digit bound (more digits than any u64 ever needs).
            let rewritten_len = match decl_kind {
                0 => format!("{decl_extra}\n"),
                1 => format!("{}\n", 64 * 1024 * 1024 + 1 + decl_extra),
                2 => format!("{}\n", u64::MAX),
                _ => format!("{decl_extra:0>24}\n"),
            };
            let mut rewritten = rewritten_len.into_bytes();
            let old_end = stream.iter().position(|&b| b == b'\n').unwrap_or(0);
            rewritten.extend_from_slice(&stream[(old_end + 1).min(stream.len())..]);
            stream = rewritten;
        }
        3 => {
            if !stream.is_empty() {
                let at = rng.range(stream.len());
                stream[at] = rng.byte();
            }
        }
        _ => {
            let mut garbage = rng.take(32);
            garbage.extend_from_slice(&stream);
            stream = garbage;
        }
    }

    // Drain the stream the way a connection loop does.
    let mut reader = Cursor::new(stream);
    let mut digest = String::new();
    for _ in 0..4 {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => {
                digest.push_str("eof;");
                break;
            }
            Err(e) => return Outcome::TypedError(format!("proto: {e}")),
        };
        let doc = match json::parse(&frame) {
            Ok(v) => v,
            Err(e) => return Outcome::TypedError(format!("json: {e}")),
        };
        match check_version(&doc) {
            Ok(()) => digest.push_str("v-ok,"),
            Err(e) => return Outcome::TypedError(format!("version: {e}")),
        }
        match config_from_wire(doc.get("config")) {
            Ok(c) => digest.push_str(&format!("cfg-seed {};", c.seed)),
            Err(e) => return Outcome::TypedError(format!("config: {e}")),
        }
    }
    Outcome::Ok(digest)
}

// ------------------------------------------------------------- snapshot --

/// The engine configuration the snapshot target runs and resumes under.
fn snapshot_config() -> StitchConfig {
    StitchConfig {
        threads: 1,
        ..StitchConfig::default()
    }
}

/// A real checkpoint of the paper's Figure 1 circuit, captured once per
/// process. The run is deterministic, so the cache cannot perturb outcomes.
fn base_snapshot_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let netlist = fig1();
        let mut first: Option<Snapshot> = None;
        if let Ok(engine) = StitchEngine::new(&netlist) {
            let mut keep = |s: Snapshot| {
                if first.is_none() {
                    first = Some(s);
                }
            };
            let _ = engine.run_with(
                &snapshot_config(),
                RunOptions {
                    resume: None,
                    checkpoint_every: 1,
                    on_checkpoint: Some(&mut keep),
                    on_progress: None,
                    prescreen_plan: None,
                    on_prescreen: None,
                },
            );
        }
        match first {
            Some(s) => s.to_text(),
            // Unreachable in practice (fig1 always runs); a header-only text
            // keeps the target total without a panic path.
            None => "tvs-snapshot v2\n".to_string(),
        }
    })
}

/// Rewrites the closing checksum line so a structurally mutated body is
/// self-consistent again — corruption the checksum *cannot* catch, which is
/// exactly what the parser's per-line validation must absorb.
fn fix_checksum(body_lines: &[&str]) -> String {
    let mut body = body_lines.join("\n");
    body.push('\n');
    let sum = fnv1a(body.as_bytes());
    body.push_str(&format!("checksum {sum:016x}\n"));
    body
}

/// `.tvsnap` checkpoint text: raw corruption (checksum catches), structural
/// mutation under a refreshed checksum (per-line validation catches),
/// truncation, and synthetic section-count lies. Accepted snapshots must
/// round-trip and must resume — or be rejected with a typed error — by the
/// engine they were captured from.
pub fn snapshot_target(seed: &[u8]) -> Outcome {
    let mut rng = FuzzRng::new(seed);
    let base = base_snapshot_text();
    let text: String = match rng.range(4) {
        // Untouched: the accept path, exercised end to end.
        0 => base.to_string(),
        // Raw corruption with the checksum left stale.
        1 => {
            let mut chars: Vec<char> = base.chars().collect();
            match rng.range(3) {
                0 => {
                    let cut = rng.range(chars.len() + 1);
                    chars.truncate(cut);
                }
                1 => {
                    if !chars.is_empty() {
                        let at = rng.range(chars.len());
                        chars[at] = char::from(b' ' + (rng.byte() % 95));
                    }
                }
                _ => {
                    let at = rng.range(chars.len() + 1);
                    chars.insert(at, '\u{fffd}');
                }
            }
            chars.into_iter().collect()
        }
        // Structural mutation, checksum refreshed: the checksum proves
        // self-consistency, not honesty, so every forged body must die on
        // per-line validation (or typed resume mismatch), never in an
        // allocator abort or a panic.
        2 => {
            let mut lines: Vec<String> = base.lines().map(str::to_string).collect();
            if lines.len() < 2 {
                return Outcome::TypedError("base snapshot too short".to_string());
            }
            lines.pop(); // drop the stale checksum line; recomputed below
            match rng.range(6) {
                // Lie about a section count, far past what the body holds.
                0 => {
                    let key = ["window", "cycles", "faults"][rng.range(3)];
                    if let Some(at) = lines.iter().position(|l| l.starts_with(key)) {
                        let count = [u64::MAX, 99_999_999, u64::from(rng.u16())][rng.range(3)];
                        lines[at] = format!("{key} {count}");
                    }
                }
                // Foreign header version.
                1 => lines[0] = format!("tvs-snapshot v{}", rng.byte()),
                // Forge the configuration fingerprint (typed resume mismatch).
                2 => {
                    if let Some(at) = lines.iter().position(|l| l.starts_with("config")) {
                        lines[at] = format!("config {:016x}", rng.u64());
                    }
                }
                // Delete one body line.
                3 => {
                    let at = rng.range(lines.len());
                    lines.remove(at);
                }
                // Duplicate one body line.
                4 => {
                    let at = rng.range(lines.len());
                    let dup = lines[at].clone();
                    lines.insert(at, dup);
                }
                // Overwrite one line with noise.
                _ => {
                    let at = rng.range(lines.len());
                    lines[at] = String::from_utf8_lossy(&rng.take(16)).into_owned();
                }
            }
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            fix_checksum(&refs)
        }
        // Synthetic from fragments.
        _ => {
            let fragments = [
                "tvs-snapshot v2",
                "tvs-snapshot v1", // the pre-strategy format: foreign now
                "tvs-snapshot v9",
                "circuit 3 3 8 fig1",
                "config 0000000000000000",
                "rng 1 2 3 4",
                "budget-spent 7",
                "strategy-cursor 2",
                "strategy-cursor 18446744073709551615",
                "sc 7",
                "cursor 2 0",
                "window 18446744073709551615",
                "cycles 18446744073709551615",
                "faults 99999999",
                "w 1 3ff0000000000000",
                "f H 101",
                "good-image 101",
                "never-target -",
            ];
            let mut lines = Vec::new();
            for _ in 0..1 + rng.range(10) {
                lines.push(fragments[rng.range(fragments.len())]);
            }
            if rng.chance(200) {
                fix_checksum(&lines)
            } else {
                let mut text = lines.join("\n");
                text.push('\n');
                text
            }
        }
    };

    let snap = match Snapshot::parse(&text) {
        Err(e) => return Outcome::TypedError(format!("snapshot: {e}")),
        Ok(s) => s,
    };
    // Round-trip identity on anything the parser accepts.
    match Snapshot::parse(&snap.to_text()) {
        Err(e) => return Outcome::Violation(format!("round-trip reparse failed: {e}")),
        Ok(back) if back != snap => {
            return Outcome::Violation("round-trip changed the snapshot".to_string())
        }
        Ok(_) => {}
    }
    // Resume the engine it was captured from: typed rejection or success.
    let netlist = fig1();
    let engine = match StitchEngine::new(&netlist) {
        Err(e) => return Outcome::TypedError(format!("engine: {e}")),
        Ok(e) => e,
    };
    match engine.run_with(
        &snapshot_config(),
        RunOptions {
            resume: Some(snap),
            ..RunOptions::default()
        },
    ) {
        Err(e) => Outcome::TypedError(format!("resume: {e}")),
        Ok(report) => Outcome::Ok(format!(
            "resumed to {} cycles, coverage {:.4}",
            report.cycles.len(),
            report.metrics.fault_coverage
        )),
    }
}

// ------------------------------------------------------------------ e2e --

fn describe_report(report: &StitchReport) -> String {
    // Debug rendering is a byte-exact digest of the full report (bit
    // vectors, metrics, termination), which is what the thread-count and
    // resume equivalence checks compare.
    format!("{report:?}")
}

/// Whole random netlists end to end: parse → admission lint → run with
/// checkpoints at 1 thread → straight run at 4 threads → resume from a
/// mid-run checkpoint at 4 threads, byte-comparing all three reports.
pub fn e2e_target(seed: &[u8]) -> Outcome {
    let mut rng = FuzzRng::new(seed);
    let text = gen::grammar_bench(&mut rng, false);
    let netlist = match bench::parse("fuzz-e2e", &text) {
        Err(e) => return Outcome::TypedError(format!("netlist: {e}")),
        Ok(n) => n,
    };
    let diags = admission_diagnostics(&netlist, &TestabilityConfig::default());
    if has_deny(&diags) {
        return Outcome::TypedError(format!("admission denied ({} diagnostics)", diags.len()));
    }
    let engine = match StitchEngine::new(&netlist) {
        Err(e) => return Outcome::TypedError(format!("engine: {e}")),
        Ok(e) => e,
    };
    let config = StitchConfig {
        seed: rng.u64(),
        budget: Some(2_000 + 1_000 * rng.range(4) as u64),
        threads: 1,
        ..StitchConfig::default()
    };

    let mut snapshots: Vec<Snapshot> = Vec::new();
    let mut keep = |s: Snapshot| snapshots.push(s);
    let reference = match engine.run_with(
        &config,
        RunOptions {
            resume: None,
            checkpoint_every: 1 + rng.range(3),
            on_checkpoint: Some(&mut keep),
            on_progress: None,
            prescreen_plan: None,
            on_prescreen: None,
        },
    ) {
        Err(e) => return Outcome::TypedError(format!("stitch: {e}")),
        Ok(r) => r,
    };
    let reference_digest = describe_report(&reference);

    let wide_config = StitchConfig {
        threads: 4,
        ..config.clone()
    };
    match engine.run(&wide_config) {
        Err(e) => return Outcome::Violation(format!("4-thread run failed after 1-thread: {e}")),
        Ok(wide) => {
            if describe_report(&wide) != reference_digest {
                return Outcome::Violation(
                    "1-thread and 4-thread reports are not byte-identical".to_string(),
                );
            }
        }
    }

    let mut resumed_from = "none".to_string();
    if !snapshots.is_empty() {
        let snap = snapshots[snapshots.len() / 2].clone();
        resumed_from = format!("cycle {}", snap.cycles.len());
        match engine.run_with(
            &wide_config,
            RunOptions {
                resume: Some(snap),
                ..RunOptions::default()
            },
        ) {
            Err(e) => return Outcome::Violation(format!("resume failed on own snapshot: {e}")),
            Ok(resumed) => {
                if describe_report(&resumed) != reference_digest {
                    return Outcome::Violation(
                        "resumed 4-thread run diverged from the uninterrupted run".to_string(),
                    );
                }
            }
        }
    }

    let ended = match reference.termination {
        Termination::Complete => "complete",
        Termination::BudgetExhausted { .. } => "budget",
        Termination::WorkerPanic { .. } => "worker-panic",
    };
    Outcome::Ok(format!(
        "{} cycles, coverage {:.4}, {ended}, resume {resumed_from}",
        reference.cycles.len(),
        reference.metrics.fault_coverage
    ))
}

// ---------------------------------------------------------------- delta --

/// One engine run capturing the prescreen trace alongside the report.
fn run_traced(
    engine: &StitchEngine,
    config: &StitchConfig,
    plan: Option<Vec<Option<tvs_stitch::PrescreenRecord>>>,
) -> Result<(StitchReport, Option<tvs_stitch::PrescreenTrace>), String> {
    let mut trace: Option<tvs_stitch::PrescreenTrace> = None;
    let mut sink = |t: tvs_stitch::PrescreenTrace| trace = Some(t);
    let report = engine
        .run_with(
            config,
            RunOptions {
                resume: None,
                checkpoint_every: 0,
                on_checkpoint: None,
                on_progress: None,
                prescreen_plan: plan,
                on_prescreen: Some(&mut sink),
            },
        )
        .map_err(|e| e.to_string())?;
    Ok((report, trace))
}

/// Base + mutation netlist pairs through the full delta pipeline: cold run
/// of the base, manifest build and text round trip, plan derivation for an
/// id-preserving one-gate mutation, then cold vs delta runs of the mutant
/// byte-compared — the subsystem's non-negotiable invariant under fuzz.
pub fn delta_target(seed: &[u8]) -> Outcome {
    let mut rng = FuzzRng::new(seed);
    let text = gen::grammar_bench(&mut rng, false);
    let base = match bench::parse("fuzz-delta", &text) {
        Err(e) => return Outcome::TypedError(format!("netlist: {e}")),
        Ok(n) => n,
    };
    let diags = admission_diagnostics(&base, &TestabilityConfig::default());
    if has_deny(&diags) {
        return Outcome::TypedError(format!("admission denied ({} diagnostics)", diags.len()));
    }

    // An id-preserving mutation: one combinational gate flipped to its
    // same-arity dual in the canonical text, so the edited netlist keeps
    // the base's interface and gate names.
    let canonical = bench::to_string(&base);
    let duals: &[(&str, &str)] = &[
        ("AND", "OR"),
        ("OR", "AND"),
        ("NAND", "NOR"),
        ("NOR", "NAND"),
        ("XOR", "XNOR"),
        ("XNOR", "XOR"),
        ("NOT", "BUF"),
        ("BUF", "NOT"),
    ];
    let flippable: Vec<_> = base
        .gate_ids()
        .filter(|&id| {
            let kw = base.gate(id).kind().keyword();
            duals.iter().any(|(from, _)| *from == kw)
        })
        .collect();
    if flippable.is_empty() {
        return Outcome::TypedError("no flippable combinational gate".to_string());
    }
    let victim = flippable[rng.range(flippable.len())];
    let kw = base.gate(victim).kind().keyword();
    let (_, to) = duals
        .iter()
        .find(|(from, _)| *from == kw)
        .copied()
        .unwrap_or(("", "AND"));
    let name = base.gate_name(victim);
    let mutated_text =
        canonical.replacen(&format!("{name} = {kw}("), &format!("{name} = {to}("), 1);
    let edited = match bench::parse("fuzz-delta", &mutated_text) {
        Err(e) => return Outcome::TypedError(format!("mutant netlist: {e}")),
        Ok(n) => n,
    };
    if has_deny(&admission_diagnostics(
        &edited,
        &TestabilityConfig::default(),
    )) {
        return Outcome::TypedError("mutant denied at admission".to_string());
    }

    let config = StitchConfig {
        seed: rng.u64(),
        budget: Some(2_000 + 1_000 * rng.range(4) as u64),
        threads: 1,
        ..StitchConfig::default()
    };

    // Cold run of the base, manifest from its trace.
    let base_engine = match StitchEngine::new(&base) {
        Err(e) => return Outcome::TypedError(format!("engine: {e}")),
        Ok(e) => e,
    };
    let (_, base_trace) = match run_traced(&base_engine, &config, None) {
        Err(e) => return Outcome::TypedError(format!("base stitch: {e}")),
        Ok(r) => r,
    };
    let Some(base_trace) = base_trace else {
        return Outcome::Violation("cold run produced no prescreen trace".to_string());
    };
    let manifest =
        match tvs_delta::ConeManifest::build(&base, config.fingerprint(), &base_trace.records) {
            Err(e) => return Outcome::TypedError(format!("manifest build: {e}")),
            Ok(m) => m,
        };
    // Text round trip must be the identity.
    match tvs_delta::ConeManifest::parse(&manifest.to_text()) {
        Err(e) => return Outcome::Violation(format!("own manifest fails parse: {e}")),
        Ok(back) => {
            if back.to_text() != manifest.to_text() {
                return Outcome::Violation("manifest text round trip not identity".to_string());
            }
        }
    }

    // Plan for the mutant; an id-preserving flip keeps the interface, so
    // plan derivation must succeed.
    let plan = match tvs_delta::plan_for(&manifest, &edited, config.fingerprint()) {
        Err(e) => return Outcome::Violation(format!("plan for id-preserving mutant: {e}")),
        Ok(p) => p,
    };

    // The invariant: delta run byte-identical to the mutant's cold run.
    let edited_engine = match StitchEngine::new(&edited) {
        Err(e) => return Outcome::TypedError(format!("mutant engine: {e}")),
        Ok(e) => e,
    };
    let (cold, _) = match run_traced(&edited_engine, &config, None) {
        Err(e) => return Outcome::TypedError(format!("mutant cold stitch: {e}")),
        Ok(r) => r,
    };
    let (delta, delta_trace) = match run_traced(&edited_engine, &config, Some(plan.plan)) {
        Err(e) => return Outcome::Violation(format!("delta run failed after cold: {e}")),
        Ok(r) => r,
    };
    if describe_report(&delta) != describe_report(&cold) {
        return Outcome::Violation(
            "delta run not byte-identical to the cold run of the mutant".to_string(),
        );
    }
    let reused = delta_trace.map(|t| t.reused).unwrap_or(0);
    if reused > plan.faults_matched {
        return Outcome::Violation(format!(
            "reused {reused} verdicts but only {} matched the plan",
            plan.faults_matched
        ));
    }
    Outcome::Ok(format!(
        "{} faults, reused {reused}/{} matched, {} cones dirty",
        plan.faults_total, plan.faults_matched, plan.cones_dirty
    ))
}
