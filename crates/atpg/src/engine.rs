//! The full-shift baseline ATPG flow (the paper's "ATALANTA" column).

use tvs_exec::Budget;
use tvs_logic::{BitVec, Cube, Prng};
use tvs_netlist::{Netlist, NetlistError, ScanView};

use tvs_fault::{Fault, FaultList, SimSession};

use crate::{random_phase, FillStrategy, Podem, PodemConfig, PodemResult};

/// Configuration of the baseline flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgConfig {
    /// RNG seed (random phase and random fill).
    pub seed: u64,
    /// Random-phase pattern budget.
    pub random_patterns: usize,
    /// Random-phase consecutive-useless cutoff.
    pub random_useless: usize,
    /// PODEM settings for the deterministic phase.
    pub podem: PodemConfig,
    /// How generated cubes are completed.
    pub fill: FillStrategy,
    /// Apply reverse-order static compaction to the final pattern set.
    pub compact: bool,
    /// Optional work budget in deterministic work units (PODEM backtracks +
    /// fault-simulation slots); `None` runs unbounded. Checked at stage
    /// boundaries: an exhausted budget ends the deterministic phase early
    /// with a [`AtpgTermination::BudgetExhausted`] outcome carrying the
    /// partial pattern set and the residual untargeted faults.
    pub budget: Option<u64>,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            seed: 0xA7A1_A27A,
            random_patterns: 1024,
            random_useless: 48,
            podem: PodemConfig::default(),
            fill: FillStrategy::Random,
            compact: true,
            budget: None,
        }
    }
}

/// A generated pattern set with its bookkeeping.
#[derive(Debug, Clone)]
pub struct PatternSet {
    /// Fully specified test vectors over the combinational inputs
    /// (PIs then PPIs).
    pub patterns: Vec<BitVec>,
    /// Faults proven untestable (redundant).
    pub redundant: Vec<Fault>,
    /// Faults on which PODEM exhausted its backtrack budget.
    pub aborted: Vec<Fault>,
    /// Fault coverage over the collapsed list, counting redundant faults out
    /// of the denominator (i.e. *attainable* coverage).
    pub fault_coverage: f64,
    /// How the flow ended: complete, or out of budget with salvage.
    pub termination: AtpgTermination,
}

/// How a [`generate_tests`] run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum AtpgTermination {
    /// Every fault was targeted (detected, proven redundant, or aborted).
    Complete,
    /// The work budget ran out; the pattern set is a valid partial result.
    BudgetExhausted {
        /// Faults never targeted because the budget ended the run.
        residual: Vec<Fault>,
        /// Work units spent when the boundary check tripped.
        spent: u64,
    },
}

impl PatternSet {
    /// Number of test vectors — the paper's `aTV` column.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// Errors from [`generate_tests`].
#[derive(Debug)]
pub enum AtpgOutcome {
    /// The netlist's combinational core could not be levelized.
    Netlist(NetlistError),
}

impl std::fmt::Display for AtpgOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtpgOutcome::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for AtpgOutcome {}

impl From<NetlistError> for AtpgOutcome {
    fn from(e: NetlistError) -> Self {
        AtpgOutcome::Netlist(e)
    }
}

/// Runs the complete baseline flow against the collapsed fault list:
/// random phase → deterministic PODEM with fault dropping → optional
/// reverse-order static compaction.
///
/// The resulting vector count is the `aTV` of the paper's Table 2 (what a
/// conventional full-shift flow would apply).
///
/// # Errors
///
/// Returns [`AtpgOutcome::Netlist`] if the netlist cannot be levelized.
///
/// # Examples
///
/// ```
/// use tvs_atpg::{generate_tests, AtpgConfig};
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let set = generate_tests(&n, &AtpgConfig::default())?;
/// assert!(set.fault_coverage >= 1.0 - 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_tests(netlist: &Netlist, config: &AtpgConfig) -> Result<PatternSet, AtpgOutcome> {
    tvs_lint::debug_assert_netlist_clean(netlist, "atpg::generate_tests");
    let view = netlist.scan_view()?;
    let faults = FaultList::collapsed(netlist);
    let mut rng = Prng::seed_from_u64(config.seed);

    // Phase 1: random patterns with fault dropping.
    let (mut patterns, mut detected) = random_phase(
        netlist,
        &view,
        faults.faults(),
        &mut rng,
        config.random_patterns,
        config.random_useless,
    );

    // Phase 2: deterministic PODEM on the survivors, under the work budget.
    // All charges are computed from sequentially observed values (backtrack
    // counts, slot counts), so the bookkeeping is identical at any thread
    // count — the budget is about work, never wall clock.
    let mut budget = Budget::from_limit(config.budget);
    budget.charge((patterns.len() * faults.len()) as u64);
    let mut podem = Podem::with_config(netlist, &view, config.podem);
    let mut session = SimSession::new(netlist, &view);
    let free = Cube::unspecified(view.input_count());
    let mut redundant = Vec::new();
    let mut aborted = Vec::new();
    let mut residual: Vec<Fault> = Vec::new();

    for target in 0..faults.len() {
        if detected[target] {
            continue;
        }
        if budget.exhausted() {
            // Stage boundary: salvage by listing every remaining untargeted
            // fault instead of starting another PODEM run.
            residual.push(faults.faults()[target]);
            continue;
        }
        match podem.generate(faults.faults()[target], &free) {
            PodemResult::Test(cube) => {
                let bits = config.fill.apply(&cube, &mut rng);
                // Drop everything the filled vector detects.
                let alive: Vec<usize> = (0..faults.len()).filter(|&i| !detected[i]).collect();
                let subset: Vec<Fault> = alive.iter().map(|&i| faults.faults()[i]).collect();
                budget.charge(1 + u64::from(podem.last_backtracks()) + subset.len() as u64);
                let hits = match session.detect(&bits, &subset) {
                    Ok(hits) => hits,
                    Err(_) => unreachable!("filled cubes are view-width"),
                };
                let mut useful = false;
                for (slot, &fi) in alive.iter().enumerate() {
                    if hits[slot] {
                        detected[fi] = true;
                        useful = true;
                    }
                }
                debug_assert!(useful, "a generated test must detect its target");
                if useful {
                    patterns.push(bits);
                }
            }
            PodemResult::Untestable => {
                budget.charge(1 + u64::from(podem.last_backtracks()));
                redundant.push(faults.faults()[target]);
            }
            PodemResult::Aborted => {
                budget.charge(1 + u64::from(podem.last_backtracks()));
                aborted.push(faults.faults()[target]);
            }
        }
    }

    // Phase 3: reverse-order static compaction.
    if config.compact {
        patterns = compact_patterns(netlist, &view, faults.faults(), &patterns);
    }

    let testable = faults.len() - redundant.len();
    let covered = detected.iter().filter(|&&d| d).count();
    let fault_coverage = if testable == 0 {
        1.0
    } else {
        covered as f64 / testable as f64
    };

    let termination = if residual.is_empty() {
        AtpgTermination::Complete
    } else {
        AtpgTermination::BudgetExhausted {
            residual,
            spent: budget.spent(),
        }
    };

    Ok(PatternSet {
        patterns,
        redundant,
        aborted,
        fault_coverage,
        termination,
    })
}

/// Reverse-order static compaction: simulate the set backwards with fault
/// dropping and keep only vectors that detect a not-yet-covered fault.
///
/// Coverage of `faults` under full observation is preserved exactly; the
/// result is typically substantially smaller for sets produced in
/// easy-faults-first order.
///
/// # Examples
///
/// See [`generate_tests`], which applies this as its final phase.
pub fn compact_patterns(
    netlist: &Netlist,
    view: &ScanView,
    faults: &[Fault],
    patterns: &[BitVec],
) -> Vec<BitVec> {
    let mut session = SimSession::new(netlist, view);
    let mut alive: Vec<usize> = (0..faults.len()).collect();
    let mut kept = Vec::new();
    for pattern in patterns.iter().rev() {
        if alive.is_empty() {
            break;
        }
        let subset: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
        let hits = match session.detect(pattern, &subset) {
            Ok(hits) => hits,
            Err(_) => unreachable!("patterns under compaction are view-width"),
        };
        if hits.iter().any(|&h| h) {
            kept.push(pattern.clone());
            let mut next = Vec::with_capacity(alive.len());
            for (slot, &fi) in alive.iter().enumerate() {
                if !hits[slot] {
                    next.push(fi);
                }
            }
            alive = next;
        }
    }
    kept.reverse();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_flow_reaches_complete_attainable_coverage() {
        let n = fig1();
        let set = generate_tests(&n, &AtpgConfig::default()).unwrap();
        assert!((set.fault_coverage - 1.0).abs() < 1e-9);
        assert_eq!(set.redundant.len(), 1, "exactly the paper's E-F/1");
        assert!(set.aborted.is_empty());
        // 3-bit input space: compaction should land near the paper's 4.
        assert!(
            (3..=6).contains(&set.len()),
            "vector count {} implausible",
            set.len()
        );
    }

    #[test]
    fn compaction_never_reduces_coverage() {
        let n = fig1();
        let view = n.scan_view().unwrap();
        let faults = FaultList::collapsed(&n);
        let cfg_nc = AtpgConfig {
            compact: false,
            ..AtpgConfig::default()
        };
        let uncompacted = generate_tests(&n, &cfg_nc).unwrap();
        let compacted = generate_tests(&n, &AtpgConfig::default()).unwrap();
        assert!(compacted.len() <= uncompacted.len());

        let mut fsim = tvs_fault::FaultSim::new(&n, &view);
        let det = fsim.coverage(&compacted.patterns, faults.faults());
        let covered = det.iter().filter(|&&d| d).count();
        assert_eq!(covered, faults.len() - 1); // all but the redundant one
    }

    #[test]
    fn budget_exhaustion_salvages_a_partial_set() {
        let n = fig1();
        // Starve the deterministic phase: the random phase alone overruns a
        // tiny budget, so every surviving fault lands in the residual.
        let cfg = AtpgConfig {
            budget: Some(1),
            random_patterns: 0,
            random_useless: 0,
            ..AtpgConfig::default()
        };
        let set = generate_tests(&n, &cfg).unwrap();
        match &set.termination {
            AtpgTermination::BudgetExhausted { residual, .. } => {
                assert!(!residual.is_empty());
                assert!(set.patterns.len() <= 1, "at most the boundary overshoot");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // An unbudgeted run is untouched.
        let full = generate_tests(&n, &AtpgConfig::default()).unwrap();
        assert_eq!(full.termination, AtpgTermination::Complete);
        // Budgeted runs are deterministic too.
        let again = generate_tests(&n, &cfg).unwrap();
        assert_eq!(set.patterns, again.patterns);
        assert_eq!(set.termination, again.termination);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let n = fig1();
        let a = generate_tests(&n, &AtpgConfig::default()).unwrap();
        let b = generate_tests(&n, &AtpgConfig::default()).unwrap();
        assert_eq!(a.patterns, b.patterns);
    }
}
