//! Random-pattern phase of the baseline ATPG flow.

use tvs_logic::{BitVec, Prng};
use tvs_netlist::{Netlist, ScanView};

use tvs_fault::{Fault, SimSession};

/// Runs the random-pattern phase: draws random fully specified patterns,
/// keeps each pattern that detects at least one still-undetected fault
/// (fault dropping), and stops after `max_useless` consecutive useless
/// patterns or `max_patterns` draws.
///
/// Returns the kept patterns and the per-fault detection flags. The
/// remaining undetected faults are the "hard" faults handed to deterministic
/// PODEM.
///
/// # Examples
///
/// ```
/// use tvs_atpg::random_phase;
/// use tvs_fault::FaultList;
/// use tvs_logic::Prng;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::Xor, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let view = n.scan_view()?;
/// let faults = FaultList::collapsed(&n);
/// let mut rng = Prng::seed_from_u64(1);
/// let (patterns, detected) = random_phase(&n, &view, faults.faults(), &mut rng, 256, 32);
/// assert!(detected.iter().all(|&d| d), "XOR faults are all easy");
/// assert!(!patterns.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn random_phase(
    netlist: &Netlist,
    view: &ScanView,
    faults: &[Fault],
    rng: &mut Prng,
    max_patterns: usize,
    max_useless: usize,
) -> (Vec<BitVec>, Vec<bool>) {
    let mut sim = SimSession::new(netlist, view);
    let mut detected = vec![false; faults.len()];
    let mut alive: Vec<usize> = (0..faults.len()).collect();
    let mut patterns = Vec::new();
    let mut useless = 0usize;

    for _ in 0..max_patterns {
        if alive.is_empty() || useless >= max_useless {
            break;
        }
        let pattern: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
        let subset: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
        let hits = match sim.detect(&pattern, &subset) {
            Ok(hits) => hits,
            Err(_) => unreachable!("random patterns are view-width"),
        };
        if hits.iter().any(|&h| h) {
            useless = 0;
            patterns.push(pattern);
            let mut next = Vec::with_capacity(alive.len());
            for (slot, &fi) in alive.iter().enumerate() {
                if hits[slot] {
                    detected[fi] = true;
                } else {
                    next.push(fi);
                }
            }
            alive = next;
        } else {
            useless += 1;
        }
    }
    (patterns, detected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::FaultList;
    use tvs_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn detects_easy_faults_and_stops() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::Nand, &["a", "b"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        let view = n.scan_view().unwrap();
        let faults = FaultList::collapsed(&n);
        let mut rng = Prng::seed_from_u64(3);
        let (patterns, detected) = random_phase(&n, &view, faults.faults(), &mut rng, 512, 64);
        assert!(detected.iter().all(|&d| d));
        // Dropping means few patterns are kept for a 2-input gate.
        assert!(patterns.len() <= 4, "{} patterns kept", patterns.len());
    }

    #[test]
    fn gives_up_after_useless_budget() {
        // A wide AND's output-1 faults are random-resistant.
        let mut b = NetlistBuilder::new("wide");
        let names: Vec<String> = (0..16).map(|i| format!("i{i}")).collect();
        for nm in &names {
            b.add_input(nm).unwrap();
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        b.add_gate("y", GateKind::And, &refs).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        let view = n.scan_view().unwrap();
        let faults = FaultList::collapsed(&n);
        let mut rng = Prng::seed_from_u64(5);
        let (_, detected) = random_phase(&n, &view, faults.faults(), &mut rng, 200, 16);
        assert!(
            detected.iter().any(|&d| !d),
            "random-resistant fault should survive the random phase"
        );
    }
}
