//! PODEM (Path-Oriented DEcision Making) test generation with pinned bits.
//!
//! The implementation follows Goel's original branch-on-primary-inputs
//! scheme, with the fault effect tracked by *dual simulation*: every signal
//! carries a (good, faulty) pair of three-valued logic values, which is
//! equivalent to the classic 5-valued D-calculus (`D` = good 1 / faulty 0,
//! `D̄` = good 0 / faulty 1) but composes mechanically with any gate type.
//!
//! The one capability added for the stitching paper is **pinned bits**: the
//! constraint cube pre-assigns some combinational inputs (the scan-cell bits
//! retained from the previous response) before the decision loop starts;
//! PODEM then only branches on the remaining free inputs, and an
//! [`Untestable`](PodemResult::Untestable) verdict means *untestable under
//! the constraint*, the signal the variable-shift policy keys off.

use tvs_logic::{Cube, Logic};
use tvs_netlist::{GateId, GateKind, Netlist, ScanView};

use tvs_fault::{Fault, Scoap};

/// Tuning knobs for [`Podem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodemConfig {
    /// Maximum number of backtracks before giving up with
    /// [`PodemResult::Aborted`].
    pub backtrack_limit: u32,
    /// Enable the X-path pruning check (a detected dead-end when no path of
    /// unassigned signals remains from the D-frontier to an output).
    pub xpath_check: bool,
}

impl Default for PodemConfig {
    fn default() -> Self {
        PodemConfig {
            backtrack_limit: 256,
            xpath_check: true,
        }
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A test cube over the combinational inputs (PIs then PPIs). Pinned
    /// bits appear with their pinned values; remaining `X` positions are
    /// genuine don't-cares.
    Test(Cube),
    /// No test exists under the given constraint (for an unconstrained run
    /// this proves the fault redundant).
    Untestable,
    /// The backtrack limit was exhausted before a verdict.
    Aborted,
}

impl PodemResult {
    /// Returns the test cube if one was found.
    pub fn test(&self) -> Option<&Cube> {
        match self {
            PodemResult::Test(cube) => Some(cube),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    input: usize,
    value: bool,
    flipped: bool,
}

/// Which value plane an objective lives on.
///
/// The dual (good, faulty) encoding is finer than the classic 5-valued
/// D-calculus: a signal can be specified in the good machine while still
/// unknown in the faulty one (the good side was frozen by a side input).
/// Fault-effect propagation must then steer the *faulty* plane — outside
/// the fault cone the planes coincide, so faulty-plane backtrace degrades
/// gracefully into the classic scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    Good,
    Faulty,
}

/// The PODEM test generator.
///
/// # Examples
///
/// ```
/// use tvs_atpg::{Podem, PodemResult};
/// use tvs_fault::{Fault, StuckAt};
/// use tvs_logic::Cube;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("and");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let view = n.scan_view()?;
/// let mut podem = Podem::new(&n, &view);
///
/// let fault = Fault::stem(n.find("y").unwrap(), StuckAt::Zero);
/// let free = Cube::unspecified(2);
/// match podem.generate(fault, &free) {
///     PodemResult::Test(cube) => assert_eq!(cube.to_string(), "11"),
///     other => panic!("expected a test, got {other:?}"),
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Podem<'a> {
    netlist: &'a Netlist,
    view: &'a ScanView,
    scoap: Scoap,
    config: PodemConfig,
    good: Vec<Logic>,
    faulty: Vec<Logic>,
    /// Gates reachable from the current fault site.
    cone: Vec<bool>,
    /// Output indices whose driver lies in the cone.
    cone_outputs: Vec<usize>,
    /// Level-bucketed event queue.
    buckets: Vec<Vec<GateId>>,
    queued: Vec<bool>,
    fault: Option<Fault>,
    scratch: Vec<Logic>,
    backtrack_counter: tvs_exec::Counter,
    last_backtracks: u32,
}

impl<'a> Podem<'a> {
    /// Creates a generator with the default configuration.
    pub fn new(netlist: &'a Netlist, view: &'a ScanView) -> Self {
        Podem::with_config(netlist, view, PodemConfig::default())
    }

    /// Creates a generator with an explicit configuration.
    pub fn with_config(netlist: &'a Netlist, view: &'a ScanView, config: PodemConfig) -> Self {
        let n = netlist.gate_count();
        Podem {
            netlist,
            view,
            scoap: Scoap::compute(netlist, view),
            config,
            good: vec![Logic::X; n],
            faulty: vec![Logic::X; n],
            cone: vec![false; n],
            cone_outputs: Vec::new(),
            buckets: vec![Vec::new(); view.depth() as usize + 2],
            queued: vec![false; n],
            fault: None,
            scratch: Vec::new(),
            backtrack_counter: tvs_exec::counter("atpg.backtracks"),
            last_backtracks: 0,
        }
    }

    /// Backtracks consumed by the most recent `generate*` call. Callers use
    /// this as the deterministic work-unit charge for [`tvs_exec::Budget`]
    /// bookkeeping (observed sequentially, so thread count cannot skew it).
    pub fn last_backtracks(&self) -> u32 {
        self.last_backtracks
    }

    /// Attempts to generate a test for `fault` under `constraint`.
    ///
    /// `constraint` is a cube over the combinational inputs (PIs then PPIs);
    /// specified positions are pinned and never branched on. Pass
    /// [`Cube::unspecified`] of the right length for an unconstrained run.
    ///
    /// # Panics
    ///
    /// Panics if `constraint.len() != view.input_count()`.
    pub fn generate(&mut self, fault: Fault, constraint: &Cube) -> PodemResult {
        self.generate_observable(fault, constraint, None)
    }

    /// Like [`generate`](Self::generate), but only the combinational
    /// outputs whose index is flagged in `observable` count as detection
    /// points (`None` = all outputs observable).
    ///
    /// The stitching engine uses this to demand propagation to a primary
    /// output or to a scan cell that the next shift will actually expose —
    /// a test that merely differentiates the fault inside the retained part
    /// of the chain does not move it to `f_c`.
    ///
    /// # Panics
    ///
    /// Panics if `constraint.len() != view.input_count()` or the flag slice
    /// length does not equal `view.output_count()`.
    pub fn generate_observable(
        &mut self,
        fault: Fault,
        constraint: &Cube,
        observable: Option<&[bool]>,
    ) -> PodemResult {
        assert_eq!(
            constraint.len(),
            self.view.input_count(),
            "constraint length must match the scan view"
        );
        if let Some(flags) = observable {
            assert_eq!(
                flags.len(),
                self.view.output_count(),
                "observable flag count must match the scan view"
            );
        }
        // Chaos site: an armed "atpg.podem.abort" storm makes every call
        // give up immediately, modeling pathological backtrack exhaustion.
        if tvs_exec::inject::fire("atpg.podem.abort") {
            self.last_backtracks = 0;
            return PodemResult::Aborted;
        }
        self.reset(fault, observable);

        // Pre-assign pinned bits.
        for (i, v) in constraint.iter().enumerate() {
            if let Some(bit) = v.to_bool() {
                self.assign(i, Logic::from(bit));
            }
        }

        let mut stack: Vec<Decision> = Vec::new();
        let mut backtracks = 0u32;

        let result = 'solve: loop {
            if self.detected() {
                break 'solve PodemResult::Test(self.extract_cube());
            }
            let next = if self.conflict() {
                None
            } else {
                self.objective()
                    .and_then(|(plane, g, v)| self.backtrace(plane, g, v))
            };
            match next {
                Some((input, value)) => {
                    stack.push(Decision {
                        input,
                        value,
                        flipped: false,
                    });
                    self.assign(input, Logic::from(value));
                }
                None => {
                    // Dead end: undo flipped decisions, flip the newest
                    // unflipped one.
                    backtracks += 1;
                    self.backtrack_counter.incr();
                    if backtracks > self.config.backtrack_limit {
                        break 'solve PodemResult::Aborted;
                    }
                    loop {
                        match stack.pop() {
                            None => break 'solve PodemResult::Untestable,
                            Some(d) if d.flipped => {
                                self.assign(d.input, Logic::X);
                            }
                            Some(d) => {
                                self.assign(d.input, Logic::from(!d.value));
                                stack.push(Decision {
                                    input: d.input,
                                    value: !d.value,
                                    flipped: true,
                                });
                                break;
                            }
                        }
                    }
                }
            }
        };
        self.last_backtracks = backtracks;
        result
    }

    /// The fault installed by `reset` for the `generate` call in progress.
    fn active_fault(&self) -> Fault {
        // Structurally unreachable outside a generate call: `reset` installs
        // the fault before any solver step can run. lint:allow(SRC005)
        self.fault.expect("a generate call is active")
    }

    fn reset(&mut self, fault: Fault, observable: Option<&[bool]>) {
        self.good.fill(Logic::X);
        self.faulty.fill(Logic::X);
        self.fault = Some(fault);

        // Influence cone of the fault site.
        self.cone.fill(false);
        self.cone_outputs.clear();
        let seed = fault.site.gate;
        let mut stack = vec![seed];
        self.cone[seed.index()] = true;
        while let Some(g) = stack.pop() {
            for &(consumer, _) in self.netlist.fanout(g) {
                if !self.cone[consumer.index()]
                    && self.netlist.gate(consumer).kind().is_combinational()
                {
                    self.cone[consumer.index()] = true;
                    stack.push(consumer);
                }
            }
        }
        for o in 0..self.view.output_count() {
            if let Some(flags) = observable {
                if !flags[o] {
                    continue;
                }
            }
            let driver = self.view.output_gate(o);
            let in_cone = self.cone[driver.index()]
                // a Dff-pin fault shows up only at that cell's PPO
                || (o >= self.view.po_count()
                    && fault.site.pin.is_some()
                    && self.view.ppis()[o - self.view.po_count()] == fault.site.gate);
            if in_cone {
                self.cone_outputs.push(o);
            }
        }
        // The faulty value at a stem fault site on a *source* gate is pinned
        // immediately (sources are not re-evaluated by propagation).
        if fault.site.pin.is_none() {
            if let Some(i) = self.view.input_index_of(fault.site.gate) {
                let _ = i;
                self.faulty[fault.site.gate.index()] = stuck_logic(fault);
            }
        }
    }

    /// Assigns (or unassigns, with `Logic::X`) a combinational input and
    /// propagates events forward.
    fn assign(&mut self, input: usize, value: Logic) {
        let gate = self.view.input_gate(input);
        let fault = self.active_fault();
        self.good[gate.index()] = value;
        self.faulty[gate.index()] = if fault.site.pin.is_none() && fault.site.gate == gate {
            stuck_logic(fault)
        } else {
            value
        };
        self.propagate_from(gate);
    }

    fn propagate_from(&mut self, source: GateId) {
        for &(consumer, _) in self.netlist.fanout(source) {
            self.enqueue(consumer);
        }
        for level in 0..self.buckets.len() {
            while let Some(g) = pop_bucket(&mut self.buckets, level) {
                self.queued[g.index()] = false;
                let (ng, nf) = self.eval_gate(g);
                if ng != self.good[g.index()] || nf != self.faulty[g.index()] {
                    self.good[g.index()] = ng;
                    self.faulty[g.index()] = nf;
                    for &(consumer, _) in self.netlist.fanout(g) {
                        self.enqueue(consumer);
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, g: GateId) {
        if self.netlist.gate(g).kind().is_combinational() && !self.queued[g.index()] {
            self.queued[g.index()] = true;
            self.buckets[self.view.level(g) as usize].push(g);
        }
    }

    fn eval_gate(&mut self, g: GateId) -> (Logic, Logic) {
        let gate = self.netlist.gate(g);
        let fault = self.active_fault();
        self.scratch.clear();
        self.scratch
            .extend(gate.fanin().iter().map(|&f| self.good[f.index()]));
        let ng = gate.kind().eval(&self.scratch);

        self.scratch.clear();
        for (pin, &f) in gate.fanin().iter().enumerate() {
            let v = if fault.site.pin == Some(pin as u32) && fault.site.gate == g {
                stuck_logic(fault)
            } else {
                self.faulty[f.index()]
            };
            self.scratch.push(v);
        }
        let mut nf = gate.kind().eval(&self.scratch);
        if fault.site.pin.is_none() && fault.site.gate == g {
            nf = stuck_logic(fault);
        }
        (ng, nf)
    }

    fn output_pair(&self, o: usize) -> (Logic, Logic) {
        let driver = self.view.output_gate(o);
        let mut pair = (self.good[driver.index()], self.faulty[driver.index()]);
        let fault = self.active_fault();
        if o >= self.view.po_count() {
            let ff = self.view.ppis()[o - self.view.po_count()];
            if fault.site.pin == Some(0) && fault.site.gate == ff {
                pair.1 = stuck_logic(fault);
            }
        }
        pair
    }

    fn detected(&self) -> bool {
        self.cone_outputs.iter().any(|&o| {
            let (g, f) = self.output_pair(o);
            g.is_specified() && f.is_specified() && g != f
        })
    }

    /// The good value at the fault site's *reference* net (the driver for a
    /// branch fault, the gate itself for a stem fault).
    fn site_value(&self) -> Logic {
        let fault = self.active_fault();
        match fault.site.pin {
            None => self.good[fault.site.gate.index()],
            Some(pin) => {
                let driver = self.netlist.gate(fault.site.gate).fanin()[pin as usize];
                self.good[driver.index()]
            }
        }
    }

    /// True when the current assignments can no longer lead to a detection.
    fn conflict(&self) -> bool {
        let fault = self.active_fault();
        let site = self.site_value();
        let stuck = stuck_logic(fault);
        if site.is_specified() {
            if site == stuck {
                return true; // activation impossible
            }
            // Activated: the effect must still be propagatable.
            if self.d_frontier_empty() && !self.detected() {
                return true;
            }
            if self.config.xpath_check && !self.xpath_exists() {
                return true;
            }
        }
        false
    }

    fn has_d_input(&self, g: GateId) -> bool {
        let fault = self.active_fault();
        self.netlist
            .gate(g)
            .fanin()
            .iter()
            .enumerate()
            .any(|(pin, &f)| {
                let good = self.good[f.index()];
                let faulty = if fault.site.pin == Some(pin as u32) && fault.site.gate == g {
                    stuck_logic(fault)
                } else {
                    self.faulty[f.index()]
                };
                good.is_specified() && faulty.is_specified() && good != faulty
            })
    }

    fn is_d_frontier(&self, g: GateId) -> bool {
        let (og, of) = (self.good[g.index()], self.faulty[g.index()]);
        let undetermined = !og.is_specified() || !of.is_specified();
        undetermined && self.has_d_input(g)
    }

    fn d_frontier_empty(&self) -> bool {
        !self
            .view
            .order()
            .iter()
            .any(|&g| self.cone[g.index()] && self.is_d_frontier(g))
    }

    /// X-path check: from some D-frontier gate there must be a chain of
    /// not-fully-determined signals reaching a cone output.
    fn xpath_exists(&self) -> bool {
        if self.detected() {
            return true;
        }
        // Determine which cone outputs are still open (undetermined).
        let open_output = |o: usize| {
            let (g, f) = self.output_pair(o);
            !g.is_specified() || !f.is_specified()
        };
        // Walk backwards from open outputs through undetermined gates;
        // success if we touch a D-frontier gate.
        let mut seen = vec![false; self.netlist.gate_count()];
        let mut stack: Vec<GateId> = Vec::new();
        for &o in &self.cone_outputs {
            if open_output(o) {
                let d = self.view.output_gate(o);
                if self.cone[d.index()] && !seen[d.index()] {
                    seen[d.index()] = true;
                    stack.push(d);
                }
            }
        }
        while let Some(g) = stack.pop() {
            let undetermined =
                !self.good[g.index()].is_specified() || !self.faulty[g.index()].is_specified();
            if !undetermined {
                continue;
            }
            if self.is_d_frontier(g) {
                return true;
            }
            for &f in self.netlist.gate(g).fanin() {
                if self.cone[f.index()]
                    && !seen[f.index()]
                    && self.netlist.gate(f).kind().is_combinational()
                {
                    seen[f.index()] = true;
                    stack.push(f);
                }
            }
        }
        false
    }

    #[inline]
    fn plane_value(&self, plane: Plane, gate: GateId) -> Logic {
        match plane {
            Plane::Good => self.good[gate.index()],
            Plane::Faulty => self.faulty[gate.index()],
        }
    }

    /// The next objective `(plane, gate, value)`: activate the fault (good
    /// plane), or advance the D-frontier (faulty plane first — see
    /// [`Plane`]).
    fn objective(&self) -> Option<(Plane, GateId, bool)> {
        let fault = self.active_fault();
        let site = self.site_value();
        if !site.is_specified() {
            let target = match fault.site.pin {
                None => fault.site.gate,
                Some(pin) => self.netlist.gate(fault.site.gate).fanin()[pin as usize],
            };
            return Some((Plane::Good, target, !fault.stuck.as_bool()));
        }
        // Advance the D-frontier gate closest to an observation point.
        let g = self
            .view
            .order()
            .iter()
            .filter(|&&g| self.cone[g.index()] && self.is_d_frontier(g))
            .min_by_key(|&&g| self.scoap.co(g))?;
        let kind = self.netlist.gate(*g).kind();
        let noncontrolling = match kind.controlling_value() {
            Some(Logic::Zero) => true,
            Some(Logic::One) => false,
            _ => false, // XOR-class: aim for 0, backtracking corrects
            #[allow(unreachable_patterns)]
            Some(Logic::X) => unreachable!(),
        };
        // Prefer an input whose faulty value is still free (the usual case,
        // and the only lever when the good output is already frozen); fall
        // back to a good-plane X input.
        for plane in [Plane::Faulty, Plane::Good] {
            if let Some(&pin) = self
                .netlist
                .gate(*g)
                .fanin()
                .iter()
                .find(|&&f| !self.plane_value(plane, f).is_specified())
            {
                return Some((plane, pin, noncontrolling));
            }
        }
        None
    }

    /// Walks an objective back to an unassigned combinational input,
    /// choosing pins by SCOAP controllability. `plane` selects which value
    /// plane the descent follows (propagation objectives use the faulty
    /// plane); the terminal input assignment always acts on both planes.
    fn backtrace(&self, plane: Plane, mut gate: GateId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            if let Some(i) = self.view.input_index_of(gate) {
                if self.good[gate.index()].is_specified() {
                    return None; // objective hit an already-pinned input
                }
                return Some((i, value));
            }
            let g = self.netlist.gate(gate);
            let kind = g.kind();
            let v_in = match kind {
                GateKind::Buf => value,
                GateKind::Not => !value,
                GateKind::And | GateKind::Or => value,
                GateKind::Nand | GateKind::Nor => !value,
                GateKind::Xor | GateKind::Xnor => {
                    // Needed parity assuming other unassigned inputs fall to 0.
                    let mut parity = value ^ (kind == GateKind::Xnor);
                    for &f in g.fanin() {
                        if let Some(b) = self.plane_value(plane, f).to_bool() {
                            parity ^= b;
                        }
                    }
                    parity
                }
                GateKind::Input | GateKind::Dff => unreachable!("handled above"),
            };
            let unassigned = g
                .fanin()
                .iter()
                .filter(|&&f| !self.plane_value(plane, f).is_specified());
            let controlling = kind.controlling_value() == Some(Logic::from(v_in));
            let cost = |f: &&GateId| {
                if v_in {
                    self.scoap.cc1(**f)
                } else {
                    self.scoap.cc0(**f)
                }
            };
            let choice = if controlling || matches!(kind, GateKind::Buf | GateKind::Not) {
                unassigned.min_by_key(cost)
            } else {
                unassigned.max_by_key(cost)
            };
            match choice {
                Some(&f) => {
                    gate = f;
                    value = v_in;
                }
                None => return None,
            }
        }
    }

    fn extract_cube(&self) -> Cube {
        (0..self.view.input_count())
            .map(|i| self.good[self.view.input_gate(i).index()])
            .collect()
    }
}

fn stuck_logic(fault: Fault) -> Logic {
    Logic::from(fault.stuck.as_bool())
}

fn pop_bucket(buckets: &mut [Vec<GateId>], level: usize) -> Option<GateId> {
    buckets[level].pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::{FaultList, FaultSim, StuckAt};
    use tvs_netlist::NetlistBuilder;

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    /// Validates a PODEM cube by fault simulation: the (fill-0 and fill-1)
    /// completions must both detect the fault.
    fn assert_cube_detects(n: &Netlist, fault: Fault, cube: &Cube) {
        let view = n.scan_view().unwrap();
        let mut fsim = FaultSim::new(n, &view);
        for fill in [false, true] {
            let bits = cube.fill_with(fill);
            assert!(
                fsim.detect(&bits, &[fault])[0],
                "cube {cube} (fill {fill}) fails to detect {}",
                fault.display_in(n)
            );
        }
    }

    #[test]
    fn finds_tests_for_every_irredundant_fig1_fault() {
        let n = fig1();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        let free = Cube::unspecified(view.input_count());
        let mut untestable = Vec::new();
        for &fault in FaultList::collapsed(&n).faults() {
            match podem.generate(fault, &free) {
                PodemResult::Test(cube) => assert_cube_detects(&n, fault, &cube),
                PodemResult::Untestable => untestable.push(fault.display_in(&n)),
                PodemResult::Aborted => panic!("aborted on tiny circuit"),
            }
        }
        assert_eq!(
            untestable,
            vec!["E-F/1".to_string()],
            "only the paper's redundant fault"
        );
    }

    #[test]
    fn proves_the_redundant_fault_untestable() {
        let n = fig1();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        let f_gate = n.find("F").unwrap();
        let fault = Fault::branch(f_gate, 1, StuckAt::One);
        let free = Cube::unspecified(3);
        assert_eq!(podem.generate(fault, &free), PodemResult::Untestable);
    }

    #[test]
    fn respects_pinned_bits() {
        let n = fig1();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        // D/0 requires a=b=1. Pin a=0: now untestable under constraint.
        let fault = Fault::stem(n.find("D").unwrap(), StuckAt::Zero);
        let constraint: Cube = "0XX".parse().unwrap();
        assert_eq!(podem.generate(fault, &constraint), PodemResult::Untestable);
        // Pin a=1: testable, and the cube honours the pin.
        let constraint: Cube = "1XX".parse().unwrap();
        match podem.generate(fault, &constraint) {
            PodemResult::Test(cube) => {
                assert_eq!(cube[0], Logic::One);
                assert_cube_detects(&n, fault, &cube);
            }
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn pinned_only_detection_needs_no_decisions() {
        let n = fig1();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        // F/0 is detected by 110 outright.
        let fault = Fault::stem(n.find("F").unwrap(), StuckAt::Zero);
        let constraint: Cube = "110".parse().unwrap();
        match podem.generate(fault, &constraint) {
            PodemResult::Test(cube) => assert_eq!(cube.to_string(), "110"),
            other => panic!("expected test, got {other:?}"),
        }
    }

    #[test]
    fn xor_gates_are_handled() {
        let mut b = NetlistBuilder::new("parity");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("p", GateKind::Xor, &["a", "b", "c"]).unwrap();
        b.mark_output("p").unwrap();
        let n = b.build().unwrap();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        let free = Cube::unspecified(3);
        for &fault in FaultList::collapsed(&n).faults() {
            match podem.generate(fault, &free) {
                PodemResult::Test(cube) => assert_cube_detects(&n, fault, &cube),
                other => panic!("{}: {other:?}", fault.display_in(&n)),
            }
        }
    }

    #[test]
    fn classic_redundancy_is_proven() {
        // y = OR(AND(a, b), AND(a, NOT b)) simplifies to a; the internal
        // reconvergence makes some faults redundant; at minimum the
        // generator must terminate with consistent verdicts.
        let mut bld = NetlistBuilder::new("reconv");
        bld.add_input("a").unwrap();
        bld.add_input("b").unwrap();
        bld.add_gate("nb", GateKind::Not, &["b"]).unwrap();
        bld.add_gate("t1", GateKind::And, &["a", "b"]).unwrap();
        bld.add_gate("t2", GateKind::And, &["a", "nb"]).unwrap();
        bld.add_gate("y", GateKind::Or, &["t1", "t2"]).unwrap();
        bld.mark_output("y").unwrap();
        let n = bld.build().unwrap();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        let mut fsim = FaultSim::new(&n, &view);
        let free = Cube::unspecified(2);
        for &fault in FaultList::collapsed(&n).faults() {
            match podem.generate(fault, &free) {
                PodemResult::Test(cube) => assert_cube_detects(&n, fault, &cube),
                PodemResult::Untestable => {
                    // verify exhaustively: no pattern detects it
                    for bits in 0..4u32 {
                        let tv: tvs_logic::BitVec = (0..2).map(|i| (bits >> i) & 1 == 1).collect();
                        assert!(
                            !fsim.detect(&tv, &[fault])[0],
                            "{} claimed untestable but pattern {bits:02b} detects it",
                            fault.display_in(&n)
                        );
                    }
                }
                PodemResult::Aborted => panic!("aborted on tiny circuit"),
            }
        }
    }

    #[test]
    fn verdicts_agree_with_exhaustive_simulation_on_fig1() {
        let n = fig1();
        let view = n.scan_view().unwrap();
        let mut podem = Podem::new(&n, &view);
        let mut fsim = FaultSim::new(&n, &view);
        let free = Cube::unspecified(3);
        for &fault in FaultList::full(&n).faults() {
            let exhaustively_testable = (0..8u32).any(|bits| {
                let tv: tvs_logic::BitVec = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
                fsim.detect(&tv, &[fault])[0]
            });
            let verdict = podem.generate(fault, &free);
            match verdict {
                PodemResult::Test(_) => assert!(
                    exhaustively_testable,
                    "{} got a test but is untestable",
                    fault.display_in(&n)
                ),
                PodemResult::Untestable => assert!(
                    !exhaustively_testable,
                    "{} proven untestable but a test exists",
                    fault.display_in(&n)
                ),
                PodemResult::Aborted => panic!("aborted on tiny circuit"),
            }
        }
    }
}
