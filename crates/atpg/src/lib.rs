//! Combinational ATPG substrate for the TVS DFT toolkit.
//!
//! Replaces the paper's use of ATALANTA with a from-scratch PODEM
//! implementation that natively supports the one capability stitching needs
//! and classic tools lack: **pinned input bits**. During stitched generation
//! the `L - k` scan-cell bits retained from the previous response are fixed;
//! [`Podem`] treats them as pre-assigned decisions and only branches on free
//! bits.
//!
//! The crate also provides the surrounding machinery of a production ATPG
//! flow:
//!
//! * [`Podem`] — path-oriented decision making with backtrace, implication
//!   via three-valued simulation, X-path checks and a backtrack limit;
//! * [`PatternSet`] / [`generate_tests`] — the full-shift baseline flow
//!   (random phase with fault dropping, deterministic phase, reverse-order
//!   static compaction) that produces the `aTV` vector counts of the paper's
//!   tables;
//! * [`FillStrategy`] — how don't-care bits are specified after generation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod fill;
mod podem;
mod random;

pub use engine::{compact_patterns, generate_tests, AtpgConfig, AtpgOutcome, PatternSet};
pub use fill::FillStrategy;
pub use podem::{Podem, PodemConfig, PodemResult};
pub use random::random_phase;
