//! Don't-care fill strategies.

use tvs_logic::{BitVec, Cube, Prng};

/// How the unspecified (`X`) positions of a generated test cube are
/// completed into a fully specified vector.
///
/// Random fill is the production default: it maximizes fortuitous detection
/// of untargeted faults. Constant fills are provided for ablation studies
/// (they produce strongly biased response patterns, which interacts with the
/// stitching constraint — see the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillStrategy {
    /// Fill each `X` with a uniformly random bit.
    #[default]
    Random,
    /// Fill every `X` with 0.
    Zero,
    /// Fill every `X` with 1.
    One,
}

impl FillStrategy {
    /// Completes a cube into a fully specified bit vector.
    ///
    /// The `rng` is only consulted by [`FillStrategy::Random`].
    pub fn apply(self, cube: &Cube, rng: &mut Prng) -> BitVec {
        match self {
            FillStrategy::Random => cube.random_fill(rng),
            FillStrategy::Zero => cube.fill_with(false),
            FillStrategy::One => cube.fill_with(true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fills() {
        let cube: Cube = "1XX0".parse().unwrap();
        let mut rng = Prng::seed_from_u64(1);
        assert_eq!(
            FillStrategy::Zero.apply(&cube, &mut rng).to_string(),
            "1000"
        );
        assert_eq!(FillStrategy::One.apply(&cube, &mut rng).to_string(), "1110");
    }

    #[test]
    fn random_fill_keeps_specified_bits() {
        let cube: Cube = "1XXXXXX0".parse().unwrap();
        let mut rng = Prng::seed_from_u64(2);
        for _ in 0..8 {
            let bits = FillStrategy::Random.apply(&cube, &mut rng);
            assert!(bits.get(0));
            assert!(!bits.get(7));
        }
    }
}
