//! Tests of `Podem::generate_observable`: detection must land on an
//! allowed output, and masking every reachable output makes a testable
//! fault untestable.

use tvs_atpg::{Podem, PodemResult};
use tvs_fault::{Fault, FaultList, FaultSim, SlotSpec, StuckAt};
use tvs_logic::Cube;
use tvs_netlist::{GateKind, Netlist, NetlistBuilder};

fn fig1() -> Netlist {
    let mut b = NetlistBuilder::new("fig1");
    b.add_dff("a", "F").unwrap();
    b.add_dff("b", "E").unwrap();
    b.add_dff("c", "D").unwrap();
    b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
    b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
    b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
    b.build().unwrap()
}

#[test]
fn masking_the_only_reachable_output_proves_untestable() {
    // F feeds only cell a (output index 0). With that PPO masked, F/0 has
    // nowhere to be seen.
    let netlist = fig1();
    let view = netlist.scan_view().unwrap();
    let mut podem = Podem::new(&netlist, &view);
    let fault = Fault::stem(netlist.find("F").unwrap(), StuckAt::Zero);
    let free = Cube::unspecified(3);

    let all = vec![true; view.output_count()];
    assert!(matches!(
        podem.generate_observable(fault, &free, Some(&all)),
        PodemResult::Test(_)
    ));

    let masked = vec![false, true, true];
    assert_eq!(
        podem.generate_observable(fault, &free, Some(&masked)),
        PodemResult::Untestable
    );
}

#[test]
fn detection_lands_on_an_allowed_output() {
    // For every testable fault and every single-output mask that admits a
    // test, the resulting cube must differentiate the fault AT that output.
    let netlist = fig1();
    let view = netlist.scan_view().unwrap();
    let faults = FaultList::collapsed(&netlist);
    let mut podem = Podem::new(&netlist, &view);
    let mut fsim = FaultSim::new(&netlist, &view);
    let free = Cube::unspecified(3);

    for &fault in faults.faults() {
        for o in 0..view.output_count() {
            let mut mask = vec![false; view.output_count()];
            mask[o] = true;
            if let PodemResult::Test(cube) = podem.generate_observable(fault, &free, Some(&mask)) {
                for fill in [false, true] {
                    let bits = cube.fill_with(fill);
                    let good = fsim.good_outputs(&bits);
                    let outs = fsim
                        .run_slots(&[SlotSpec {
                            stimulus: &bits,
                            fault: Some(fault),
                        }])
                        .unwrap();
                    assert_ne!(
                        outs[0].get(o),
                        good.get(o),
                        "{}: cube {cube} does not differentiate at output {o}",
                        fault.display_in(&netlist)
                    );
                }
            }
        }
    }
}

#[test]
fn none_filter_equals_all_outputs() {
    let netlist = fig1();
    let view = netlist.scan_view().unwrap();
    let faults = FaultList::collapsed(&netlist);
    let mut podem = Podem::new(&netlist, &view);
    let free = Cube::unspecified(3);
    let all = vec![true; view.output_count()];
    for &fault in faults.faults() {
        let a = matches!(podem.generate(fault, &free), PodemResult::Test(_));
        let b = matches!(
            podem.generate_observable(fault, &free, Some(&all)),
            PodemResult::Test(_)
        );
        assert_eq!(a, b, "{}", fault.display_in(&netlist));
    }
}
