//! Structural equivalence collapsing of stuck-at faults.
//!
//! Two faults are (structurally) equivalent when every test for one detects
//! the other; collapsing keeps a single representative per class. Only the
//! classic local rules are applied (gate-input/output equivalences and
//! single-branch stems) — dominance collapsing is deliberately left out so
//! coverage numbers remain comparable to equivalence-collapsed tools.

use tvs_netlist::{GateKind, Netlist};

use crate::{Fault, FaultList, StuckAt};

/// Dense index assignment for every fault in the universe.
struct Indexer {
    /// stem fault index = gate*2 + stuck
    stem_base: usize,
    /// per gate, offset of its pin-fault block
    pin_offset: Vec<usize>,
    total: usize,
}

impl Indexer {
    fn new(netlist: &Netlist) -> Indexer {
        let stems = netlist.gate_count() * 2;
        let mut pin_offset = Vec::with_capacity(netlist.gate_count());
        let mut next = stems;
        for id in netlist.gate_ids() {
            pin_offset.push(next);
            next += netlist.gate(id).fanin().len() * 2;
        }
        Indexer {
            stem_base: 0,
            pin_offset,
            total: next,
        }
    }

    fn index(&self, fault: &Fault) -> usize {
        let v = fault.stuck.as_bool() as usize;
        match fault.site.pin {
            None => self.stem_base + fault.site.gate.index() * 2 + v,
            Some(pin) => self.pin_offset[fault.site.gate.index()] + pin as usize * 2 + v,
        }
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller root so representatives prefer stems (which
            // get the lower indices).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo as u32;
        }
    }
}

/// Computes the equivalence-collapsed fault list (used by
/// [`FaultList::collapsed`]).
pub(crate) fn collapse(netlist: &Netlist) -> Vec<Fault> {
    let universe = FaultList::full(netlist);
    let indexer = Indexer::new(netlist);
    let mut uf = UnionFind::new(indexer.total);

    for id in netlist.gate_ids() {
        let gate = netlist.gate(id);

        // Rule 1: a branch into the only consumer pin of a signal is
        // equivalent to the signal's stem fault.
        for (pin, &driver) in gate.fanin().iter().enumerate() {
            if netlist.fanout(driver).len() == 1 {
                for stuck in StuckAt::BOTH {
                    uf.union(
                        indexer.index(&Fault::branch(id, pin as u32, stuck)),
                        indexer.index(&Fault::stem(driver, stuck)),
                    );
                }
            }
        }

        // Rule 2: gate input/output equivalences.
        match gate.kind() {
            GateKind::Buf | GateKind::Not => {
                let inv = gate.kind() == GateKind::Not;
                for stuck in StuckAt::BOTH {
                    let out = StuckAt::from(stuck.as_bool() ^ inv);
                    uf.union(
                        indexer.index(&Fault::branch(id, 0, stuck)),
                        indexer.index(&Fault::stem(id, out)),
                    );
                }
            }
            GateKind::And | GateKind::Nand => {
                let out = StuckAt::from(gate.kind() == GateKind::Nand);
                for pin in 0..gate.fanin().len() as u32 {
                    uf.union(
                        indexer.index(&Fault::branch(id, pin, StuckAt::Zero)),
                        indexer.index(&Fault::stem(id, out)),
                    );
                }
            }
            GateKind::Or | GateKind::Nor => {
                let out = StuckAt::from(gate.kind() == GateKind::Or);
                for pin in 0..gate.fanin().len() as u32 {
                    uf.union(
                        indexer.index(&Fault::branch(id, pin, StuckAt::One)),
                        indexer.index(&Fault::stem(id, out)),
                    );
                }
            }
            // XOR-class gates and flip-flop D pins have no local
            // input/output equivalence.
            GateKind::Xor | GateKind::Xnor | GateKind::Dff => {}
            GateKind::Input => {}
        }
    }

    // One representative per class. Stem faults are preferred as
    // representatives (matching the naming convention of the paper's
    // Table 1), so sweep all stems first, then fill in pin-only classes.
    let mut seen = vec![false; indexer.total];
    let mut out = Vec::new();
    let stems_first = universe
        .faults()
        .iter()
        .filter(|f| f.site.pin.is_none())
        .chain(universe.faults().iter().filter(|f| f.site.pin.is_some()));
    for &fault in stems_first {
        let root = uf.find(indexer.index(&fault));
        if !seen[root] {
            seen[root] = true;
            out.push(fault);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::FaultList;
    use tvs_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn inverter_chain_collapses_to_two_classes_per_stage_boundary() {
        // a -> NOT y -> NOT z, fanout-free everywhere. The entire chain's
        // faults collapse to just 2 classes (one per polarity).
        let mut b = NetlistBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Not, &["a"]).unwrap();
        b.add_gate("z", GateKind::Not, &["y"]).unwrap();
        b.mark_output("z").unwrap();
        let n = b.build().unwrap();
        assert_eq!(FaultList::full(&n).len(), 10);
        assert_eq!(FaultList::collapsed(&n).len(), 2);
    }

    #[test]
    fn two_input_and_collapses_to_four() {
        // Classic result: an isolated 2-input AND with fanout-free inputs
        // has 4 equivalence classes (in-a/1, in-b/1, out/1, {out/0 ≡ a/0 ≡ b/0}).
        let mut b = NetlistBuilder::new("and");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        assert_eq!(FaultList::full(&n).len(), 10);
        assert_eq!(FaultList::collapsed(&n).len(), 4);
    }

    #[test]
    fn fanout_branches_stay_distinct() {
        // a feeds two gates; its branch faults must NOT collapse with the
        // stem or with each other.
        let mut b = NetlistBuilder::new("fan");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Not, &["a"]).unwrap();
        b.add_gate("z", GateKind::Not, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        b.mark_output("z").unwrap();
        let n = b.build().unwrap();
        let collapsed = FaultList::collapsed(&n);
        // Classes: a/0, a/1 (stem), a-y/0 ≡ y/1, a-y/1 ≡ y/0,
        //          a-z/0 ≡ z/1, a-z/1 ≡ z/0  → 6 classes.
        assert_eq!(collapsed.len(), 6);
    }

    #[test]
    fn xor_inputs_do_not_collapse() {
        let mut b = NetlistBuilder::new("xor");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::Xor, &["a", "b"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        // Only rule 1 applies (fanout-free inputs): a/v ≡ a-y/v, b/v ≡ b-y/v.
        // Classes: a/0, a/1, b/0, b/1, y/0, y/1 → 6.
        assert_eq!(FaultList::collapsed(&n).len(), 6);
    }

    #[test]
    fn representatives_are_stems_where_possible() {
        let mut b = NetlistBuilder::new("and");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        for f in FaultList::collapsed(&n).iter() {
            // every class in this circuit contains a stem fault, so every
            // representative should be a stem fault
            assert!(
                f.site.pin.is_none(),
                "representative {} is a branch",
                f.display_in(&n)
            );
        }
    }

    #[test]
    fn fig1_collapsed_size_is_close_to_papers_table1() {
        // The paper's Table 1 tracks 18 collapsed faults for the Figure 1
        // circuit. Collapsing choices differ slightly between tools; ours
        // must land in the same neighbourhood.
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        let n = b.build().unwrap();
        let collapsed = FaultList::collapsed(&n);
        assert!(
            (14..=22).contains(&collapsed.len()),
            "collapsed size {} out of expected band",
            collapsed.len()
        );
    }
}
