//! SCOAP testability measures (Goldstein's controllability/observability).
//!
//! SCOAP assigns every signal a 0-controllability `CC0`, 1-controllability
//! `CC1` (difficulty of setting the signal) and observability `CO`
//! (difficulty of propagating it to an observation point). In the full-scan
//! view, PIs and scan cells are perfectly controllable (cost 1) and POs and
//! scan-cell D inputs perfectly observable (cost 0).
//!
//! The stitching paper's "Hardness" vector-selection strategy (§6.3) orders
//! target faults by testing difficulty; [`Scoap::fault_hardness`] provides
//! that ordering: the cost of provoking the opposite value at the site plus
//! the cost of observing the site.

use tvs_netlist::{GateKind, Netlist, ScanView};

use crate::Fault;

/// Computed SCOAP measures for one netlist.
///
/// # Examples
///
/// ```
/// use tvs_fault::Scoap;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let view = n.scan_view()?;
/// let scoap = Scoap::compute(&n, &view);
/// let y = n.find("y").unwrap();
/// assert_eq!(scoap.cc1(y), 3); // both inputs to 1: 1 + 1 + 1
/// assert_eq!(scoap.cc0(y), 2); // one input to 0: 1 + 1
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
    /// Per gate, per input pin: observability of the branch.
    co_pin: Vec<Vec<u32>>,
}

const UNREACHED: u32 = u32::MAX;

impl Scoap {
    /// Computes all measures for a netlist's scan view.
    pub fn compute(netlist: &Netlist, view: &ScanView) -> Scoap {
        let n = netlist.gate_count();
        let mut cc0 = vec![UNREACHED; n];
        let mut cc1 = vec![UNREACHED; n];

        // Sources are perfectly controllable.
        for i in 0..view.input_count() {
            let g = view.input_gate(i).index();
            cc0[g] = 1;
            cc1[g] = 1;
        }

        // Forward sweep.
        for &id in view.order() {
            let gate = netlist.gate(id);
            let (c0, c1) = gate_controllability(
                gate.kind(),
                gate.fanin()
                    .iter()
                    .map(|f| (cc0[f.index()], cc1[f.index()])),
            );
            cc0[id.index()] = c0;
            cc1[id.index()] = c1;
        }

        // Reverse sweep for observability.
        let mut co = vec![UNREACHED; n];
        let mut co_pin: Vec<Vec<u32>> = netlist
            .gate_ids()
            .map(|id| vec![UNREACHED; netlist.gate(id).fanin().len()])
            .collect();

        for &po in view.pos() {
            co[po.index()] = 0;
        }
        // Scan-cell D pins are observation points (captured and shifted out).
        for &ff in view.ppis() {
            co_pin[ff.index()][0] = 0;
        }

        for &id in view.order().iter().rev() {
            // Stem observability: best branch.
            let stem = best_branch_co(netlist, id, &co_pin).min(co[id.index()]);
            co[id.index()] = stem;
            if stem == UNREACHED {
                continue;
            }
            let gate = netlist.gate(id);
            for (pin, _) in gate.fanin().iter().enumerate() {
                let side: u32 = gate
                    .fanin()
                    .iter()
                    .enumerate()
                    .filter(|&(p, _)| p != pin)
                    .map(|(_, &other)| match gate.kind() {
                        GateKind::And | GateKind::Nand => cc1[other.index()],
                        GateKind::Or | GateKind::Nor => cc0[other.index()],
                        GateKind::Xor | GateKind::Xnor => {
                            cc0[other.index()].min(cc1[other.index()])
                        }
                        _ => 0,
                    })
                    .fold(0u32, |a, b| a.saturating_add(b));
                let pin_co = stem.saturating_add(side).saturating_add(1);
                let slot = &mut co_pin[id.index()][pin];
                *slot = (*slot).min(pin_co);
            }
        }
        // Source stems observed through their branches.
        for i in 0..view.input_count() {
            let id = view.input_gate(i);
            let stem = best_branch_co(netlist, id, &co_pin).min(co[id.index()]);
            co[id.index()] = stem;
        }

        Scoap {
            cc0,
            cc1,
            co,
            co_pin,
        }
    }

    /// 0-controllability of a signal (cost of setting it to 0).
    pub fn cc0(&self, gate: tvs_netlist::GateId) -> u32 {
        self.cc0[gate.index()]
    }

    /// 1-controllability of a signal (cost of setting it to 1).
    pub fn cc1(&self, gate: tvs_netlist::GateId) -> u32 {
        self.cc1[gate.index()]
    }

    /// Observability of a signal's stem.
    pub fn co(&self, gate: tvs_netlist::GateId) -> u32 {
        self.co[gate.index()]
    }

    /// Testing difficulty of a stuck-at fault: controllability of the
    /// opposite value at the site plus the site's observability. Larger
    /// values mean harder faults; `u32::MAX`-saturated values indicate
    /// (likely) untestable sites.
    pub fn fault_hardness(&self, netlist: &Netlist, fault: &Fault) -> u64 {
        let (ctrl, obs) = match fault.site.pin {
            None => {
                let g = fault.site.gate.index();
                let ctrl = if fault.stuck.as_bool() {
                    self.cc0[g]
                } else {
                    self.cc1[g]
                };
                (ctrl, self.co[g])
            }
            Some(pin) => {
                let g = fault.site.gate;
                let driver = netlist.gate(g).fanin()[pin as usize].index();
                let ctrl = if fault.stuck.as_bool() {
                    self.cc0[driver]
                } else {
                    self.cc1[driver]
                };
                (ctrl, self.co_pin[g.index()][pin as usize])
            }
        };
        ctrl as u64 + obs as u64
    }
}

fn best_branch_co(netlist: &Netlist, id: tvs_netlist::GateId, co_pin: &[Vec<u32>]) -> u32 {
    netlist
        .fanout(id)
        .iter()
        .map(|&(consumer, pin)| co_pin[consumer.index()][pin as usize])
        .min()
        .unwrap_or(UNREACHED)
}

fn gate_controllability(kind: GateKind, fanin: impl Iterator<Item = (u32, u32)>) -> (u32, u32) {
    let ins: Vec<(u32, u32)> = fanin.collect();
    let add = |a: u32, b: u32| a.saturating_add(b);
    match kind {
        GateKind::Buf => (add(ins[0].0, 1), add(ins[0].1, 1)),
        GateKind::Not => (add(ins[0].1, 1), add(ins[0].0, 1)),
        GateKind::And | GateKind::Nand => {
            let all1 = ins.iter().fold(0u32, |a, &(_, c1)| add(a, c1));
            let any0 = ins.iter().map(|&(c0, _)| c0).min().unwrap_or(UNREACHED);
            let (c0, c1) = (add(any0, 1), add(all1, 1));
            if kind == GateKind::Nand {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
        GateKind::Or | GateKind::Nor => {
            let all0 = ins.iter().fold(0u32, |a, &(c0, _)| add(a, c0));
            let any1 = ins.iter().map(|&(_, c1)| c1).min().unwrap_or(UNREACHED);
            let (c0, c1) = (add(all0, 1), add(any1, 1));
            if kind == GateKind::Nor {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Fold pairwise: cost of making the running parity 0 or 1.
            let (mut p0, mut p1) = ins[0];
            for &(c0, c1) in &ins[1..] {
                let n0 = add(p0, c0).min(add(p1, c1));
                let n1 = add(p0, c1).min(add(p1, c0));
                p0 = n0;
                p1 = n1;
            }
            let (c0, c1) = (add(p0, 1), add(p1, 1));
            if kind == GateKind::Xnor {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
        GateKind::Input | GateKind::Dff => unreachable!("sources are not swept"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StuckAt;
    use tvs_netlist::NetlistBuilder;

    fn build_chain() -> Netlist {
        // a -> AND(y) <- b ; y -> AND(z) <- c ; z is the only output.
        let mut b = NetlistBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("z", GateKind::And, &["y", "c"]).unwrap();
        b.mark_output("z").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn controllability_accumulates_through_levels() {
        let n = build_chain();
        let v = n.scan_view().unwrap();
        let s = Scoap::compute(&n, &v);
        let y = n.find("y").unwrap();
        let z = n.find("z").unwrap();
        assert_eq!(s.cc1(y), 3); // 1+1+1
        assert_eq!(s.cc0(y), 2); // min(1,1)+1
        assert_eq!(s.cc1(z), 5); // cc1(y)+cc1(c)+1 = 3+1+1
        assert_eq!(s.cc0(z), 2); // min(cc0(y), cc0(c)) + 1 = min(2,1)+1
    }

    #[test]
    fn observability_grows_away_from_outputs() {
        let n = build_chain();
        let v = n.scan_view().unwrap();
        let s = Scoap::compute(&n, &v);
        let y = n.find("y").unwrap();
        let z = n.find("z").unwrap();
        let a = n.find("a").unwrap();
        assert_eq!(s.co(z), 0);
        // observe y through z: co(z) + cc1(c) + 1 = 0 + 1 + 1
        assert_eq!(s.co(y), 2);
        // observe a through y then z: co(y) + cc1(b) + 1 = 2 + 1 + 1
        assert_eq!(s.co(a), 4);
    }

    #[test]
    fn deeper_faults_are_harder() {
        let n = build_chain();
        let v = n.scan_view().unwrap();
        let s = Scoap::compute(&n, &v);
        // z/1 needs only one controlling 0 (cost 2) at a perfectly
        // observable point; a/0 must set a=1 and sensitize through b and c.
        let easy = Fault::stem(n.find("z").unwrap(), StuckAt::One);
        let hard = Fault::stem(n.find("a").unwrap(), StuckAt::Zero);
        assert!(
            s.fault_hardness(&n, &hard) > s.fault_hardness(&n, &easy),
            "input fault should be harder than output fault"
        );
    }

    #[test]
    fn scan_cells_are_observation_points() {
        let mut b = NetlistBuilder::new("ff");
        b.add_input("a").unwrap();
        b.add_dff("q", "d").unwrap();
        b.add_gate("d", GateKind::And, &["a", "q"]).unwrap();
        let n = b.build().unwrap();
        let v = n.scan_view().unwrap();
        let s = Scoap::compute(&n, &v);
        // d feeds only the flip-flop, which is directly observable.
        assert_eq!(s.co(n.find("d").unwrap()), 0);
        // q is observable through d: co(d) + cc1(a) + 1 = 2.
        assert_eq!(s.co(n.find("q").unwrap()), 2);
    }

    #[test]
    fn branch_hardness_uses_pin_observability() {
        // y = AND(a, b); z = NOT(a): the a->y branch and a->z branch have
        // different observabilities.
        let mut bld = NetlistBuilder::new("br");
        bld.add_input("a").unwrap();
        bld.add_input("b").unwrap();
        bld.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        bld.add_gate("z", GateKind::Not, &["a"]).unwrap();
        bld.mark_output("y").unwrap();
        bld.mark_output("z").unwrap();
        let n = bld.build().unwrap();
        let v = n.scan_view().unwrap();
        let s = Scoap::compute(&n, &v);
        let y = n.find("y").unwrap();
        let z = n.find("z").unwrap();
        // through y: side cost cc1(b)=1, +1 => 2; through z: +1 => 1.
        let via_y = Fault::branch(y, 0, StuckAt::Zero);
        let via_z = Fault::branch(z, 0, StuckAt::Zero);
        assert_eq!(
            s.fault_hardness(&n, &via_y) - s.fault_hardness(&n, &via_z),
            1
        );
    }
}
