//! Bit-parallel single-pattern multi-fault simulation (PROOFS/HOPE style).

use tvs_exec::ThreadPool;
use tvs_logic::BitVec;
use tvs_netlist::{Netlist, ScanView};

use crate::{Fault, FaultError, SimSession};

/// One simulator slot: a stimulus and an optional fault.
///
/// Slots are fully independent machines — the stitching engine exploits this
/// by giving every hidden fault its *own* mutated test vector in the same
/// sweep.
#[derive(Debug, Clone, Copy)]
pub struct SlotSpec<'a> {
    /// The combinational input pattern (PIs then PPIs).
    pub stimulus: &'a BitVec,
    /// The fault active in this slot, if any.
    pub fault: Option<Fault>,
}

/// Bit-parallel multi-fault simulator: up to 64 machines per sweep.
///
/// # Examples
///
/// Detect a stuck-at fault by comparing faulty and fault-free outputs:
///
/// ```
/// use tvs_fault::{Fault, FaultSim, StuckAt};
/// use tvs_logic::BitVec;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("and");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let view = n.scan_view()?;
/// let mut sim = FaultSim::new(&n, &view);
///
/// let fault = Fault::stem(n.find("y").unwrap(), StuckAt::Zero);
/// let detected = sim.detect(&BitVec::from_bools([true, true]), &[fault]);
/// assert_eq!(detected, vec![true]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FaultSim<'a> {
    session: SimSession<'a>,
}

impl<'a> FaultSim<'a> {
    /// Creates a simulator bound to a netlist and its scan view.
    pub fn new(netlist: &'a Netlist, view: &'a ScanView) -> Self {
        FaultSim {
            session: SimSession::new(netlist, view),
        }
    }

    /// Simulates up to 64 independent machines in one sweep and returns each
    /// machine's combinational outputs (POs then PPOs).
    ///
    /// # Errors
    ///
    /// [`FaultError::TooManySlots`] for more than 64 slots,
    /// [`FaultError::StimulusLength`] for a stimulus that does not match the
    /// view.
    pub fn run_slots(&mut self, slots: &[SlotSpec<'_>]) -> Result<Vec<BitVec>, FaultError> {
        self.session.run_slots(slots)
    }

    /// Evaluates the fault-free outputs for one stimulus, which also seeds
    /// the session baseline for subsequent incremental sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `stimulus` does not match the scan view.
    pub fn good_outputs(&mut self, stimulus: &BitVec) -> BitVec {
        // The length is the only failure mode, pre-checked here so the
        // session call is structurally infallible. lint:allow(SRC005)
        assert_eq!(
            stimulus.len(),
            self.session.view().input_count(),
            "stimulus length must match the scan view"
        );
        match self.session.baseline(stimulus) {
            Ok(good) => good,
            Err(_) => unreachable!("stimulus length validated above"),
        }
    }

    /// Runs `faults` against a shared stimulus and reports, per fault,
    /// whether *any* combinational output differs from the fault-free
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `stimulus` does not match the scan view.
    pub fn detect(&mut self, stimulus: &BitVec, faults: &[Fault]) -> Vec<bool> {
        assert_eq!(
            stimulus.len(),
            self.session.view().input_count(),
            "stimulus length must match the scan view"
        );
        match self.session.detect(stimulus, faults) {
            Ok(hits) => hits,
            Err(_) => unreachable!("stimulus length validated above"),
        }
    }

    /// Simulates a pattern set over a fault list with fault dropping and
    /// returns per-fault detection flags.
    ///
    /// This is the conventional full-shift observation model (every
    /// combinational output observable), used for baseline coverage numbers.
    pub fn coverage(&mut self, patterns: &[BitVec], faults: &[Fault]) -> Vec<bool> {
        let mut detected = vec![false; faults.len()];
        let mut alive: Vec<usize> = (0..faults.len()).collect();
        for pattern in patterns {
            if alive.is_empty() {
                break;
            }
            let subset: Vec<Fault> = alive.iter().map(|&i| faults[i]).collect();
            let hits = self.detect(pattern, &subset);
            let mut next_alive = Vec::with_capacity(alive.len());
            for (slot, &fi) in alive.iter().enumerate() {
                if hits[slot] {
                    detected[fi] = true;
                } else {
                    next_alive.push(fi);
                }
            }
            alive = next_alive;
        }
        detected
    }
}

/// Parallel [`FaultSim::detect`]: shards `faults` into 63-fault words (the
/// same batching the sequential path uses, one good slot per sweep), fans
/// the shards out over `pool`, and concatenates the per-shard detection
/// flags in fault-index order.
///
/// The result is **bit-identical** to `FaultSim::detect` at any thread
/// count: each shard is a pure function of the stimulus and its faults, and
/// the order-preserving reduction never depends on completion order.
///
/// # Examples
///
/// ```
/// use tvs_exec::ThreadPool;
/// use tvs_fault::{detect_parallel, Fault, FaultList, FaultSim};
/// use tvs_logic::BitVec;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("and");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let view = n.scan_view()?;
/// let faults = FaultList::collapsed(&n);
/// let tv = BitVec::from_bools([true, true]);
///
/// let pool = ThreadPool::new(4);
/// let par = detect_parallel(&n, &view, &pool, &tv, faults.faults());
/// let seq = FaultSim::new(&n, &view).detect(&tv, faults.faults());
/// assert_eq!(par, seq);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn detect_parallel(
    netlist: &Netlist,
    view: &ScanView,
    pool: &ThreadPool,
    stimulus: &BitVec,
    faults: &[Fault],
) -> Vec<bool> {
    if pool.threads() <= 1 || faults.len() <= 63 {
        return FaultSim::new(netlist, view).detect(stimulus, faults);
    }
    let shards: Vec<&[Fault]> = faults.chunks(63).collect();
    pool.map(&shards, |_, shard| {
        FaultSim::new(netlist, view).detect(stimulus, shard)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultList, StuckAt};
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn table1_first_vector_detections() {
        // Paper, Table 1: the first vector 110 produces a response that
        // differs from the fault-free 111 for exactly these stem faults.
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = FaultSim::new(&n, &v);
        let tv = BitVec::from_bools([true, true, false]);

        let cases = [
            ("F", StuckAt::Zero, true), // F/0 -> 011
            ("F", StuckAt::One, false), // F is already 1
            ("D", StuckAt::Zero, true), // D/0 -> 010
            ("b", StuckAt::Zero, true), // B/0 -> 000
            ("E", StuckAt::Zero, true), // E/0 -> 001
            ("a", StuckAt::One, false), // a is already 1
        ];
        for (name, stuck, expect) in cases {
            let f = Fault::stem(n.find(name).unwrap(), stuck);
            let det = sim.detect(&tv, &[f]);
            assert_eq!(det[0], expect, "{}", f.display_in(&n));
        }
    }

    #[test]
    fn per_slot_stimuli_are_independent() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = FaultSim::new(&n, &v);
        let s1 = BitVec::from_bools([true, true, false]);
        let s2 = BitVec::from_bools([false, false, true]);
        let outs = sim
            .run_slots(&[
                SlotSpec {
                    stimulus: &s1,
                    fault: None,
                },
                SlotSpec {
                    stimulus: &s2,
                    fault: None,
                },
            ])
            .unwrap();
        assert_eq!(outs[0].to_string(), "111");
        assert_eq!(outs[1].to_string(), "010");
    }

    #[test]
    fn paper_four_vectors_catch_all_irredundant_faults() {
        // Under full observation (all PPOs visible), the paper's four
        // vectors detect every collapsed fault except the redundant E-F/1.
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = FaultSim::new(&n, &v);
        let patterns = [
            BitVec::from_bools([true, true, false]),
            BitVec::from_bools([false, false, true]),
            BitVec::from_bools([true, false, false]),
            BitVec::from_bools([false, true, false]),
        ];
        let list = FaultList::collapsed(&n);
        let detected = sim.coverage(&patterns, list.faults());
        let missed: Vec<String> = list
            .iter()
            .zip(&detected)
            .filter(|(_, &d)| !d)
            .map(|(f, _)| f.display_in(&n))
            .collect();
        assert_eq!(missed, vec!["E-F/1".to_string()]);
    }

    #[test]
    fn detect_handles_more_than_63_faults() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = FaultSim::new(&n, &v);
        let tv = BitVec::from_bools([true, true, false]);
        // Repeat the full universe enough times to exceed one batch.
        let mut faults = Vec::new();
        for _ in 0..5 {
            faults.extend(FaultList::full(&n).faults().iter().copied());
        }
        assert!(faults.len() > 63);
        let det = sim.detect(&tv, &faults);
        assert_eq!(det.len(), faults.len());
        // Consistency across batches: identical faults get identical verdicts.
        let base = FaultList::full(&n).len();
        for i in 0..base {
            for r in 1..5 {
                assert_eq!(det[i], det[i + r * base]);
            }
        }
    }

    #[test]
    fn redundant_fault_never_detected_exhaustively() {
        // E-F/1 (branch E->F stuck at 1) is redundant: check all 8 patterns.
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = FaultSim::new(&n, &v);
        let f_gate = n.find("F").unwrap();
        let fault = Fault::branch(f_gate, 1, StuckAt::One); // pin 1 = E
        for bits in 0..8u32 {
            let tv: BitVec = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert!(!sim.detect(&tv, &[fault])[0], "pattern {bits:03b}");
        }
    }
}
