//! Static fault pre-classification from testability dataflow.
//!
//! The SCOAP-style observability sweep in `tvs-lint` proves, for some sites,
//! that **no structural path** exists from the site to any observation point
//! (primary output or scan-cell `D` pin). A stuck-at fault on such a site
//! can never change an observable output, so it is untestable — no
//! simulation or ATPG effort can ever detect or even target it.
//!
//! [`StaticPrune`] captures that set once per netlist and lets every run
//! path (CLI, stitch engine prescreen, coverage baselines) pre-classify the
//! same faults identically: the verdict is a pure function of the netlist,
//! independent of patterns, seeds and thread counts. [`detect_pruned`]
//! wraps the parallel detector with the prune applied; the result is
//! bit-identical to full simulation because pruned faults are provably
//! never detected.

use std::collections::BTreeSet;

use tvs_exec::ThreadPool;
use tvs_lint::{IrGraph, Testability};
use tvs_logic::BitVec;
use tvs_netlist::{Netlist, ScanView};

use crate::{detect_parallel, Fault};

/// The statically-untestable fault sites of one netlist.
///
/// # Examples
///
/// A gate that drives nothing is unobservable; both polarities of its stem
/// fault are pre-classified untestable:
///
/// ```
/// use tvs_fault::{Fault, StaticPrune, StuckAt};
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_gate("dead", GateKind::Not, &["a"])?;
/// b.add_gate("y", GateKind::Buf, &["a"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let prune = StaticPrune::new(&n);
/// let dead = n.find("dead").unwrap();
/// assert!(prune.is_untestable(&Fault::stem(dead, StuckAt::Zero)));
/// assert!(!prune.is_untestable(&Fault::stem(n.find("y").unwrap(), StuckAt::One)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticPrune {
    /// Unobservable sites as `(gate index, pin)`; `None` = output stem.
    sites: BTreeSet<(usize, Option<u32>)>,
}

impl StaticPrune {
    /// Computes the untestable-site set for a netlist.
    ///
    /// When the testability analysis declines (malformed graph — impossible
    /// for a built `Netlist`, possible for hand-assembled IR), the set is
    /// empty: pruning degrades to a no-op, never to an unsound verdict.
    pub fn new(netlist: &Netlist) -> Self {
        let graph = IrGraph::from(netlist);
        let sites = match Testability::compute(&graph) {
            Some(t) => t
                .untestable_sites(&graph)
                .into_iter()
                .map(|s| (s.node, s.pin))
                .collect(),
            None => BTreeSet::new(),
        };
        StaticPrune { sites }
    }

    /// The number of unobservable sites (each carries two stuck-at faults).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when no site is statically untestable.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// `true` when `fault` sits on a structurally unobservable site and is
    /// therefore undetectable by any test.
    pub fn is_untestable(&self, fault: &Fault) -> bool {
        self.sites
            .contains(&(fault.site.gate.index(), fault.site.pin))
    }
}

/// [`detect_parallel`] with static pruning: faults on unobservable sites
/// are reported undetected without simulating them; the rest go through the
/// ordinary parallel detector.
///
/// Bit-identical to `detect_parallel` over the same faults — the prune only
/// skips faults whose detection is structurally impossible.
pub fn detect_pruned(
    netlist: &Netlist,
    view: &ScanView,
    pool: &ThreadPool,
    stimulus: &BitVec,
    faults: &[Fault],
    prune: &StaticPrune,
) -> Vec<bool> {
    if prune.is_empty() {
        return detect_parallel(netlist, view, pool, stimulus, faults);
    }
    let live: Vec<usize> = (0..faults.len())
        .filter(|&i| !prune.is_untestable(&faults[i]))
        .collect();
    let subset: Vec<Fault> = live.iter().map(|&i| faults[i]).collect();
    let hits = detect_parallel(netlist, view, pool, stimulus, &subset);
    let mut out = vec![false; faults.len()];
    for (&i, hit) in live.iter().zip(hits) {
        out[i] = hit;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultList, FaultSim, StuckAt};
    use tvs_netlist::{GateKind, NetlistBuilder};

    /// `y` observable, `dead2 = Not(dead1)` a dead cone of two gates.
    fn dead_cone() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("dead1", GateKind::Or, &["a", "b"]).unwrap();
        b.add_gate("dead2", GateKind::Not, &["dead1"]).unwrap();
        b.mark_output("y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dead_cone_faults_are_pre_classified() {
        let n = dead_cone();
        let prune = StaticPrune::new(&n);
        // Stems of dead1/dead2, the dead1->dead2 branch, and the two input
        // branches feeding the dead cone: 5 sites.
        assert_eq!(prune.len(), 5);
        let dead1 = n.find("dead1").unwrap();
        let dead2 = n.find("dead2").unwrap();
        assert!(prune.is_untestable(&Fault::branch(dead2, 0, StuckAt::One)));
        assert!(prune.is_untestable(&Fault::branch(dead1, 0, StuckAt::Zero)));
        assert!(prune.is_untestable(&Fault::branch(dead1, 1, StuckAt::One)));
        for name in ["dead1", "dead2"] {
            let g = n.find(name).unwrap();
            for stuck in StuckAt::BOTH {
                assert!(prune.is_untestable(&Fault::stem(g, stuck)), "{name}");
            }
        }
        let live = n.find("y").unwrap();
        assert!(!prune.is_untestable(&Fault::stem(live, StuckAt::Zero)));
        assert!(!prune.is_untestable(&Fault::branch(live, 0, StuckAt::One)));
    }

    #[test]
    fn pruned_detection_matches_full_simulation() {
        let n = dead_cone();
        let view = n.scan_view().unwrap();
        let list = FaultList::full(&n);
        let prune = StaticPrune::new(&n);
        let pool = ThreadPool::new(2);
        for bits in 0..4u32 {
            let tv: BitVec = (0..2).map(|i| (bits >> i) & 1 == 1).collect();
            let full = FaultSim::new(&n, &view).detect(&tv, list.faults());
            let pruned = detect_pruned(&n, &view, &pool, &tv, list.faults(), &prune);
            assert_eq!(full, pruned, "pattern {bits:02b}");
        }
    }

    #[test]
    fn fully_observable_netlist_has_empty_prune() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Not, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        let prune = StaticPrune::new(&n);
        assert!(prune.is_empty());
        assert_eq!(prune.len(), 0);
    }
}
