//! Fault-model substrate for the TVS DFT toolkit.
//!
//! Everything the DATE 2003 stitching paper delegates to HOPE (the Virginia
//! Tech fault simulator) is implemented here from scratch:
//!
//! * [`Fault`] / [`FaultSite`] — single stuck-at faults on gate outputs
//!   (stems) and on individual gate input pins (fanout branches);
//! * [`FaultList`] — the fault universe of a circuit, with structural
//!   equivalence collapsing ([`collapse`](FaultList::collapsed));
//! * [`FaultSim`] — a bit-parallel single-pattern multi-fault simulator in
//!   the PROOFS/HOPE tradition: 64 faulty machines per sweep, each slot with
//!   its *own* stimulus (required by the stitching engine, whose hidden
//!   faults see mutated test vectors);
//! * [`Scoap`] — SCOAP controllability/observability testability measures,
//!   used for the paper's "Hardness" fault-ordering strategy;
//! * [`StaticPrune`] — pattern-independent pre-classification of faults on
//!   structurally unobservable sites, derived from the lint crate's
//!   testability dataflow and provably equivalent to full simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collapse;
mod list;
mod model;
mod prune;
mod scoap;
mod session;
mod sim;

pub use list::FaultList;
pub use model::{Fault, FaultSite, StuckAt};
pub use prune::{detect_pruned, StaticPrune};
pub use scoap::Scoap;
pub use session::{FaultError, SimSession};
pub use sim::{detect_parallel, FaultSim, SlotSpec};
