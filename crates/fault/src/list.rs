//! Fault universe construction and collapsed fault lists.

use tvs_netlist::Netlist;

use crate::collapse;
use crate::{Fault, FaultSite, StuckAt};

/// A list of single stuck-at faults over one netlist.
///
/// [`FaultList::full`] enumerates the complete universe: both polarities on
/// every gate output stem and on every input pin of every combinational gate
/// and flip-flop. [`FaultList::collapsed`] reduces it by structural
/// equivalence (see [`collapse rules`](#collapsing)), which is what ATPG and
/// the stitching engine operate on — one representative per equivalence
/// class suffices for both detection and coverage accounting.
///
/// # Collapsing
///
/// * branch ≡ stem when the driving signal has exactly one consumer pin;
/// * AND: every input s-a-0 ≡ output s-a-0 (NAND: ≡ output s-a-1);
/// * OR: every input s-a-1 ≡ output s-a-1 (NOR: ≡ output s-a-0);
/// * NOT/BUF: input s-a-v ≡ output s-a-v̄ / s-a-v.
///
/// # Examples
///
/// ```
/// use tvs_fault::FaultList;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let full = FaultList::full(&n);
/// let collapsed = FaultList::collapsed(&n);
/// assert!(collapsed.len() < full.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultList {
    faults: Vec<Fault>,
}

impl FaultList {
    /// Builds the complete fault universe of a netlist.
    ///
    /// Input pins are enumerated only where they are genuine fanout branches
    /// or gate pins (combinational gates and flip-flop D pins); output stems
    /// cover every signal, including primary inputs and scan-cell outputs.
    pub fn full(netlist: &Netlist) -> FaultList {
        let mut faults = Vec::new();
        for id in netlist.gate_ids() {
            for stuck in StuckAt::BOTH {
                faults.push(Fault::new(FaultSite::stem(id), stuck));
            }
            let gate = netlist.gate(id);
            if !gate.fanin().is_empty() {
                for pin in 0..gate.fanin().len() as u32 {
                    for stuck in StuckAt::BOTH {
                        faults.push(Fault::new(FaultSite::branch(id, pin), stuck));
                    }
                }
            }
        }
        FaultList { faults }
    }

    /// Builds the equivalence-collapsed fault list of a netlist.
    pub fn collapsed(netlist: &Netlist) -> FaultList {
        FaultList {
            faults: collapse::collapse(netlist),
        }
    }

    /// Creates a list from explicit faults (e.g. a filtered subset).
    pub fn from_faults(faults: Vec<Fault>) -> FaultList {
        FaultList { faults }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults as a slice.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Iterates over the faults.
    pub fn iter(&self) -> std::slice::Iter<'_, Fault> {
        self.faults.iter()
    }
}

impl IntoIterator for FaultList {
    type Item = Fault;
    type IntoIter = std::vec::IntoIter<Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.into_iter()
    }
}

impl<'a> IntoIterator for &'a FaultList {
    type Item = &'a Fault;
    type IntoIter = std::slice::Iter<'a, Fault>;

    fn into_iter(self) -> Self::IntoIter {
        self.faults.iter()
    }
}

impl FromIterator<Fault> for FaultList {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        FaultList {
            faults: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn full_universe_counts() {
        // inv: input a (stem 2) + gate y (stem 2 + pin 2) = 6 faults.
        let mut b = NetlistBuilder::new("inv");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::Not, &["a"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        assert_eq!(FaultList::full(&n).len(), 6);
    }

    #[test]
    fn dff_pins_included() {
        let mut b = NetlistBuilder::new("ff");
        b.add_dff("q", "d").unwrap();
        b.add_gate("d", GateKind::Not, &["q"]).unwrap();
        b.mark_output("q").unwrap();
        let n = b.build().unwrap();
        // q: stem 2 + pin 2; d: stem 2 + pin 2 = 8 faults.
        assert_eq!(FaultList::full(&n).len(), 8);
    }

    #[test]
    fn list_iteration_and_from_iter() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.mark_output("a").unwrap();
        let n = b.build().unwrap();
        let list = FaultList::full(&n);
        let round: FaultList = list.iter().copied().collect();
        assert_eq!(round, list);
        assert_eq!(list.into_iter().count(), 2);
    }
}
