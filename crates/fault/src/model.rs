//! The single stuck-at fault model.

use std::fmt;

use tvs_netlist::{GateId, Netlist};
use tvs_sim::Injection;

/// The stuck value of a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StuckAt {
    /// Stuck-at-0.
    Zero,
    /// Stuck-at-1.
    One,
}

impl StuckAt {
    /// Both polarities, for enumeration.
    pub const BOTH: [StuckAt; 2] = [StuckAt::Zero, StuckAt::One];

    /// The stuck value as a boolean.
    #[inline]
    pub const fn as_bool(self) -> bool {
        matches!(self, StuckAt::One)
    }
}

impl From<bool> for StuckAt {
    fn from(b: bool) -> Self {
        if b {
            StuckAt::One
        } else {
            StuckAt::Zero
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.as_bool() { "1" } else { "0" })
    }
}

/// Where a fault lives: a gate's output stem or one of its input pins
/// (a fanout branch of the driving signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultSite {
    /// The gate whose output or input pin is faulty.
    pub gate: GateId,
    /// `None` = output stem; `Some(p)` = input pin `p`.
    pub pin: Option<u32>,
}

impl FaultSite {
    /// A fault on the gate's output stem.
    pub const fn stem(gate: GateId) -> Self {
        FaultSite { gate, pin: None }
    }

    /// A fault on one of the gate's input pins.
    pub const fn branch(gate: GateId, pin: u32) -> Self {
        FaultSite {
            gate,
            pin: Some(pin),
        }
    }
}

/// A single stuck-at fault.
///
/// Display follows the DATE 2003 paper's convention: `F/0` for a stem fault
/// on signal `F`, `B-D/1` for the branch from `B` into gate `D` stuck at 1 —
/// see [`Fault::display_in`] (names require the owning netlist).
///
/// # Examples
///
/// ```
/// use tvs_fault::{Fault, FaultSite, StuckAt};
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_gate("y", GateKind::Not, &["a"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let f = Fault::new(FaultSite::stem(n.find("y").unwrap()), StuckAt::One);
/// assert_eq!(f.display_in(&n), "y/1");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The fault site.
    pub site: FaultSite,
    /// The stuck value.
    pub stuck: StuckAt,
}

impl Fault {
    /// Creates a fault.
    pub const fn new(site: FaultSite, stuck: StuckAt) -> Self {
        Fault { site, stuck }
    }

    /// Shorthand for a stem fault.
    pub const fn stem(gate: GateId, stuck: StuckAt) -> Self {
        Fault::new(FaultSite::stem(gate), stuck)
    }

    /// Shorthand for a branch fault.
    pub const fn branch(gate: GateId, pin: u32, stuck: StuckAt) -> Self {
        Fault::new(FaultSite::branch(gate, pin), stuck)
    }

    /// The [`Injection`] realizing this fault in the given simulator slots.
    pub const fn injection(&self, slots: u64) -> Injection {
        Injection {
            gate: self.site.gate,
            pin: self.site.pin,
            stuck: self.stuck.as_bool(),
            slots,
        }
    }

    /// Renders the fault with signal names from its owning netlist, in the
    /// paper's `signal/value` and `driver-consumer/value` style.
    ///
    /// # Panics
    ///
    /// Panics if the fault's ids did not come from `netlist`.
    pub fn display_in(&self, netlist: &Netlist) -> String {
        match self.site.pin {
            None => format!("{}/{}", netlist.gate_name(self.site.gate), self.stuck),
            Some(pin) => {
                let driver = netlist.gate(self.site.gate).fanin()[pin as usize];
                format!(
                    "{}-{}/{}",
                    netlist.gate_name(driver),
                    netlist.gate_name(self.site.gate),
                    self.stuck
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn stuck_at_conversions() {
        assert!(StuckAt::One.as_bool());
        assert!(!StuckAt::Zero.as_bool());
        assert_eq!(StuckAt::from(true), StuckAt::One);
        assert_eq!(StuckAt::Zero.to_string(), "0");
    }

    #[test]
    fn branch_display_names_driver_and_consumer() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("B").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("D", GateKind::And, &["B", "c"]).unwrap();
        b.mark_output("D").unwrap();
        let n = b.build().unwrap();
        let d = n.find("D").unwrap();
        let f = Fault::branch(d, 0, StuckAt::One);
        assert_eq!(f.display_in(&n), "B-D/1");
    }

    #[test]
    fn injection_carries_fault_fields() {
        let gate = GateId::from_index(3);
        let f = Fault::branch(gate, 1, StuckAt::Zero);
        let inj = f.injection(0b101);
        assert_eq!(inj.gate, gate);
        assert_eq!(inj.pin, Some(1));
        assert!(!inj.stuck);
        assert_eq!(inj.slots, 0b101);
    }
}
