//! A persistent simulation session: slot allocation, baseline reuse and
//! >64-slot batching over the incremental [`ParallelSim`] kernel.

use std::error::Error;
use std::fmt;

use tvs_exec::Counter;
use tvs_logic::BitVec;
use tvs_netlist::{Netlist, ScanView};
use tvs_sim::{Injection, ParallelSim};

use crate::{Fault, SlotSpec};

/// Typed errors of the simulation session (and of
/// [`FaultSim::run_slots`](crate::FaultSim::run_slots)), consistent with the
/// toolkit-wide taxonomy: malformed simulation requests degrade through
/// errors, never aborts (lint rule SRC005).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// More than 64 slots were requested for a single sweep.
    TooManySlots {
        /// The number of slots given.
        given: usize,
    },
    /// A slot's stimulus does not match the scan view's input count.
    StimulusLength {
        /// The offending slot index (0 for a baseline stimulus).
        slot: usize,
        /// The stimulus length given.
        got: usize,
        /// The view's input count.
        want: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::TooManySlots { given } => {
                write!(f, "{given} slots requested, a sweep holds at most 64")
            }
            FaultError::StimulusLength { slot, got, want } => write!(
                f,
                "slot {slot} stimulus has {got} bits, the scan view expects {want}"
            ),
        }
    }
}

impl Error for FaultError {}

/// A persistent multi-fault simulation session.
///
/// Where [`FaultSim`](crate::FaultSim) models one sweep at a time, a session
/// owns the state that makes *sequences* of sweeps cheap:
///
/// * **baseline reuse** — [`baseline`](Self::baseline) seeds one fault-free
///   full sweep; subsequent [`run_slots`](Self::run_slots) calls re-evaluate
///   only the fanout cones of the bits and injections that differ from it
///   (the stitching engine's classify stage shares one good-machine vector
///   across hundreds of faulty machines, so most gate evaluations are
///   provably redundant — see DESIGN.md §11);
/// * **slot allocation** — stimuli are packed into the 64 bit-parallel
///   machines of one sweep, with unused slots mirroring the baseline so they
///   cause no spurious events;
/// * **batching** — [`run_jobs`](Self::run_jobs) accepts any number of
///   machines and splits them into sweeps internally, removing the 64-slot
///   ceiling from every caller.
///
/// # Examples
///
/// ```
/// use tvs_fault::{Fault, SimSession, SlotSpec, StuckAt};
/// use tvs_logic::BitVec;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("and");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let n = b.build()?;
/// let view = n.scan_view()?;
/// let mut session = SimSession::new(&n, &view);
///
/// let tv = BitVec::from_bools([true, true]);
/// let good = session.baseline(&tv)?;
/// let fault = Fault::stem(n.find("y").unwrap(), StuckAt::Zero);
/// let outs = session.run_slots(&[SlotSpec { stimulus: &tv, fault: Some(fault) }])?;
/// assert_ne!(outs[0], good, "y/0 is detected by 11");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SimSession<'a> {
    view: &'a ScanView,
    psim: ParallelSim<'a>,
    words: Vec<u64>,
    injections: Vec<Injection>,
    /// The broadcast stimulus of the seeded baseline, if any.
    base_stim: Option<BitVec>,
    /// The fault-free outputs of the seeded baseline.
    base_outputs: BitVec,
    slot_counter: Counter,
    sweep_counter: Counter,
    baseline_counter: Counter,
}

impl<'a> SimSession<'a> {
    /// Creates a session bound to a netlist and its scan view.
    pub fn new(netlist: &'a Netlist, view: &'a ScanView) -> Self {
        SimSession {
            view,
            psim: ParallelSim::new(netlist, view),
            words: vec![0; view.input_count()],
            injections: Vec::new(),
            base_stim: None,
            base_outputs: BitVec::new(),
            slot_counter: tvs_exec::counter("fault.slots_simulated"),
            sweep_counter: tvs_exec::counter("fault.sweeps"),
            baseline_counter: tvs_exec::counter("fault.baseline_sweeps"),
        }
    }

    /// The scan view this session simulates.
    pub fn view(&self) -> &ScanView {
        self.view
    }

    /// Seeds (or re-seeds) the fault-free baseline for `stimulus` and
    /// returns the good-machine outputs (POs then PPOs).
    ///
    /// Re-seeding with the stimulus already in place is free; a different
    /// stimulus costs one full sweep. Every later sweep in this session is
    /// evaluated incrementally against this baseline.
    ///
    /// # Errors
    ///
    /// [`FaultError::StimulusLength`] if `stimulus` does not match the view.
    pub fn baseline(&mut self, stimulus: &BitVec) -> Result<BitVec, FaultError> {
        if stimulus.len() != self.view.input_count() {
            return Err(FaultError::StimulusLength {
                slot: 0,
                got: stimulus.len(),
                want: self.view.input_count(),
            });
        }
        if self.base_stim.as_ref() == Some(stimulus) && self.psim.has_baseline() {
            return Ok(self.base_outputs.clone());
        }
        for (i, bit) in stimulus.iter().enumerate() {
            self.words[i] = if bit { !0u64 } else { 0 };
        }
        self.psim.seed_baseline(&self.words, &[]);
        self.baseline_counter.incr();
        self.base_stim = Some(stimulus.clone());
        self.base_outputs = self.psim.output_slot(0);
        Ok(self.base_outputs.clone())
    }

    /// Simulates up to 64 independent machines in one sweep and returns each
    /// machine's combinational outputs (POs then PPOs).
    ///
    /// With a seeded baseline the sweep is incremental: only the cones of
    /// stimulus bits and injections that differ from the fault-free machine
    /// are re-evaluated. Without one it is a plain full sweep.
    ///
    /// # Errors
    ///
    /// [`FaultError::TooManySlots`] for more than 64 slots,
    /// [`FaultError::StimulusLength`] for a stimulus that does not match the
    /// view.
    pub fn run_slots(&mut self, slots: &[SlotSpec<'_>]) -> Result<Vec<BitVec>, FaultError> {
        if slots.len() > 64 {
            return Err(FaultError::TooManySlots { given: slots.len() });
        }
        let want = self.view.input_count();
        for (s, spec) in slots.iter().enumerate() {
            if spec.stimulus.len() != want {
                return Err(FaultError::StimulusLength {
                    slot: s,
                    got: spec.stimulus.len(),
                    want,
                });
            }
        }

        // Slot packing: start every word from the baseline broadcast (zeros
        // without one) so unused and unchanged slots generate no events.
        match &self.base_stim {
            Some(base) => {
                for (i, bit) in base.iter().enumerate() {
                    self.words[i] = if bit { !0u64 } else { 0 };
                }
            }
            None => self.words.fill(0),
        }
        self.injections.clear();
        for (s, spec) in slots.iter().enumerate() {
            for (i, bit) in spec.stimulus.iter().enumerate() {
                if ((self.words[i] >> s) & 1 == 1) != bit {
                    self.words[i] ^= 1u64 << s;
                }
            }
            if let Some(fault) = spec.fault {
                self.injections.push(fault.injection(1u64 << s));
            }
        }

        if self.psim.has_baseline() {
            self.psim.eval_incremental(&self.words, &self.injections);
        } else {
            self.psim.eval(&self.words, &self.injections);
        }
        self.slot_counter.add(slots.len() as u64);
        self.sweep_counter.incr();
        Ok((0..slots.len() as u32)
            .map(|s| self.psim.output_slot(s))
            .collect())
    }

    /// Simulates any number of machines, batching them into 64-slot sweeps
    /// internally, and returns the outputs in job order.
    ///
    /// # Errors
    ///
    /// [`FaultError::StimulusLength`] for a stimulus that does not match the
    /// view (reported with its job index).
    pub fn run_jobs(&mut self, jobs: &[SlotSpec<'_>]) -> Result<Vec<BitVec>, FaultError> {
        let mut outs = Vec::with_capacity(jobs.len());
        for (start, chunk) in jobs.chunks(64).enumerate() {
            outs.extend(self.run_slots(chunk).map_err(|e| match e {
                FaultError::StimulusLength { slot, got, want } => FaultError::StimulusLength {
                    slot: start * 64 + slot,
                    got,
                    want,
                },
                other => other,
            })?);
        }
        Ok(outs)
    }

    /// Runs `faults` against a shared stimulus and reports, per fault,
    /// whether *any* combinational output differs from the fault-free
    /// machine.
    ///
    /// The shared stimulus becomes (or reuses) the session baseline, so each
    /// 64-fault sweep only re-evaluates the injection cones.
    ///
    /// # Errors
    ///
    /// [`FaultError::StimulusLength`] if `stimulus` does not match the view.
    pub fn detect(&mut self, stimulus: &BitVec, faults: &[Fault]) -> Result<Vec<bool>, FaultError> {
        let good = self.baseline(stimulus)?;
        let mut detected = Vec::with_capacity(faults.len());
        for chunk in faults.chunks(64) {
            let slots: Vec<SlotSpec<'_>> = chunk
                .iter()
                .map(|&f| SlotSpec {
                    stimulus,
                    fault: Some(f),
                })
                .collect();
            let outs = self.run_slots(&slots)?;
            detected.extend(outs.iter().map(|out| out != &good));
        }
        Ok(detected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StuckAt;
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn and2() -> Netlist {
        let mut b = NetlistBuilder::new("and");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.mark_output("y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn too_many_slots_is_a_typed_error() {
        let n = and2();
        let v = n.scan_view().unwrap();
        let mut session = SimSession::new(&n, &v);
        let tv = BitVec::from_bools([true, true]);
        let slots: Vec<SlotSpec<'_>> = (0..65)
            .map(|_| SlotSpec {
                stimulus: &tv,
                fault: None,
            })
            .collect();
        assert_eq!(
            session.run_slots(&slots),
            Err(FaultError::TooManySlots { given: 65 })
        );
    }

    #[test]
    fn stimulus_length_mismatch_is_a_typed_error() {
        let n = and2();
        let v = n.scan_view().unwrap();
        let mut session = SimSession::new(&n, &v);
        let short = BitVec::from_bools([true]);
        assert_eq!(
            session.run_slots(&[SlotSpec {
                stimulus: &short,
                fault: None,
            }]),
            Err(FaultError::StimulusLength {
                slot: 0,
                got: 1,
                want: 2,
            })
        );
        assert_eq!(
            session.baseline(&short),
            Err(FaultError::StimulusLength {
                slot: 0,
                got: 1,
                want: 2,
            })
        );
    }

    #[test]
    fn run_jobs_reports_global_slot_index() {
        let n = and2();
        let v = n.scan_view().unwrap();
        let mut session = SimSession::new(&n, &v);
        let ok = BitVec::from_bools([true, false]);
        let short = BitVec::from_bools([true]);
        let mut jobs: Vec<SlotSpec<'_>> = (0..70)
            .map(|_| SlotSpec {
                stimulus: &ok,
                fault: None,
            })
            .collect();
        jobs[66] = SlotSpec {
            stimulus: &short,
            fault: None,
        };
        assert_eq!(
            session.run_jobs(&jobs),
            Err(FaultError::StimulusLength {
                slot: 66,
                got: 1,
                want: 2,
            })
        );
    }

    #[test]
    fn incremental_sweeps_match_cold_sessions() {
        let n = and2();
        let v = n.scan_view().unwrap();
        let tv = BitVec::from_bools([true, true]);
        let flip = BitVec::from_bools([false, true]);
        let fault = Fault::stem(n.find("y").unwrap(), StuckAt::Zero);

        let mut warm = SimSession::new(&n, &v);
        warm.baseline(&tv).unwrap();
        let warm_outs = warm
            .run_jobs(&[
                SlotSpec {
                    stimulus: &tv,
                    fault: Some(fault),
                },
                SlotSpec {
                    stimulus: &flip,
                    fault: None,
                },
            ])
            .unwrap();

        let mut cold = SimSession::new(&n, &v);
        let cold_outs = cold
            .run_jobs(&[
                SlotSpec {
                    stimulus: &tv,
                    fault: Some(fault),
                },
                SlotSpec {
                    stimulus: &flip,
                    fault: None,
                },
            ])
            .unwrap();
        assert_eq!(warm_outs, cold_outs);
    }
}
