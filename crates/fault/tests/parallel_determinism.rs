//! Parallel fault simulation must be bit-identical to sequential: the
//! DESIGN.md §6.4 invariant. `detect_parallel` shards the fault universe
//! into fixed 63-fault words and merges detection flags in fault-index
//! order, so the thread count must never change a detection set.

use tvs_exec::ThreadPool;
use tvs_fault::{detect_parallel, FaultList, FaultSim};
use tvs_logic::{BitVec, Prng};

fn detection_sets(netlist: &tvs_netlist::Netlist, patterns: usize) -> Vec<Vec<bool>> {
    let view = netlist.scan_view().expect("valid view");
    let faults = FaultList::collapsed(netlist);
    let pool1 = ThreadPool::new(1);
    let pool8 = ThreadPool::new(8);
    let mut rng = Prng::seed_from_u64(0xDE7);
    let mut sets = Vec::new();
    for _ in 0..patterns {
        let stimulus: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
        let seq = FaultSim::new(netlist, &view).detect(&stimulus, faults.faults());
        let par1 = detect_parallel(netlist, &view, &pool1, &stimulus, faults.faults());
        let par8 = detect_parallel(netlist, &view, &pool8, &stimulus, faults.faults());
        assert_eq!(seq, par1, "threads=1 diverged from plain detect");
        assert_eq!(seq, par8, "threads=8 diverged from plain detect");
        sets.push(seq);
    }
    sets
}

#[test]
fn fig1_detection_sets_are_thread_count_invariant() {
    let netlist = tvs_circuits::fig1();
    let sets = detection_sets(&netlist, 16);
    assert!(
        sets.iter().any(|s| s.iter().any(|&d| d)),
        "nothing detected on fig1"
    );
}

#[test]
fn synthetic_profile_detection_sets_are_thread_count_invariant() {
    // Large enough that the fault universe spans many 63-fault shards, so
    // the parallel path (not its small-input fallback) is exercised.
    let netlist = tvs_circuits::synthesize(
        "det",
        &tvs_circuits::SynthConfig {
            inputs: 6,
            outputs: 4,
            flip_flops: 12,
            gates: 220,
            seed: 42,
            depth_hint: None,
        },
    );
    assert!(FaultList::collapsed(&netlist).len() > 63 * 4);
    let sets = detection_sets(&netlist, 8);
    assert!(sets.iter().any(|s| s.iter().any(|&d| d)));
}
