//! Static pruning soundness: on every built-in profile, pre-classifying
//! structurally unobservable faults must be bit-identical to simulating
//! them — at one thread and at eight.
//!
//! The test set per profile is every statically-untestable fault (the
//! claim under test) plus a deterministic sample of the live ones (so the
//! scatter/gather of [`detect_pruned`] is exercised on mixed lists).

use tvs_circuits::all_profiles;
use tvs_exec::ThreadPool;
use tvs_fault::{detect_parallel, detect_pruned, Fault, FaultList, StaticPrune};
use tvs_logic::{BitVec, Prng};

#[test]
fn pruned_classification_matches_full_simulation_on_every_profile() {
    let mut rng = Prng::seed_from_u64(0x5CA0_2003);
    let pools = [ThreadPool::new(1), ThreadPool::new(8)];
    for profile in all_profiles() {
        let netlist = profile.build();
        let view = netlist.scan_view().expect("profiles carry scan chains");
        let list = FaultList::collapsed(&netlist);
        let prune = StaticPrune::new(&netlist);

        let (untestable, live): (Vec<&Fault>, Vec<&Fault>) =
            list.faults().iter().partition(|f| prune.is_untestable(f));
        let mut subset: Vec<Fault> = untestable.iter().map(|&&f| f).collect();
        let stride = (live.len() / 256).max(1);
        subset.extend(live.iter().step_by(stride).take(256).map(|&&f| f));

        for _ in 0..3 {
            let stimulus: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
            let mut runs = Vec::new();
            for pool in &pools {
                let full = detect_parallel(&netlist, &view, pool, &stimulus, &subset);
                let pruned = detect_pruned(&netlist, &view, pool, &stimulus, &subset, &prune);
                assert_eq!(
                    full,
                    pruned,
                    "{}: pruned classification diverged at {} threads",
                    profile.name,
                    pool.threads()
                );
                // Soundness: no statically-untestable fault is ever detected.
                for (i, f) in untestable.iter().enumerate() {
                    assert!(
                        !full[i],
                        "{}: statically-untestable {} detected by simulation",
                        profile.name,
                        f.display_in(&netlist)
                    );
                }
                runs.push(full);
            }
            assert_eq!(
                runs[0], runs[1],
                "{}: thread-count divergence",
                profile.name
            );
        }
    }
}
