//! Consistency checks of the fault simulator against first principles.
//!
//! Seeded randomized invariants (formerly proptest-based; rewritten as
//! deterministic loops so the workspace has no external test deps).

use tvs_circuits::{synthesize, SynthConfig};
use tvs_fault::{Fault, FaultList, FaultSim, SlotSpec, StuckAt};
use tvs_logic::{BitVec, Prng};

fn circuit(seed: u64) -> tvs_netlist::Netlist {
    synthesize(
        "fsim",
        &SynthConfig {
            inputs: 4,
            outputs: 3,
            flip_flops: 8,
            gates: 60,
            seed,
            depth_hint: None,
        },
    )
}

#[test]
fn batched_detection_equals_one_fault_per_sweep() {
    let mut meta = Prng::seed_from_u64(0xFA01);
    for _ in 0..20 {
        let seed = meta.next_u64() % 300;
        let pat = meta.next_u64() % 300;
        let netlist = circuit(seed);
        let view = netlist.scan_view().expect("valid");
        let faults = FaultList::collapsed(&netlist);
        let mut sim = FaultSim::new(&netlist, &view);
        let mut rng = Prng::seed_from_u64(pat);
        let stimulus: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();

        let batched = sim.detect(&stimulus, faults.faults());
        let good = sim.good_outputs(&stimulus);
        for (i, &fault) in faults.faults().iter().enumerate().step_by(11) {
            let outs = sim
                .run_slots(&[SlotSpec {
                    stimulus: &stimulus,
                    fault: Some(fault),
                }])
                .unwrap();
            assert_eq!(
                batched[i],
                outs[0] != good,
                "fault {} batch/single disagree",
                fault.display_in(&netlist)
            );
        }
    }
}

#[test]
fn fault_free_slot_is_unaffected_by_faulty_neighbours() {
    let mut meta = Prng::seed_from_u64(0xFA02);
    for _ in 0..20 {
        let seed = meta.next_u64() % 300;
        let netlist = circuit(seed);
        let view = netlist.scan_view().expect("valid");
        let faults = FaultList::collapsed(&netlist);
        let mut sim = FaultSim::new(&netlist, &view);
        let mut rng = Prng::seed_from_u64(seed ^ 0xF00);
        let stimulus: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();

        let clean = sim.good_outputs(&stimulus);
        let some: Vec<Fault> = faults.faults().iter().copied().take(20).collect();
        let mut slots = vec![SlotSpec {
            stimulus: &stimulus,
            fault: None,
        }];
        slots.extend(some.iter().map(|&f| SlotSpec {
            stimulus: &stimulus,
            fault: Some(f),
        }));
        let outs = sim.run_slots(&slots).unwrap();
        assert_eq!(&outs[0], &clean, "slot isolation violated");
    }
}

#[test]
fn coverage_is_monotone_in_the_pattern_set() {
    let mut meta = Prng::seed_from_u64(0xFA03);
    for _ in 0..20 {
        let seed = meta.next_u64() % 200;
        let netlist = circuit(seed);
        let view = netlist.scan_view().expect("valid");
        let faults = FaultList::collapsed(&netlist);
        let mut sim = FaultSim::new(&netlist, &view);
        let mut rng = Prng::seed_from_u64(seed + 7);
        let patterns: Vec<BitVec> = (0..12)
            .map(|_| (0..view.input_count()).map(|_| rng.next_bool()).collect())
            .collect();
        let few = sim.coverage(&patterns[..6], faults.faults());
        let all = sim.coverage(&patterns, faults.faults());
        for (i, (&a, &b)) in few.iter().zip(&all).enumerate() {
            assert!(!a || b, "fault {i} lost coverage when patterns were added");
        }
    }
}

#[test]
fn stem_fault_on_observed_signal_is_always_caught_when_excited() {
    // A stuck-at on a primary output's driver must be detected by any
    // pattern that sets the signal to the opposite value.
    let netlist = circuit(99);
    let view = netlist.scan_view().expect("valid");
    let mut sim = FaultSim::new(&netlist, &view);
    let mut rng = Prng::seed_from_u64(5);
    let po_driver = view.pos()[0];
    for _ in 0..32 {
        let stimulus: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
        let good = sim.good_outputs(&stimulus);
        let value = good.get(0);
        let fault = Fault::stem(po_driver, StuckAt::from(!value));
        assert!(
            sim.detect(&stimulus, &[fault])[0],
            "stuck-at-{} on an observed {}-valued PO missed",
            !value,
            value
        );
    }
}
