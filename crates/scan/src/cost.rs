//! Tester cost accounting: shift cycles and tester memory.
//!
//! Reproduces the accounting of the paper's §3 worked example (see DESIGN.md
//! §4): for the Figure 1 circuit the conventional scheme costs 15 shift
//! cycles / 24 memory bits, the stitched scheme 11 cycles / 17 bits.

use std::fmt;

/// Absolute costs of applying a test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TestCosts {
    /// Total shift cycles (the paper's test-application-time measure `t`
    /// before normalization).
    pub shift_cycles: u64,
    /// Total tester memory in bits: stimulus (PI + scan-in data) plus
    /// expected responses (observed scan-out + PO data).
    pub memory_bits: u64,
}

impl TestCosts {
    /// `self` as a fraction of `baseline`, as the `(m, t)` pair reported in
    /// the paper's tables: `(memory ratio, time ratio)`.
    pub fn ratios_vs(&self, baseline: &TestCosts) -> (f64, f64) {
        let m = self.memory_bits as f64 / baseline.memory_bits.max(1) as f64;
        let t = self.shift_cycles as f64 / baseline.shift_cycles.max(1) as f64;
        (m, t)
    }
}

impl fmt::Display for TestCosts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shift cycles, {} memory bits",
            self.shift_cycles, self.memory_bits
        )
    }
}

/// The cost model of one circuit's test interface.
///
/// # Examples
///
/// The paper's worked example (`L = 3`, no PIs/POs, 4 vectors):
///
/// ```
/// use tvs_scan::CostModel;
///
/// let model = CostModel { scan_len: 3, pi_count: 0, po_count: 0 };
/// let full = model.full_costs(4);
/// assert_eq!(full.shift_cycles, 15);
/// assert_eq!(full.memory_bits, 24);
///
/// // Stitched: full shift-in of 3, then three 2-bit stitches and a
/// // closing 2-bit flush that observes the last response.
/// let stitched = model.stitched_costs(&[3, 2, 2, 2], 2, 0);
/// assert_eq!(stitched.shift_cycles, 11);
/// assert_eq!(stitched.memory_bits, 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Scan chain length `L`.
    pub scan_len: usize,
    /// Primary input count `p` (applied in parallel, counted in memory only).
    pub pi_count: usize,
    /// Primary output count `q` (observed in parallel, counted in memory
    /// only).
    pub po_count: usize,
}

impl CostModel {
    /// Costs of the conventional full-shift scheme for `n` vectors:
    /// `time = L·(n+1)` (response shifts overlap the next stimulus, one
    /// final flush), `memory = n·(p + 2L + q)`.
    pub fn full_costs(&self, n: usize) -> TestCosts {
        let l = self.scan_len as u64;
        let n64 = n as u64;
        TestCosts {
            shift_cycles: l * (n64 + 1),
            memory_bits: n64 * (self.pi_count as u64 + 2 * l + self.po_count as u64),
        }
    }

    /// Costs of the stitched scheme.
    ///
    /// `shifts[i]` is the number of bits shifted in before applying vector
    /// `i + 1`; `shifts[0]` must equal the scan length (the first vector is
    /// a full shift-in). `final_flush` is the closing shift that observes
    /// the last response / remaining hidden-fault effects (the paper's §3
    /// example uses `k_N`; the engine computes the minimal sufficient
    /// flush). `extra_full` counts the fallback conventional vectors
    /// appended for the faults stitching could not cover.
    ///
    /// Accounting (paper §3; DESIGN.md §4): time is `Σ kᵢ` stimulus shifts,
    /// the closing flush, plus a full `L` in and (for the last one) `L` out
    /// per fallback vector. Memory counts stimulus bits, observed
    /// expected-response bits, and PI/PO data per applied vector.
    ///
    /// # Panics
    ///
    /// Panics if `shifts` is empty, `shifts[0] != scan_len`, or any shift
    /// or the flush exceeds the scan length.
    pub fn stitched_costs(
        &self,
        shifts: &[usize],
        final_flush: usize,
        extra_full: usize,
    ) -> TestCosts {
        assert!(!shifts.is_empty(), "at least one vector is required");
        assert_eq!(
            shifts[0], self.scan_len,
            "the first vector must be a full shift-in"
        );
        assert!(
            shifts.iter().all(|&k| k <= self.scan_len) && final_flush <= self.scan_len,
            "shift sizes cannot exceed the scan length"
        );
        let l = self.scan_len as u64;
        let (p, q) = (self.pi_count as u64, self.po_count as u64);
        let ex = extra_full as u64;
        let n = shifts.len() as u64;

        let stimulus: u64 = shifts.iter().map(|&k| k as u64).sum();
        // Response i is observed while vector i+1 shifts in (k_{i+1} bits);
        // the last stitched response is observed by the closing flush.
        let observed: u64 =
            shifts.iter().skip(1).map(|&k| k as u64).sum::<u64>() + final_flush as u64;

        // Fallback vectors each cost a full L shift-in (which also observes
        // the previous fallback response) plus one final L flush.
        let fallback_cycles = if extra_full > 0 { (ex + 1) * l } else { 0 };
        let shift_cycles = stimulus + final_flush as u64 + fallback_cycles;

        let memory_bits = stimulus + observed + n * (p + q) + ex * (p + 2 * l + q);

        TestCosts {
            shift_cycles,
            memory_bits,
        }
    }

    /// The paper's *info* ratio for a `k`-bit shift: the fraction of
    /// per-cycle specified data relative to full shifting,
    /// `(p + k) / (p + L)`.
    pub fn info_ratio(&self, k: usize) -> f64 {
        (self.pi_count + k) as f64 / (self.pi_count + self.scan_len) as f64
    }

    /// Solves the info ratio for `k`: the shift size whose info ratio is
    /// closest to `target` from below, or `None` when even `k = 1` exceeds
    /// the target (the paper's `/` entries in Table 2).
    pub fn shift_for_info(&self, target: f64) -> Option<usize> {
        let k =
            (target * (self.pi_count + self.scan_len) as f64 - self.pi_count as f64).floor() as i64;
        if k < 1 {
            None
        } else {
            Some((k as usize).min(self.scan_len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: CostModel = CostModel {
        scan_len: 3,
        pi_count: 0,
        po_count: 0,
    };

    #[test]
    fn paper_worked_example() {
        let full = FIG1.full_costs(4);
        assert_eq!(full.shift_cycles, 15);
        assert_eq!(full.memory_bits, 24);
        let st = FIG1.stitched_costs(&[3, 2, 2, 2], 2, 0);
        assert_eq!(st.shift_cycles, 11);
        assert_eq!(st.memory_bits, 17);
        let (m, t) = st.ratios_vs(&full);
        assert!((t - 11.0 / 15.0).abs() < 1e-12);
        assert!((m - 17.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn all_full_shifts_match_baseline_time() {
        // Stitching with k = L everywhere degenerates to the conventional
        // scheme's shift count.
        let model = CostModel {
            scan_len: 5,
            pi_count: 2,
            po_count: 1,
        };
        let st = model.stitched_costs(&[5, 5, 5], 5, 0);
        let full = model.full_costs(3);
        assert_eq!(st.shift_cycles, full.shift_cycles);
    }

    #[test]
    fn fallback_vectors_cost_full_shifts() {
        let model = CostModel {
            scan_len: 4,
            pi_count: 0,
            po_count: 0,
        };
        let without = model.stitched_costs(&[4, 2], 2, 0);
        let with = model.stitched_costs(&[4, 2], 2, 2);
        // two fallback vectors: 2·L shift-ins plus the final L flush.
        assert_eq!(with.shift_cycles - without.shift_cycles, 3 * 4);
        assert!(with.memory_bits > without.memory_bits);
    }

    #[test]
    fn info_ratio_and_inverse() {
        let model = CostModel {
            scan_len: 21,
            pi_count: 3,
            po_count: 6,
        };
        // 5/8 of 24 = 15 -> k = 12? (3+k)/24 = 0.625 -> k = 12.
        assert_eq!(model.shift_for_info(0.625), Some(12));
        assert!((model.info_ratio(12) - 0.625).abs() < 1e-12);
        // PI-heavy profile cannot reach a tiny ratio.
        let heavy = CostModel {
            scan_len: 19,
            pi_count: 35,
            po_count: 24,
        };
        assert_eq!(heavy.shift_for_info(3.0 / 8.0), None);
    }

    #[test]
    #[should_panic(expected = "full shift-in")]
    fn first_vector_must_be_full() {
        FIG1.stitched_costs(&[2, 2], 2, 0);
    }
}
