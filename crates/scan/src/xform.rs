//! Capture and observation transforms (the paper's VXOR and HXOR schemes).

use tvs_logic::BitVec;

/// What lands in the scan chain when the circuit captures its response.
///
/// * [`Plain`](CaptureTransform::Plain) — the raw response, as in
///   conventional scan.
/// * [`VerticalXor`](CaptureTransform::VerticalXor) — response ⊕ the test
///   vector currently in the chain (paper §6.2, Fig. 3). A hidden fault's
///   differentiating bits survive capture unless
///   `R_f ⊕ T_f = R_good ⊕ T_good`, which preserves fault effects that the
///   plain scheme would overwrite. Hardware cost: one XOR per scan cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CaptureTransform {
    /// Conventional capture: the chain holds the raw response.
    #[default]
    Plain,
    /// Vertical XOR: the chain holds `response ⊕ applied vector`.
    VerticalXor,
}

impl CaptureTransform {
    /// Computes the chain image after capture, given the vector that was in
    /// the chain (`applied`) and the circuit's `response`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn capture(self, applied: &BitVec, response: &BitVec) -> BitVec {
        match self {
            CaptureTransform::Plain => response.clone(),
            CaptureTransform::VerticalXor => {
                let mut image = response.clone();
                image.xor_with(applied);
                image
            }
        }
    }

    /// Number of extra XOR gates this scheme costs for a chain of `len`
    /// cells.
    pub fn hardware_cost(self, len: usize) -> usize {
        match self {
            CaptureTransform::Plain => 0,
            CaptureTransform::VerticalXor => len,
        }
    }
}

/// What the tester sees per shift tick at the scan-out pin.
///
/// * [`Direct`](ObserveTransform::Direct) — the last cell, as in
///   conventional scan.
/// * [`HorizontalXor`](ObserveTransform::HorizontalXor)`(g)` — the XOR of
///   `g` equally spaced cells (paper §6.2, Fig. 4). Shifting `len / g` bits
///   passes every cell through some tap, so most hidden faults become
///   observable at a fraction of the shift cost. Hardware cost: `g - 1` XOR
///   gates total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObserveTransform {
    /// Conventional observation of the scan-out cell.
    #[default]
    Direct,
    /// XOR of `g` equally spaced cells.
    HorizontalXor(usize),
}

impl ObserveTransform {
    /// The tapped cell positions for a chain of `len` cells, nearest the
    /// scan-out pin first.
    ///
    /// For `HorizontalXor(g)` the taps are at `len-1, len-1-s, len-1-2s, …`
    /// with spacing `s = ceil(len / g)`, matching the paper's Fig. 4 layout
    /// (6 cells, 3 taps → cells *b*, *d*, *f*).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`, or for `HorizontalXor(g)` with `g == 0`.
    pub fn taps(self, len: usize) -> Vec<usize> {
        assert!(len > 0, "chain length must be positive");
        match self {
            ObserveTransform::Direct => vec![len - 1],
            ObserveTransform::HorizontalXor(g) => {
                assert!(g > 0, "horizontal XOR needs at least one tap");
                let spacing = len.div_ceil(g);
                (0..g)
                    .map_while(|t| (len - 1).checked_sub(t * spacing))
                    .collect()
            }
        }
    }

    /// Number of extra XOR gates this scheme costs.
    pub fn hardware_cost(self) -> usize {
        match self {
            ObserveTransform::Direct => 0,
            ObserveTransform::HorizontalXor(g) => g.saturating_sub(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScanChain;

    #[test]
    fn plain_capture_is_response() {
        let applied = BitVec::from_bools([true, false, true]);
        let response = BitVec::from_bools([false, false, true]);
        assert_eq!(
            CaptureTransform::Plain.capture(&applied, &response),
            response
        );
    }

    #[test]
    fn vertical_xor_folds_in_applied_vector() {
        // Fig. 3 semantics: image = R ⊕ T.
        let applied = BitVec::from_bools([true, false, true, true]);
        let response = BitVec::from_bools([true, true, false, true]);
        let image = CaptureTransform::VerticalXor.capture(&applied, &response);
        assert_eq!(image.to_string(), "0110");
    }

    #[test]
    fn vertical_xor_preserves_effect_unless_aligned() {
        // A hidden fault with R_f != R_good survives capture iff
        // R_f ^ T_f != R_good ^ T_good — the paper's elimination condition.
        let t_good = BitVec::from_bools([false, false]);
        let r_good = BitVec::from_bools([true, false]);
        // Case 1: differing response, same vector -> effect survives.
        let r_f = BitVec::from_bools([true, true]);
        assert_ne!(
            CaptureTransform::VerticalXor.capture(&t_good, &r_f),
            CaptureTransform::VerticalXor.capture(&t_good, &r_good),
        );
        // Case 2: response and vector differ in the same bit -> aligned,
        // effect erased.
        let t_f = BitVec::from_bools([false, true]);
        assert_eq!(
            CaptureTransform::VerticalXor.capture(&t_f, &r_f),
            CaptureTransform::VerticalXor.capture(&t_good, &r_good),
        );
    }

    #[test]
    fn hxor_taps_match_fig4() {
        // 6 cells a..f (a = position 0), 3 taps: f, d, b = 5, 3, 1.
        assert_eq!(ObserveTransform::HorizontalXor(3).taps(6), vec![5, 3, 1]);
        assert_eq!(ObserveTransform::Direct.taps(6), vec![5]);
    }

    #[test]
    fn hxor_observed_stream_matches_fig4() {
        // Fig. 4: data scanned out is (b^d^f) then (a^c^e).
        let chain = ScanChain::new(6);
        let a = false;
        let b = true;
        let c = false;
        let d = false;
        let e = true;
        let f = true;
        let image = BitVec::from_bools([a, b, c, d, e, f]);
        let out = chain.shift(
            &image,
            &BitVec::zeros(2),
            ObserveTransform::HorizontalXor(3),
        );
        assert_eq!(out.observed.get(0), b ^ d ^ f);
        assert_eq!(out.observed.get(1), a ^ c ^ e);
    }

    #[test]
    fn hxor_taps_never_underflow_on_short_chains() {
        // More taps than cells: extra taps simply vanish.
        let taps = ObserveTransform::HorizontalXor(5).taps(3);
        assert_eq!(taps, vec![2, 1, 0]);
    }

    #[test]
    fn hardware_costs() {
        assert_eq!(CaptureTransform::Plain.hardware_cost(100), 0);
        assert_eq!(CaptureTransform::VerticalXor.hardware_cost(100), 100);
        assert_eq!(ObserveTransform::Direct.hardware_cost(), 0);
        assert_eq!(ObserveTransform::HorizontalXor(3).hardware_cost(), 2);
    }
}
