//! Partial-shift scan chain mechanics.

use tvs_logic::BitVec;

use crate::ObserveTransform;

/// Result of a partial shift: what the tester observed and the chain's new
/// contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftOutcome {
    /// Bits seen at the scan-out pin, in the order they appeared
    /// (`observed[0]` left the chain first).
    pub observed: BitVec,
    /// The chain image after the shift.
    pub new_image: BitVec,
}

/// A scan chain of fixed length with partial-shift semantics.
///
/// Cell numbering follows the toolkit convention: position 0 is the scan-in
/// side, position `len - 1` the scan-out side. One shift tick moves every
/// cell one position toward the output, emits the cell at `len - 1` and
/// loads the next incoming bit into cell 0. Shifting `k < len` bits is the
/// paper's *stitching* move: the surviving `len - k` response bits end up in
/// positions `k ..= len - 1` and become the pinned part of the next test
/// vector.
///
/// # Examples
///
/// The paper's §3 walk-through (chain `a b c` holding the response `111`,
/// shift 2 bits `00` in):
///
/// ```
/// use tvs_logic::BitVec;
/// use tvs_scan::{ObserveTransform, ScanChain};
///
/// let chain = ScanChain::new(3);
/// let image = BitVec::from_bools([true, true, true]);
/// let incoming = BitVec::from_bools([false, false]);
/// let out = chain.shift(&image, &incoming, ObserveTransform::Direct);
/// assert_eq!(out.new_image.to_string(), "001"); // next test vector
/// assert_eq!(out.observed.to_string(), "11");   // c then b left the chain
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanChain {
    length: usize,
}

impl ScanChain {
    /// Creates a chain of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "scan chain length must be positive");
        ScanChain { length }
    }

    /// The chain length.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Shifts `incoming.len()` bits through the chain, observing through the
    /// given transform. `incoming[0]` enters first (and therefore ends up
    /// deepest, at position `incoming.len() - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `image.len() != length` or `incoming.len() > length`.
    pub fn shift(
        &self,
        image: &BitVec,
        incoming: &BitVec,
        observe: ObserveTransform,
    ) -> ShiftOutcome {
        assert_eq!(image.len(), self.length, "chain image length mismatch");
        let k = incoming.len();
        assert!(
            k <= self.length,
            "cannot shift more bits than the chain holds"
        );

        // Fast path for direct observation: the emitted stream is the last
        // `k` cells (scan-out end first) and the new image is the retained
        // prefix slid by `k` — no per-tick state walk needed.
        if observe == ObserveTransform::Direct {
            let observed: BitVec = (0..k).map(|t| image.get(self.length - 1 - t)).collect();
            let mut new_image = BitVec::zeros(self.length);
            for p in 0..self.length - k {
                new_image.set(p + k, image.get(p));
            }
            for (t, bit) in incoming.iter().enumerate() {
                new_image.set(k - 1 - t, bit);
            }
            return ShiftOutcome {
                observed,
                new_image,
            };
        }

        let taps = observe.taps(self.length);
        let mut cur = image.clone();
        let mut observed = BitVec::new();
        for t in 0..k {
            // Observe before the tick (the scan-out pin sees the current
            // state of the tapped cells).
            let bit = taps.iter().fold(false, |acc, &p| acc ^ cur.get(p));
            observed.push(bit);
            // Tick: everything moves one toward the output.
            let mut next = BitVec::zeros(self.length);
            for p in (1..self.length).rev() {
                next.set(p, cur.get(p - 1));
            }
            next.set(0, incoming.get(t));
            cur = next;
        }
        ShiftOutcome {
            observed,
            new_image: cur,
        }
    }

    /// The positions whose contents would be observed by a `k`-bit shift
    /// under direct observation: the `k` cells nearest the scan-out pin.
    pub fn observed_range(&self, k: usize) -> std::ops::Range<usize> {
        self.length - k..self.length
    }

    /// The positions that survive a `k`-bit shift (the pinned part of the
    /// next vector): after the shift, old position `p` occupies `p + k`.
    pub fn retained_range(&self, k: usize) -> std::ops::Range<usize> {
        0..self.length - k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_logic::Prng;

    #[test]
    fn full_shift_replaces_everything() {
        let chain = ScanChain::new(4);
        let image = BitVec::from_bools([true, false, true, false]);
        let incoming = BitVec::from_bools([false, true, true, false]);
        let out = chain.shift(&image, &incoming, ObserveTransform::Direct);
        // observed: positions 3,2,1,0 of the old image
        assert_eq!(out.observed.to_string(), "0101");
        // incoming[0] entered first -> deepest (position 3)
        assert_eq!(out.new_image.to_string(), "0110");
    }

    #[test]
    fn paper_walkthrough_sequence() {
        // §3: TV1 110 -> R 111; shift "00" -> TV2 001; R 010; shift "10" ->
        // TV3 100; R 000; shift "01" -> TV4 010. The paper prints incoming
        // bits in final-position order (cell a first); the API takes them in
        // entry order (the bit that ends deepest enters first), hence the
        // reversal in the `inc` column.
        let chain = ScanChain::new(3);
        let steps = [
            ("111", "00", "001", "11"),
            ("010", "01", "100", "01"),
            ("000", "10", "010", "00"),
        ];
        for (resp, inc, next_tv, obs) in steps {
            let image: BitVec = resp.chars().map(|c| c == '1').collect();
            let incoming: BitVec = inc.chars().map(|c| c == '1').collect();
            let out = chain.shift(&image, &incoming, ObserveTransform::Direct);
            assert_eq!(out.new_image.to_string(), next_tv, "response {resp}");
            assert_eq!(out.observed.to_string(), obs, "response {resp}");
        }
    }

    #[test]
    fn zero_bit_shift_is_identity() {
        let chain = ScanChain::new(3);
        let image = BitVec::from_bools([true, false, true]);
        let out = chain.shift(&image, &BitVec::new(), ObserveTransform::Direct);
        assert_eq!(out.new_image, image);
        assert!(out.observed.is_empty());
    }

    #[test]
    fn ranges_partition_the_chain() {
        let chain = ScanChain::new(10);
        assert_eq!(chain.observed_range(3), 7..10);
        assert_eq!(chain.retained_range(3), 0..7);
    }

    #[test]
    #[should_panic(expected = "more bits than the chain")]
    fn over_shift_panics() {
        let chain = ScanChain::new(2);
        chain.shift(
            &BitVec::zeros(2),
            &BitVec::zeros(3),
            ObserveTransform::Direct,
        );
    }

    // Seeded randomized invariants (formerly proptest-based; rewritten as
    // deterministic loops so the workspace has no external test deps).

    #[test]
    fn direct_observation_matches_observed_range() {
        let mut rng = Prng::seed_from_u64(0x5CA1);
        for _ in 0..256 {
            let len = rng.gen_range(1..24);
            let k = rng.gen_range(0..len + 1);
            let image: BitVec = (0..len).map(|_| rng.next_bool()).collect();
            let chain = ScanChain::new(len);
            let incoming = BitVec::zeros(k);
            let out = chain.shift(&image, &incoming, ObserveTransform::Direct);
            // Direct observation emits exactly the cells of observed_range,
            // scan-out end first.
            let expect: Vec<bool> = chain
                .observed_range(k)
                .rev()
                .map(|p| image.get(p))
                .collect();
            assert_eq!(out.observed.iter().collect::<Vec<_>>(), expect);
            // Retained cells slide by k.
            for p in chain.retained_range(k) {
                assert_eq!(out.new_image.get(p + k), image.get(p));
            }
        }
    }

    #[test]
    fn two_partial_shifts_equal_one_combined_shift() {
        let mut rng = Prng::seed_from_u64(0x5CA2);
        for _ in 0..256 {
            let len = rng.gen_range(2..20);
            let k1 = rng.gen_range(0..len + 1);
            let k2 = rng.gen_range(0..len - k1 + 1);
            let bits: Vec<bool> = (0..len).map(|_| rng.next_bool()).collect();
            let inc: Vec<bool> = (0..len).map(|_| rng.next_bool()).collect();

            let chain = ScanChain::new(len);
            let image: BitVec = bits.iter().copied().collect();
            let all_in: BitVec = inc.iter().copied().take(k1 + k2).collect();
            let in1: BitVec = inc.iter().copied().take(k1).collect();
            let in2: BitVec = inc.iter().copied().skip(k1).take(k2).collect();

            let combined = chain.shift(&image, &all_in, ObserveTransform::Direct);
            let step1 = chain.shift(&image, &in1, ObserveTransform::Direct);
            let step2 = chain.shift(&step1.new_image, &in2, ObserveTransform::Direct);

            assert_eq!(step2.new_image, combined.new_image);
            let mut obs = step1.observed.clone();
            obs.extend(step2.observed.iter());
            assert_eq!(obs, combined.observed);
        }
    }
}
