//! Scan-chain mechanics and tester cost accounting for the TVS DFT toolkit.
//!
//! * [`ScanChain`] — partial-shift semantics: shifting `k` bits observes the
//!   `k` cells nearest the scan-out pin, slides the retained `L - k` cells
//!   toward the output and fills the scan-in side with fresh bits;
//! * [`CaptureTransform`] — what lands in the chain at capture: the raw
//!   response (`Plain`) or response ⊕ previous-content (`VerticalXor`,
//!   the paper's VXOR scheme, Fig. 3);
//! * [`ObserveTransform`] — what the tester sees per shifted bit: the raw
//!   cell (`Direct`) or the XOR of `g` equally spaced cells
//!   (`HorizontalXor`, the paper's HXOR scheme, Fig. 4);
//! * [`CostModel`] — shift-cycle and tester-memory accounting reproducing
//!   the paper's §3 worked example (`t` and `m` ratios of Tables 2–5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod cost;
mod xform;

pub use chain::{ScanChain, ShiftOutcome};
pub use cost::{CostModel, TestCosts};
pub use xform::{CaptureTransform, ObserveTransform};
