//! Malformed-input corpus for the `.bench` parser: every defect must surface
//! as a typed [`NetlistError`] — with a source line wherever the defect is
//! attributable to one — and must never panic.

use tvs_netlist::{bench, NetlistError};

fn parse(text: &str) -> Result<tvs_netlist::Netlist, NetlistError> {
    bench::parse("corpus", text)
}

#[test]
fn truncated_file_mid_expression() {
    // The file ends in the middle of a gate expression.
    let e = parse("INPUT(a)\nOUTPUT(y)\ny = AND(a,").unwrap_err();
    match e {
        NetlistError::Parse { line, ref message } => {
            assert_eq!(line, 3);
            assert!(
                message.contains(")"),
                "points at the missing paren: {message}"
            );
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn truncated_file_mid_keyword() {
    let e = parse("INPUT(a)\nOUTP").unwrap_err();
    assert!(
        matches!(e, NetlistError::Parse { line: 2, .. }),
        "got {e:?}"
    );
}

#[test]
fn duplicate_net_definition_carries_the_line() {
    let e = parse("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = AND(a, a)\n").unwrap_err();
    match e {
        NetlistError::Parse { line, ref message } => {
            assert_eq!(line, 4, "the second definition is the defect");
            assert!(message.contains('y'), "names the signal: {message}");
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn duplicate_input_declaration_carries_the_line() {
    let e = parse("INPUT(a)\nINPUT(a)\n").unwrap_err();
    assert!(
        matches!(e, NetlistError::Parse { line: 2, .. }),
        "got {e:?}"
    );
}

#[test]
fn unknown_gate_kind_carries_the_line() {
    let e = parse("INPUT(a)\nINPUT(b)\ny = XNOR3(a, b, a)\n").unwrap_err();
    match e {
        NetlistError::Parse { line, ref message } => {
            assert_eq!(line, 3);
            assert!(message.contains("XNOR3"), "names the keyword: {message}");
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn self_referential_dff_carries_the_line() {
    let e = parse("INPUT(a)\nOUTPUT(q)\nq = DFF(q)\n").unwrap_err();
    match e {
        NetlistError::Parse { line, ref message } => {
            assert_eq!(line, 3);
            assert!(message.contains("feeds itself"), "{message}");
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn undefined_signal_is_typed_but_file_scoped() {
    // Only detectable after the whole file is read, so no line — but still a
    // typed error, not a panic.
    let e = parse("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n").unwrap_err();
    assert!(
        matches!(e, NetlistError::UndefinedSignal(ref s) if s == "ghost"),
        "got {e:?}"
    );
}

#[test]
fn duplicate_output_declaration_carries_the_line() {
    // Found by the bench fuzz target: two `OUTPUT(y)` lines used to produce
    // a netlist with two identical primary outputs, silently inflating the
    // PO count on round-trip.
    let e = parse("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n").unwrap_err();
    match e {
        NetlistError::Parse { line, ref message } => {
            assert_eq!(line, 3, "the second declaration is the defect");
            assert!(message.contains("duplicate OUTPUT"), "{message}");
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn unterminated_paren_carries_the_line() {
    let e = parse("INPUT(a)\nOUTPUT(y)\ny = NAND(a, a\n").unwrap_err();
    match e {
        NetlistError::Parse { line, ref message } => {
            assert_eq!(line, 3);
            assert!(message.contains(')'), "points at the paren: {message}");
        }
        other => panic!("expected a located parse error, got {other:?}"),
    }
}

#[test]
fn non_ascii_identifiers_are_rejected_with_a_line() {
    // Smart quotes, accents and zero-width characters are all refused so an
    // admitted netlist survives byte-oriented tooling unchanged.
    for (text, line) in [
        ("INPUT(caf\u{e9})\n", 1),
        ("INPUT(a)\nOUTPUT(\u{201c}y\u{201d})\n", 2),
        ("INPUT(a)\ny\u{200b} = NOT(a)\n", 2),
        ("INPUT(a)\nOUTPUT(y)\ny = NOT(\u{0430})\n", 3), // Cyrillic а
    ] {
        let e = parse(text).unwrap_err();
        match e {
            NetlistError::Parse {
                line: found,
                ref message,
            } => {
                assert_eq!(found, line, "for {text:?}");
                assert!(message.contains("identifier"), "{message}");
            }
            other => panic!("expected a located parse error for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn empty_identifiers_are_rejected_with_a_line() {
    for (text, line) in [("INPUT()\n", 1), ("INPUT(a)\nOUTPUT( )\n", 2)] {
        let e = parse(text).unwrap_err();
        assert!(
            matches!(e, NetlistError::Parse { line: found, .. } if found == line),
            "for {text:?}: got {e:?}"
        );
    }
}

#[test]
fn zero_input_gates_carry_the_line() {
    for (text, line) in [
        ("INPUT(a)\nOUTPUT(y)\ny = AND()\n", 3),
        ("INPUT(a)\nOUTPUT(y)\ny = NOT()\n", 3),
        ("y = DFF()\n", 1),
        ("INPUT(a)\ny = OR(,)\n", 2),
    ] {
        let e = parse(text).unwrap_err();
        assert!(
            matches!(e, NetlistError::Parse { line: found, .. } if found == line),
            "for {text:?}: got {e:?}"
        );
    }
}

#[test]
fn corpus_never_panics() {
    // A grab-bag of hostile inputs: each must return *some* Err, never abort.
    let corpus = [
        "",
        "\n\n\n",
        "=",
        "y =",
        "= NOT(a)",
        "y = (a)",
        "y = NOT a",
        "INPUT",
        "INPUT()",
        "OUTPUT(()",
        "y = DFF()",
        "y = DFF(a, b, c)",
        "q = DFF(q)",
        "y = AND(,,,)",
        "INPUT(a)\ny = NOT(a)\ny = NOT(y)",
        "\u{0}\u{0}\u{0}",
        "y = NOT(\u{201c}a\u{201d})",
    ];
    for text in corpus {
        match parse(text) {
            // Some corpus entries parse to empty-but-valid circuits; fine.
            Ok(_) => {}
            Err(e) => {
                let _ = e.to_string(); // Display must not panic either
            }
        }
    }
}
