//! Incremental netlist construction with forward references.

use std::collections::BTreeMap;

use crate::{Gate, GateId, GateKind, Netlist, NetlistError};

/// Builds a [`Netlist`] incrementally, resolving signal names at
/// [`build`](NetlistBuilder::build) time.
///
/// Forward references are allowed — a gate may name fanins that are defined
/// later, exactly as in a `.bench` file. Declaration order fixes the PI, PO
/// and scan-chain orders.
///
/// # Examples
///
/// ```
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("half-adder");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("sum", GateKind::Xor, &["a", "b"])?;
/// b.add_gate("carry", GateKind::And, &["a", "b"])?;
/// b.mark_output("sum")?;
/// b.mark_output("carry")?;
/// let netlist = b.build()?;
/// assert_eq!(netlist.gate_count(), 4);
/// # Ok::<(), tvs_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    /// (signal name, kind, fanin names); fanins resolved in `build`.
    defs: Vec<(String, GateKind, Vec<String>)>,
    by_name: BTreeMap<String, usize>,
    inputs: Vec<usize>,
    output_names: Vec<String>,
    dffs: Vec<usize>,
}

impl NetlistBuilder {
    /// Creates a builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            defs: Vec::new(),
            by_name: BTreeMap::new(),
            inputs: Vec::new(),
            output_names: Vec::new(),
            dffs: Vec::new(),
        }
    }

    fn define(
        &mut self,
        signal: &str,
        kind: GateKind,
        fanin: Vec<String>,
    ) -> Result<usize, NetlistError> {
        if self.by_name.contains_key(signal) {
            return Err(NetlistError::DuplicateSignal(signal.to_owned()));
        }
        let idx = self.defs.len();
        self.by_name.insert(signal.to_owned(), idx);
        self.defs.push((signal.to_owned(), kind, fanin));
        Ok(idx)
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if the name is taken.
    pub fn add_input(&mut self, signal: &str) -> Result<(), NetlistError> {
        let idx = self.define(signal, GateKind::Input, Vec::new())?;
        self.inputs.push(idx);
        Ok(())
    }

    /// Declares a D flip-flop whose data input is the signal `d`.
    ///
    /// Flip-flops join the scan chain in declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if the name is taken.
    pub fn add_dff(&mut self, signal: &str, d: &str) -> Result<(), NetlistError> {
        let idx = self.define(signal, GateKind::Dff, vec![d.to_owned()])?;
        self.dffs.push(idx);
        Ok(())
    }

    /// Declares a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if the name is taken, or
    /// [`NetlistError::BadArity`] if the fanin count is invalid for the kind
    /// (1 for `BUF`/`NOT`, at least 1 otherwise).
    pub fn add_gate(
        &mut self,
        signal: &str,
        kind: GateKind,
        fanin: &[&str],
    ) -> Result<(), NetlistError> {
        let ok = match kind {
            GateKind::Buf | GateKind::Not => fanin.len() == 1,
            GateKind::Input | GateKind::Dff => false,
            _ => !fanin.is_empty(),
        };
        if !ok {
            return Err(NetlistError::BadArity {
                signal: signal.to_owned(),
                kind,
                found: fanin.len(),
            });
        }
        self.define(signal, kind, fanin.iter().map(|&s| s.to_owned()).collect())?;
        Ok(())
    }

    /// Marks a signal as a primary output. The signal may be defined later.
    /// Marking the same signal twice is idempotent — outputs are a set, and
    /// the `.bench` writer/parser pair relies on each `OUTPUT` being unique.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` for future-proofing and
    /// interface symmetry.
    pub fn mark_output(&mut self, signal: &str) -> Result<(), NetlistError> {
        if !self.output_names.iter().any(|n| n == signal) {
            self.output_names.push(signal.to_owned());
        }
        Ok(())
    }

    /// Resolves all names and produces the validated [`Netlist`].
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UndefinedSignal`] — a fanin name was never defined;
    /// * [`NetlistError::UndefinedOutput`] — an output name was never defined;
    /// * [`NetlistError::CombinationalCycle`] — the combinational core is
    ///   cyclic (detected via [`Netlist::scan_view`]).
    pub fn build(self) -> Result<Netlist, NetlistError> {
        let mut gates = Vec::with_capacity(self.defs.len());
        let mut names = Vec::with_capacity(self.defs.len());
        for (signal, kind, fanin_names) in &self.defs {
            let mut fanin = Vec::with_capacity(fanin_names.len());
            for fname in fanin_names {
                let idx = self
                    .by_name
                    .get(fname)
                    .ok_or_else(|| NetlistError::UndefinedSignal(fname.clone()))?;
                fanin.push(GateId::from_index(*idx));
            }
            gates.push(Gate { kind: *kind, fanin });
            names.push(signal.clone());
        }

        let mut outputs = Vec::with_capacity(self.output_names.len());
        for oname in &self.output_names {
            let idx = self
                .by_name
                .get(oname)
                .ok_or_else(|| NetlistError::UndefinedOutput(oname.clone()))?;
            outputs.push(GateId::from_index(*idx));
        }

        let mut fanout: Vec<Vec<(GateId, u32)>> = vec![Vec::new(); gates.len()];
        for (gi, gate) in gates.iter().enumerate() {
            for (pin, &src) in gate.fanin.iter().enumerate() {
                fanout[src.index()].push((GateId::from_index(gi), pin as u32));
            }
        }

        let netlist = Netlist {
            name: self.name,
            gates,
            names,
            by_name: self
                .by_name
                .into_iter()
                .map(|(k, v)| (k, GateId::from_index(v)))
                .collect(),
            inputs: self.inputs.into_iter().map(GateId::from_index).collect(),
            outputs,
            dffs: self.dffs.into_iter().map(GateId::from_index).collect(),
            fanout,
        };
        // Validate acyclicity of the combinational core up front so that a
        // successfully built netlist can always be levelized.
        netlist.scan_view()?;
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = NetlistBuilder::new("fwd");
        b.add_gate("y", GateKind::Not, &["x"]).unwrap();
        b.add_input("x").unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        assert_eq!(
            n.gate(n.find("y").unwrap()).fanin(),
            &[n.find("x").unwrap()]
        );
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut b = NetlistBuilder::new("dup");
        b.add_input("x").unwrap();
        assert_eq!(
            b.add_input("x"),
            Err(NetlistError::DuplicateSignal("x".into()))
        );
    }

    #[test]
    fn undefined_fanin_rejected() {
        let mut b = NetlistBuilder::new("und");
        b.add_gate("y", GateKind::Not, &["nope"]).unwrap();
        b.mark_output("y").unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::UndefinedSignal("nope".into())
        );
    }

    #[test]
    fn undefined_output_rejected() {
        let mut b = NetlistBuilder::new("und");
        b.add_input("x").unwrap();
        b.mark_output("ghost").unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            NetlistError::UndefinedOutput("ghost".into())
        );
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = NetlistBuilder::new("ar");
        assert!(matches!(
            b.add_gate("y", GateKind::Not, &["a", "b"]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            b.add_gate("z", GateKind::And, &[]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut b = NetlistBuilder::new("cyc");
        b.add_gate("a", GateKind::Not, &["b"]).unwrap();
        b.add_gate("b", GateKind::Not, &["a"]).unwrap();
        b.mark_output("a").unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            NetlistError::CombinationalCycle(_)
        ));
    }

    #[test]
    fn sequential_loop_through_dff_is_fine() {
        let mut b = NetlistBuilder::new("seq");
        b.add_dff("q", "d").unwrap();
        b.add_gate("d", GateKind::Not, &["q"]).unwrap();
        b.mark_output("q").unwrap();
        assert!(b.build().is_ok());
    }
}
