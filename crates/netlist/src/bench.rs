//! ISCAS89 `.bench` format reader and writer.
//!
//! The `.bench` format is the lingua franca of the ISCAS85/89 benchmark
//! suites used by the paper:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NAND(G0, G5)
//! G17 = NOT(G10)
//! ```
//!
//! # Examples
//!
//! ```
//! let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
//! let netlist = tvs_netlist::bench::parse("inv", text)?;
//! assert_eq!(netlist.gate_count(), 2);
//! let round_trip = tvs_netlist::bench::to_string(&netlist);
//! assert_eq!(tvs_netlist::bench::parse("inv", &round_trip)?.gate_count(), 2);
//! # Ok::<(), tvs_netlist::NetlistError>(())
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::{GateKind, Netlist, NetlistBuilder, NetlistError};

/// Parses ISCAS89 `.bench` text into a [`Netlist`].
///
/// Blank lines and `#` comments are skipped. Keywords are case-insensitive.
/// Signal identifiers must be non-empty printable ASCII without structural
/// characters (`(`, `)`, `,`, `=`, `#`), and a signal may be declared
/// `OUTPUT` at most once.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] — always carrying the 1-based source
/// line — for malformed lines *and* for per-line structural defects the
/// builder reports (duplicate or self-referential definitions). Defects only
/// detectable once the whole file is read (undefined signals, combinational
/// cycles) surface as the corresponding builder errors without a line.
pub fn parse(name: &str, text: &str) -> Result<Netlist, NetlistError> {
    let mut builder = NetlistBuilder::new(name);
    let mut outputs_seen = BTreeSet::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        parse_line(&mut builder, &mut outputs_seen, lineno + 1, line)?;
    }
    builder.build()
}

/// Validates a signal identifier: non-empty printable ASCII with no
/// whitespace and none of the characters the grammar itself uses. The
/// grammar's own splitting means structural characters mostly cannot reach
/// here, but rejecting them explicitly keeps the rule self-contained — and
/// non-ASCII names are refused outright so every admitted netlist
/// round-trips through byte-oriented tooling unchanged.
fn check_ident(lineno: usize, name: &str, role: &str) -> Result<(), NetlistError> {
    let bad = |message: String| NetlistError::Parse {
        line: lineno,
        message,
    };
    if name.is_empty() {
        return Err(bad(format!("empty {role} identifier")));
    }
    if let Some(c) = name
        .chars()
        .find(|&c| !c.is_ascii_graphic() || "(),=#".contains(c))
    {
        return Err(bad(format!(
            "invalid character {c:?} in {role} identifier {name:?}: \
             identifiers are printable ASCII without `(),=#`"
        )));
    }
    Ok(())
}

fn parse_line(
    builder: &mut NetlistBuilder,
    outputs_seen: &mut BTreeSet<String>,
    lineno: usize,
    line: &str,
) -> Result<(), NetlistError> {
    let err = |message: String| NetlistError::Parse {
        line: lineno,
        message,
    };
    // Builder errors that are attributable to this very line (duplicate
    // definitions and the like) are wrapped so the diagnostic carries the
    // source line; whole-file errors keep their own variants.
    let located = |e: NetlistError| match e {
        NetlistError::Parse { .. } => e,
        other => NetlistError::Parse {
            line: lineno,
            message: other.to_string(),
        },
    };

    if let Some(rest) = strip_call(line, "INPUT") {
        let name = rest.trim();
        check_ident(lineno, name, "input")?;
        builder.add_input(name).map_err(located)?;
        return Ok(());
    }
    if let Some(rest) = strip_call(line, "OUTPUT") {
        let name = rest.trim();
        check_ident(lineno, name, "output")?;
        if !outputs_seen.insert(name.to_owned()) {
            return Err(err(format!("duplicate OUTPUT declaration for {name:?}")));
        }
        builder.mark_output(name).map_err(located)?;
        return Ok(());
    }

    let (lhs, rhs) = line
        .split_once('=')
        .ok_or_else(|| err(format!("expected `signal = GATE(...)`, found {line:?}")))?;
    let signal = lhs.trim();
    check_ident(lineno, signal, "signal")?;
    let rhs = rhs.trim();
    let open = rhs
        .find('(')
        .ok_or_else(|| err(format!("missing `(` in gate expression {rhs:?}")))?;
    if !rhs.ends_with(')') {
        return Err(err(format!("missing `)` in gate expression {rhs:?}")));
    }
    let kw = rhs[..open].trim();
    let kind =
        GateKind::from_keyword(kw).ok_or_else(|| err(format!("unknown gate keyword {kw:?}")))?;
    let args: Vec<&str> = rhs[open + 1..rhs.len() - 1]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    for arg in &args {
        check_ident(lineno, arg, "fanin")?;
    }
    match kind {
        GateKind::Dff => {
            if args.len() != 1 {
                return Err(err(format!(
                    "DFF takes exactly one argument, got {}",
                    args.len()
                )));
            }
            if args[0] == signal {
                // A DFF feeding itself can never be controlled through the
                // scan chain's combinational logic — reject it at the source
                // line instead of surfacing a confusing downstream error.
                return Err(err(format!("DFF {signal:?} feeds itself")));
            }
            builder.add_dff(signal, args[0]).map_err(located)?;
        }
        GateKind::Input => unreachable!("INPUT is not a gate keyword"),
        kind => builder.add_gate(signal, kind, &args).map_err(located)?,
    }
    Ok(())
}

/// If `line` is `KW ( body )` for the (case-insensitive) keyword, returns the
/// body.
fn strip_call<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let head = line.get(..kw.len())?;
    if !head.eq_ignore_ascii_case(kw) {
        return None;
    }
    let rest = line[kw.len()..].trim_start();
    let rest = rest.strip_prefix('(')?;
    rest.strip_suffix(')')
}

/// Serializes a netlist to `.bench` text.
///
/// Declarations come out in the canonical order (inputs, outputs, flip-flops,
/// combinational gates), which reparses to an identical circuit.
pub fn to_string(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.gate_name(pi));
    }
    for &po in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.gate_name(po));
    }
    for id in netlist.gate_ids() {
        let gate = netlist.gate(id);
        if gate.kind() == GateKind::Input {
            continue;
        }
        let fanin: Vec<&str> = gate.fanin().iter().map(|&f| netlist.gate_name(f)).collect();
        let _ = writeln!(
            out,
            "{} = {}({})",
            netlist.gate_name(id),
            gate.kind().keyword(),
            fanin.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny sequential circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G17)

G5 = DFF(G10)
G10 = NAND(G0, G5)   # feedback
G17 = NOT(G10)
";

    #[test]
    fn parses_sample() {
        let n = parse("tiny", SAMPLE).unwrap();
        assert_eq!(n.input_count(), 2);
        assert_eq!(n.output_count(), 1);
        assert_eq!(n.dff_count(), 1);
        assert_eq!(n.gate_count(), 5);
        let g10 = n.find("G10").unwrap();
        assert_eq!(n.gate(g10).kind(), GateKind::Nand);
    }

    #[test]
    fn round_trip_preserves_structure() {
        let n = parse("tiny", SAMPLE).unwrap();
        let text = to_string(&n);
        let n2 = parse("tiny", &text).unwrap();
        assert_eq!(n.gate_count(), n2.gate_count());
        assert_eq!(n.input_count(), n2.input_count());
        assert_eq!(n.dff_count(), n2.dff_count());
        for id in n.gate_ids() {
            let name = n.gate_name(id);
            let id2 = n2.find(name).unwrap();
            assert_eq!(n.gate(id).kind(), n2.gate(id2).kind(), "kind of {name}");
            let f1: Vec<&str> = n.gate(id).fanin().iter().map(|&f| n.gate_name(f)).collect();
            let f2: Vec<&str> = n2
                .gate(id2)
                .fanin()
                .iter()
                .map(|&f| n2.gate_name(f))
                .collect();
            assert_eq!(f1, f2, "fanin of {name}");
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let n = parse("ci", "input(a)\noutput(y)\ny = nand(a, a)\n").unwrap();
        assert_eq!(n.gate(n.find("y").unwrap()).kind(), GateKind::Nand);
    }

    #[test]
    fn rejects_missing_equals() {
        let e = parse("bad", "G1 NAND(a, b)\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn rejects_unknown_keyword() {
        let e = parse("bad", "INPUT(a)\ny = MAJ(a, a, a)\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn rejects_dff_with_two_args() {
        let e = parse("bad", "INPUT(a)\nq = DFF(a, a)\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn rejects_unbalanced_parens() {
        let e = parse("bad", "INPUT(a)\ny = NOT(a\n").unwrap_err();
        assert!(matches!(e, NetlistError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn comment_only_and_blank_lines_ignored() {
        let n = parse("c", "# hi\n\n   \nINPUT(a)\nOUTPUT(a)\n").unwrap();
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.output_count(), 1);
    }
}
