//! Gate-level netlist substrate for the TVS DFT toolkit.
//!
//! A [`Netlist`] is a named, gate-level sequential circuit in the ISCAS89
//! style: primary inputs, primary outputs, D flip-flops and simple Boolean
//! gates. Netlists are constructed through the [`NetlistBuilder`] (which
//! resolves names and permits forward references, exactly like a `.bench`
//! file) or parsed from ISCAS89 `.bench` text with [`bench::parse`].
//!
//! Full-scan test generation treats the circuit combinationally: the
//! [`ScanView`] exposes the combinational core with flip-flop outputs as
//! pseudo-primary inputs (PPIs) and flip-flop data inputs as pseudo-primary
//! outputs (PPOs), in a fixed topological evaluation order shared by every
//! simulator and the ATPG engine in the toolkit.
//!
//! # Examples
//!
//! Build the 3-gate circuit of the DATE 2003 paper's Figure 1 (three scan
//! cells `a`, `b`, `c`; `D = AND(a, b)`, `E = OR(b, c)`, `F = AND(D, E)`;
//! the cells capture `F`, `E` and `D` respectively):
//!
//! ```
//! use tvs_netlist::{GateKind, NetlistBuilder};
//!
//! let mut b = NetlistBuilder::new("fig1");
//! b.add_dff("a", "F")?;
//! b.add_dff("b", "E")?;
//! b.add_dff("c", "D")?;
//! b.add_gate("D", GateKind::And, &["a", "b"])?;
//! b.add_gate("E", GateKind::Or, &["b", "c"])?;
//! b.add_gate("F", GateKind::And, &["D", "E"])?;
//! let netlist = b.build()?;
//! assert_eq!(netlist.dff_count(), 3);
//! let view = netlist.scan_view()?;
//! assert_eq!(view.input_count(), 3); // 0 PIs + 3 PPIs
//! # Ok::<(), tvs_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
mod builder;
mod gate;
mod netlist;
mod scanview;
mod stats;

pub use builder::NetlistBuilder;
pub use gate::{Gate, GateId, GateKind};
pub use netlist::{Netlist, NetlistError};
pub use scanview::ScanView;
pub use stats::NetlistStats;
