//! Netlist summary statistics.

use std::fmt;

use crate::Netlist;

/// Summary statistics of a [`Netlist`], as printed by benchmark tables.
///
/// # Examples
///
/// ```
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_input("a")?;
/// b.add_gate("y", GateKind::Not, &["a"])?;
/// b.mark_output("y")?;
/// let stats = b.build()?.stats();
/// assert_eq!(stats.combinational_gates, 1);
/// # Ok::<(), tvs_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Flip-flop count (scan length).
    pub dffs: usize,
    /// Combinational gate count (excludes inputs and flip-flops).
    pub combinational_gates: usize,
    /// Combinational depth (maximum topological level).
    pub depth: u32,
    /// Maximum fanout of any signal.
    pub max_fanout: usize,
    /// Maximum fanin of any gate.
    pub max_fanin: usize,
    /// Count of inverting gates (NOT/NAND/NOR/XNOR).
    pub inverting_gates: usize,
}

impl NetlistStats {
    pub(crate) fn compute(netlist: &Netlist) -> NetlistStats {
        let mut stats = NetlistStats {
            inputs: netlist.input_count(),
            outputs: netlist.output_count(),
            dffs: netlist.dff_count(),
            ..NetlistStats::default()
        };
        for id in netlist.gate_ids() {
            let gate = netlist.gate(id);
            if gate.kind().is_combinational() {
                stats.combinational_gates += 1;
                stats.max_fanin = stats.max_fanin.max(gate.fanin().len());
                if gate.kind().is_inverting() {
                    stats.inverting_gates += 1;
                }
            }
            stats.max_fanout = stats.max_fanout.max(netlist.fanout(id).len());
        }
        if let Ok(view) = netlist.scan_view() {
            stats.depth = view.depth();
        }
        stats
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PI={} PO={} FF={} gates={} depth={} max_fanin={} max_fanout={}",
            self.inputs,
            self.outputs,
            self.dffs,
            self.combinational_gates,
            self.depth,
            self.max_fanin,
            self.max_fanout
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn computes_counts_and_depth() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_gate("n1", GateKind::Nand, &["a", "b"]).unwrap();
        b.add_gate("n2", GateKind::Not, &["n1"]).unwrap();
        b.add_gate("n3", GateKind::Or, &["n2", "a"]).unwrap();
        b.mark_output("n3").unwrap();
        let s = b.build().unwrap().stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.combinational_gates, 3);
        assert_eq!(s.depth, 3);
        assert_eq!(s.inverting_gates, 2);
        assert_eq!(s.max_fanin, 2);
        assert_eq!(s.max_fanout, 2); // signal "a" feeds n1 and n3
        assert!(s.to_string().contains("gates=3"));
    }
}
