//! Gate kinds and identifiers.

use std::fmt;

use tvs_logic::Logic;

/// Identifier of a gate (equivalently, of the signal the gate drives).
///
/// `GateId`s are dense indices into the owning [`Netlist`](crate::Netlist)'s
/// gate table; they are only meaningful relative to that netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The dense index of this gate within its netlist.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a `GateId` from a dense index.
    ///
    /// Callers are responsible for only using indices obtained from the same
    /// netlist; out-of-range ids cause panics on use, never unsoundness.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The kind of a gate.
///
/// `Input` and `Dff` are the *sources* of the combinational core; everything
/// else is a Boolean function of its fanins. ISCAS89 `.bench` files use
/// exactly this gate alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// D flip-flop; fanin 0 is the D (next-state) net. In the full-scan view
    /// the flip-flop output is a pseudo-primary input and its D net a
    /// pseudo-primary output.
    Dff,
    /// Buffer (1 fanin).
    Buf,
    /// Inverter (1 fanin).
    Not,
    /// AND (≥ 1 fanin).
    And,
    /// NAND (≥ 1 fanin).
    Nand,
    /// OR (≥ 1 fanin).
    Or,
    /// NOR (≥ 1 fanin).
    Nor,
    /// XOR (≥ 1 fanin).
    Xor,
    /// XNOR (≥ 1 fanin).
    Xnor,
}

impl GateKind {
    /// The `.bench` keyword for this kind (`DFF`, `NAND`, …).
    ///
    /// `Input` has no keyword (`INPUT(x)` is a declaration, not a gate
    /// equation) and returns `"INPUT"` for diagnostics only.
    pub const fn keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }

    /// Parses a `.bench` gate keyword, case-insensitively.
    /// `BUFF` is accepted as an alias for `BUF` (both appear in the wild).
    pub fn from_keyword(kw: &str) -> Option<GateKind> {
        Some(match kw.to_ascii_uppercase().as_str() {
            "DFF" => GateKind::Dff,
            "BUF" | "BUFF" => GateKind::Buf,
            "NOT" | "INV" => GateKind::Not,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            _ => return None,
        })
    }

    /// Returns `true` for the two source kinds (`Input`, `Dff`) that begin
    /// the combinational core.
    #[inline]
    pub const fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Dff)
    }

    /// Returns `true` if this kind computes a Boolean function of its fanins.
    #[inline]
    pub const fn is_combinational(self) -> bool {
        !self.is_source()
    }

    /// Evaluates the gate function over three-valued inputs.
    ///
    /// # Panics
    ///
    /// Panics if called on a source kind or with an empty input slice.
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert!(
            self.is_combinational(),
            "cannot evaluate source gate kind {self:?}"
        );
        assert!(
            !inputs.is_empty(),
            "gate evaluation needs at least one input"
        );
        match self {
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().copied().fold(Logic::One, |a, b| a & b),
            GateKind::Nand => !inputs.iter().copied().fold(Logic::One, |a, b| a & b),
            GateKind::Or => inputs.iter().copied().fold(Logic::Zero, |a, b| a | b),
            GateKind::Nor => !inputs.iter().copied().fold(Logic::Zero, |a, b| a | b),
            GateKind::Xor => inputs.iter().copied().fold(Logic::Zero, |a, b| a ^ b),
            GateKind::Xnor => !inputs.iter().copied().fold(Logic::Zero, |a, b| a ^ b),
            GateKind::Input | GateKind::Dff => unreachable!(),
        }
    }

    /// The *controlling value* of the gate, if it has one: the input value
    /// that determines the output regardless of the other inputs
    /// (0 for AND/NAND, 1 for OR/NOR). XOR-class and single-input gates have
    /// none.
    pub const fn controlling_value(self) -> Option<Logic> {
        match self {
            GateKind::And | GateKind::Nand => Some(Logic::Zero),
            GateKind::Or | GateKind::Nor => Some(Logic::One),
            _ => None,
        }
    }

    /// Returns `true` if the gate inverts: the output for the all-
    /// non-controlling input assignment is 0 for NAND/NOR/NOT/XNOR.
    pub const fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A gate instance: its kind and fanin list.
///
/// The gate's output *is* the signal named by its [`GateId`]; fanins refer to
/// other gates' outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<GateId>,
}

impl Gate {
    /// The gate's kind.
    #[inline]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's fanin signals, in pin order.
    #[inline]
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn keyword_round_trip() {
        for kind in [
            GateKind::Dff,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert_eq!(GateKind::from_keyword(kind.keyword()), Some(kind));
            assert_eq!(
                GateKind::from_keyword(&kind.keyword().to_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(GateKind::from_keyword("BUFF"), Some(GateKind::Buf));
        assert_eq!(GateKind::from_keyword("INV"), Some(GateKind::Not));
        assert_eq!(GateKind::from_keyword("MUX"), None);
    }

    #[test]
    fn eval_two_input_gates() {
        assert_eq!(GateKind::And.eval(&[One, One]), One);
        assert_eq!(GateKind::And.eval(&[One, Zero]), Zero);
        assert_eq!(GateKind::Nand.eval(&[One, One]), Zero);
        assert_eq!(GateKind::Or.eval(&[Zero, Zero]), Zero);
        assert_eq!(GateKind::Nor.eval(&[Zero, Zero]), One);
        assert_eq!(GateKind::Xor.eval(&[One, One]), Zero);
        assert_eq!(GateKind::Xnor.eval(&[One, Zero]), Zero);
        assert_eq!(GateKind::Not.eval(&[One]), Zero);
        assert_eq!(GateKind::Buf.eval(&[One]), One);
    }

    #[test]
    fn eval_wide_gates() {
        assert_eq!(GateKind::And.eval(&[One, One, One, Zero]), Zero);
        assert_eq!(GateKind::Xor.eval(&[One, One, One]), One);
        assert_eq!(GateKind::Nor.eval(&[Zero, Zero, One]), Zero);
    }

    #[test]
    fn eval_x_propagation() {
        assert_eq!(GateKind::And.eval(&[Zero, X]), Zero);
        assert_eq!(GateKind::And.eval(&[One, X]), X);
        assert_eq!(GateKind::Or.eval(&[One, X]), One);
        assert_eq!(GateKind::Xor.eval(&[One, X]), X);
    }

    #[test]
    #[should_panic(expected = "source gate kind")]
    fn eval_source_panics() {
        GateKind::Input.eval(&[One]);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(Zero));
        assert_eq!(GateKind::Nand.controlling_value(), Some(Zero));
        assert_eq!(GateKind::Or.controlling_value(), Some(One));
        assert_eq!(GateKind::Nor.controlling_value(), Some(One));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Not.controlling_value(), None);
    }

    #[test]
    fn gate_id_index_round_trip() {
        let id = GateId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "g42");
    }
}
