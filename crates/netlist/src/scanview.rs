//! The full-scan combinational view of a sequential netlist.

use crate::{GateId, Netlist, NetlistError};

/// The full-scan combinational view: PI + PPI → PO + PPO.
///
/// Full scan makes every flip-flop directly controllable (its output becomes
/// a pseudo-primary input, PPI) and observable (its data input becomes a
/// pseudo-primary output, PPO), reducing sequential ATPG to combinational
/// ATPG — the property the stitching paper builds on, since it removes any
/// required order among test vectors.
///
/// The view fixes the index conventions used by every simulator and by ATPG:
///
/// * **combinational input `i`**: `i < pi_count()` is primary input `i`;
///   otherwise PPI `i - pi_count()`, i.e. scan cell `i - pi_count()` (cell 0
///   is the scan-in side).
/// * **combinational output `o`**: `o < po_count()` is primary output `o`;
///   otherwise PPO `o - po_count()`, i.e. the next-state value captured into
///   scan cell `o - po_count()`.
/// * **`order()`** is a topological order of the combinational gates; a
///   single forward sweep evaluates the whole core.
#[derive(Debug, Clone)]
pub struct ScanView {
    pis: Vec<GateId>,
    ppis: Vec<GateId>,
    pos: Vec<GateId>,
    /// PPO sources: for each flip-flop (in scan order), the gate driving its
    /// D input.
    ppos: Vec<GateId>,
    order: Vec<GateId>,
    /// For each gate (dense index): its topological level; sources get 0.
    level: Vec<u32>,
    /// CSR index into `cf_data`: `cf_data[cf_index[g]..cf_index[g+1]]` are
    /// the deduplicated *combinational* consumers of gate `g` (sequential
    /// DFF edges filtered out, multi-pin consumers listed once).
    cf_index: Vec<u32>,
    cf_data: Vec<GateId>,
    /// CSR index into `cone_data`: `cone_data[cone_index[i]..cone_index[i+1]]`
    /// is the transitive combinational fanout cone of input `i`, in
    /// topological order.
    cone_index: Vec<u32>,
    cone_data: Vec<GateId>,
}

impl ScanView {
    pub(crate) fn build(netlist: &Netlist) -> Result<ScanView, NetlistError> {
        let n = netlist.gate_count();
        // Kahn's algorithm over combinational gates only; Input/Dff gates are
        // sources with level 0 and do not depend on anything (a DFF's fanin
        // is a *sequential* edge, deliberately ignored here).
        let mut indeg = vec![0u32; n];
        for id in netlist.gate_ids() {
            let gate = netlist.gate(id);
            if gate.kind().is_combinational() {
                indeg[id.index()] = gate.fanin().len() as u32;
            }
        }
        let mut level = vec![0u32; n];
        let mut ready: Vec<GateId> = netlist
            .gate_ids()
            .filter(|&id| netlist.gate(id).kind().is_source())
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut seen = ready.len();
        let mut head = 0;
        while head < ready.len() {
            let id = ready[head];
            head += 1;
            for &(consumer, _pin) in netlist.fanout(id) {
                let ci = consumer.index();
                if netlist.gate(consumer).kind().is_combinational() {
                    level[ci] = level[ci].max(level[id.index()] + 1);
                    indeg[ci] -= 1;
                    if indeg[ci] == 0 {
                        ready.push(consumer);
                        order.push(consumer);
                        seen += 1;
                    }
                }
            }
        }
        if seen != n {
            // Some combinational gate never became ready → cycle.
            let stuck = netlist
                .gate_ids()
                .find(|&id| netlist.gate(id).kind().is_combinational() && indeg[id.index()] > 0)
                // `seen != n` guarantees such a gate. lint:allow(SRC005)
                .expect("cycle implies a stuck gate");
            return Err(NetlistError::CombinationalCycle(
                netlist.gate_name(stuck).to_owned(),
            ));
        }

        let ppos = netlist
            .dffs
            .iter()
            .map(|&ff| netlist.gate(ff).fanin()[0])
            .collect();

        // Deduplicated combinational fanout, CSR form. The raw
        // `Netlist::fanout` lists one (consumer, pin) pair per connection;
        // event-driven simulation only needs each combinational consumer
        // once, with sequential DFF edges filtered out.
        let mut seen = vec![0u32; n];
        let mut cf_index = Vec::with_capacity(n + 1);
        let mut cf_data: Vec<GateId> = Vec::new();
        cf_index.push(0u32);
        for id in netlist.gate_ids() {
            let stamp = id.index() as u32 + 1;
            for &(consumer, _pin) in netlist.fanout(id) {
                let ci = consumer.index();
                if netlist.gate(consumer).kind().is_combinational() && seen[ci] != stamp {
                    seen[ci] = stamp;
                    cf_data.push(consumer);
                }
            }
            cf_index.push(cf_data.len() as u32);
        }

        // Transitive fanout cone of every combinational input (PI or scan
        // cell), stored topologically sorted so a cone can be replayed as a
        // partial sweep. Total cone size is bounded by inputs × gates but in
        // practice sits near inputs × average-cone (≈400k entries on the
        // largest built-in profile), cheap enough to precompute eagerly.
        let mut pos = vec![0u32; n];
        for (t, &id) in order.iter().enumerate() {
            pos[id.index()] = t as u32;
        }
        let input_count = netlist.inputs.len() + netlist.dffs.len();
        let mut mark = vec![0u32; n];
        let mut cone_index = Vec::with_capacity(input_count + 1);
        let mut cone_data: Vec<GateId> = Vec::new();
        let mut stack: Vec<GateId> = Vec::new();
        cone_index.push(0u32);
        for i in 0..input_count {
            let stamp = i as u32 + 1;
            let src = if i < netlist.inputs.len() {
                netlist.inputs[i]
            } else {
                netlist.dffs[i - netlist.inputs.len()]
            };
            let start = cone_data.len();
            stack.push(src);
            while let Some(g) = stack.pop() {
                let gi = g.index();
                let fans = &cf_data[cf_index[gi] as usize..cf_index[gi + 1] as usize];
                for &c in fans {
                    if mark[c.index()] != stamp {
                        mark[c.index()] = stamp;
                        cone_data.push(c);
                        stack.push(c);
                    }
                }
            }
            cone_data[start..].sort_unstable_by_key(|g| pos[g.index()]);
            cone_index.push(cone_data.len() as u32);
        }

        Ok(ScanView {
            pis: netlist.inputs.clone(),
            ppis: netlist.dffs.clone(),
            pos: netlist.outputs.clone(),
            ppos,
            order,
            level,
            cf_index,
            cf_data,
            cone_index,
            cone_data,
        })
    }

    /// Number of primary inputs.
    pub fn pi_count(&self) -> usize {
        self.pis.len()
    }

    /// Number of pseudo-primary inputs (scan cells).
    pub fn ppi_count(&self) -> usize {
        self.ppis.len()
    }

    /// Total combinational inputs: `pi_count() + ppi_count()`.
    pub fn input_count(&self) -> usize {
        self.pis.len() + self.ppis.len()
    }

    /// Number of primary outputs.
    pub fn po_count(&self) -> usize {
        self.pos.len()
    }

    /// Number of pseudo-primary outputs (scan-cell next-state nets).
    pub fn ppo_count(&self) -> usize {
        self.ppos.len()
    }

    /// Total combinational outputs: `po_count() + ppo_count()`.
    pub fn output_count(&self) -> usize {
        self.pos.len() + self.ppos.len()
    }

    /// The source gate for combinational input `i` (PI or scan-cell output).
    ///
    /// # Panics
    ///
    /// Panics if `i >= input_count()`.
    pub fn input_gate(&self, i: usize) -> GateId {
        if i < self.pis.len() {
            self.pis[i]
        } else {
            self.ppis[i - self.pis.len()]
        }
    }

    /// The driving gate for combinational output `o` (PO signal or the gate
    /// feeding a scan cell's D input).
    ///
    /// # Panics
    ///
    /// Panics if `o >= output_count()`.
    pub fn output_gate(&self, o: usize) -> GateId {
        if o < self.pos.len() {
            self.pos[o]
        } else {
            self.ppos[o - self.pos.len()]
        }
    }

    /// Primary inputs in index order.
    pub fn pis(&self) -> &[GateId] {
        &self.pis
    }

    /// Scan cells (PPIs) in chain order.
    pub fn ppis(&self) -> &[GateId] {
        &self.ppis
    }

    /// Primary outputs in index order.
    pub fn pos(&self) -> &[GateId] {
        &self.pos
    }

    /// PPO driver gates in chain order.
    pub fn ppos(&self) -> &[GateId] {
        &self.ppos
    }

    /// Topological evaluation order of the combinational gates (sources
    /// excluded); evaluating gates in this order with source values already
    /// set yields every signal value in one sweep.
    pub fn order(&self) -> &[GateId] {
        &self.order
    }

    /// Topological level of a gate (0 for sources).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from the same netlist.
    pub fn level(&self, id: GateId) -> u32 {
        self.level[id.index()]
    }

    /// Maximum topological level (combinational depth).
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }

    /// The deduplicated combinational consumers of a gate — the fanout with
    /// sequential (DFF) edges removed and multi-pin consumers listed once.
    ///
    /// This is the edge relation of event-driven incremental simulation: a
    /// changed signal can only affect these gates within the same sweep.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from the same netlist.
    pub fn comb_fanout(&self, id: GateId) -> &[GateId] {
        let gi = id.index();
        &self.cf_data[self.cf_index[gi] as usize..self.cf_index[gi + 1] as usize]
    }

    /// The transitive combinational fanout cone of combinational input `i`
    /// (PI-then-PPI convention), in topological order.
    ///
    /// Every gate whose value can depend on input `i` is in this slice; its
    /// length bounds the re-evaluation work a single-input change can cause.
    ///
    /// # Panics
    ///
    /// Panics if `i >= input_count()`.
    pub fn input_cone(&self, i: usize) -> &[GateId] {
        &self.cone_data[self.cone_index[i] as usize..self.cone_index[i + 1] as usize]
    }

    /// The transitive combinational fanout cone of scan cell `cell`
    /// (equivalent to `input_cone(pi_count() + cell)`).
    ///
    /// # Panics
    ///
    /// Panics if `cell >= ppi_count()`.
    pub fn scan_cell_cone(&self, cell: usize) -> &[GateId] {
        self.input_cone(self.pis.len() + cell)
    }

    /// The combinational-input index of a gate if it is a PI or PPI.
    pub fn input_index_of(&self, id: GateId) -> Option<usize> {
        self.pis.iter().position(|&g| g == id).or_else(|| {
            self.ppis
                .iter()
                .position(|&g| g == id)
                .map(|p| p + self.pis.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, NetlistBuilder};

    fn fig1() -> crate::Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_indexing() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        assert_eq!(v.pi_count(), 0);
        assert_eq!(v.ppi_count(), 3);
        assert_eq!(v.po_count(), 0);
        assert_eq!(v.ppo_count(), 3);
        assert_eq!(v.input_gate(0), n.find("a").unwrap());
        assert_eq!(v.input_gate(2), n.find("c").unwrap());
        // PPO order follows the scan order: D of a is F, of b is E, of c is D.
        assert_eq!(v.output_gate(0), n.find("F").unwrap());
        assert_eq!(v.output_gate(1), n.find("E").unwrap());
        assert_eq!(v.output_gate(2), n.find("D").unwrap());
    }

    #[test]
    fn order_is_topological() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        assert_eq!(v.order().len(), 3); // D, E, F in some valid order
        let pos_of = |name: &str| {
            v.order()
                .iter()
                .position(|&g| g == n.find(name).unwrap())
                .unwrap()
        };
        assert!(pos_of("D") < pos_of("F"));
        assert!(pos_of("E") < pos_of("F"));
        assert_eq!(v.level(n.find("F").unwrap()), 2);
        assert_eq!(v.depth(), 2);
    }

    #[test]
    fn input_index_of_finds_sources() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        assert_eq!(v.input_index_of(n.find("b").unwrap()), Some(1));
        assert_eq!(v.input_index_of(n.find("F").unwrap()), None);
    }

    #[test]
    fn comb_fanout_filters_sequential_edges_and_dedups() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        // b feeds D and E (combinational); its own DFF capture edge (E -> b)
        // must not appear as fanout of E.
        let names = |gates: &[crate::GateId]| -> Vec<&str> {
            gates.iter().map(|&g| n.gate_name(g)).collect()
        };
        let mut b_fan = names(v.comb_fanout(n.find("b").unwrap()));
        b_fan.sort_unstable();
        assert_eq!(b_fan, vec!["D", "E"]);
        assert_eq!(names(v.comb_fanout(n.find("E").unwrap())), vec!["F"]);
        assert!(v.comb_fanout(n.find("F").unwrap()).is_empty());

        // A consumer with the same signal on two pins appears once.
        let mut bb = NetlistBuilder::new("dup");
        bb.add_input("a").unwrap();
        bb.add_gate("y", GateKind::And, &["a", "a"]).unwrap();
        bb.mark_output("y").unwrap();
        let nd = bb.build().unwrap();
        let vd = nd.scan_view().unwrap();
        assert_eq!(vd.comb_fanout(nd.find("a").unwrap()).len(), 1);
    }

    #[test]
    fn input_cones_are_transitive_and_topological() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let cone_names =
            |i: usize| -> Vec<&str> { v.input_cone(i).iter().map(|&g| n.gate_name(g)).collect() };
        // b reaches D, E and (through both) F; topological order puts F last.
        let b_cone = cone_names(1);
        assert_eq!(b_cone.len(), 3);
        assert_eq!(*b_cone.last().unwrap(), "F");
        // a reaches only D then F; c reaches only E then F.
        assert_eq!(cone_names(0), vec!["D", "F"]);
        assert_eq!(cone_names(2), vec!["E", "F"]);
        // fig1 is all-PPI, so scan_cell_cone is the same table.
        assert_eq!(v.scan_cell_cone(1), v.input_cone(1));
        // Cones are topologically sorted (level never decreases).
        for i in 0..v.input_count() {
            let cone = v.input_cone(i);
            for w in cone.windows(2) {
                assert!(v.level(w[0]) <= v.level(w[1]));
            }
        }
    }

    #[test]
    fn mixed_pi_ppi_indexing() {
        let mut b = NetlistBuilder::new("mix");
        b.add_input("i0").unwrap();
        b.add_input("i1").unwrap();
        b.add_dff("q", "d").unwrap();
        b.add_gate("d", GateKind::And, &["i0", "q"]).unwrap();
        b.add_gate("o", GateKind::Or, &["i1", "q"]).unwrap();
        b.mark_output("o").unwrap();
        let n = b.build().unwrap();
        let v = n.scan_view().unwrap();
        assert_eq!(v.input_count(), 3);
        assert_eq!(v.output_count(), 2);
        assert_eq!(v.input_gate(2), n.find("q").unwrap());
        assert_eq!(v.output_gate(0), n.find("o").unwrap());
        assert_eq!(v.output_gate(1), n.find("d").unwrap());
        assert_eq!(v.input_index_of(n.find("q").unwrap()), Some(2));
    }
}
