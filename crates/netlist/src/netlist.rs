//! The netlist container: gates, names, fanout and validation.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::{Gate, GateId, GateKind, NetlistStats, ScanView};

/// A gate-level sequential circuit.
///
/// Construct via [`NetlistBuilder`](crate::NetlistBuilder) or
/// [`bench::parse`](crate::bench::parse); a freshly built netlist is always
/// structurally valid (names resolved, arities checked, no combinational
/// cycles).
///
/// The netlist fixes several orders that the rest of the toolkit relies on:
///
/// * **PI order**: the order primary inputs were declared;
/// * **PO order**: the order primary outputs were declared;
/// * **Scan order**: flip-flops in declaration order; chain position 0 is the
///   scan-in side and position `dff_count() - 1` the scan-out side.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) gates: Vec<Gate>,
    pub(crate) names: Vec<String>,
    pub(crate) by_name: BTreeMap<String, GateId>,
    pub(crate) inputs: Vec<GateId>,
    pub(crate) outputs: Vec<GateId>,
    pub(crate) dffs: Vec<GateId>,
    /// For each gate, the consumers as `(consumer gate, pin index)` pairs.
    pub(crate) fanout: Vec<Vec<(GateId, u32)>>,
}

impl Netlist {
    /// The circuit's name (e.g. `"s444"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of gates, including `Input` and `Dff` pseudo-gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of D flip-flops (equals the scan-chain length).
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this netlist.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The signal name of the gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this netlist.
    pub fn gate_name(&self, id: GateId) -> &str {
        &self.names[id.index()]
    }

    /// Looks a gate up by signal name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.by_name.get(name).copied()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Flip-flops in scan-chain order (position 0 = scan-in side).
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Consumers of the given gate's output signal, as
    /// `(consumer, pin index)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this netlist.
    pub fn fanout(&self, id: GateId) -> &[(GateId, u32)] {
        &self.fanout[id.index()]
    }

    /// Iterates over all gate ids in dense order.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len()).map(GateId::from_index)
    }

    /// Computes the full-scan combinational view (PI+PPI → PO+PPO) together
    /// with a topological evaluation order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational core
    /// contains a cycle (flip-flops legitimately break sequential loops).
    pub fn scan_view(&self) -> Result<ScanView, NetlistError> {
        ScanView::build(self)
    }

    /// Summary statistics (gate counts by kind, depth, fanout, …).
    pub fn stats(&self) -> NetlistStats {
        NetlistStats::compute(self)
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} DFFs, {} gates",
            self.name,
            self.input_count(),
            self.output_count(),
            self.dff_count(),
            self.gate_count()
        )
    }
}

/// Errors produced while building, parsing or analysing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A signal name was defined twice.
    DuplicateSignal(String),
    /// A fanin name was never defined.
    UndefinedSignal(String),
    /// A gate was declared with an invalid number of fanins.
    BadArity {
        /// The offending gate's signal name.
        signal: String,
        /// Its kind.
        kind: GateKind,
        /// The fanin count found.
        found: usize,
    },
    /// The combinational core contains a cycle through the named signal.
    CombinationalCycle(String),
    /// A `.bench` line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An `OUTPUT(x)` declaration referenced an undefined signal.
    UndefinedOutput(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateSignal(s) => write!(f, "signal {s:?} defined more than once"),
            NetlistError::UndefinedSignal(s) => write!(f, "signal {s:?} used but never defined"),
            NetlistError::BadArity {
                signal,
                kind,
                found,
            } => write!(
                f,
                "gate {signal:?} of kind {kind} has invalid fanin count {found}"
            ),
            NetlistError::CombinationalCycle(s) => {
                write!(f, "combinational cycle through signal {s:?}")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::UndefinedOutput(s) => {
                write!(f, "output declaration references undefined signal {s:?}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use crate::{GateKind, NetlistBuilder};

    #[test]
    fn display_summarizes() {
        let mut b = NetlistBuilder::new("tiny");
        b.add_input("i").unwrap();
        b.add_gate("n", GateKind::Not, &["i"]).unwrap();
        b.mark_output("n").unwrap();
        let n = b.build().unwrap();
        assert_eq!(n.to_string(), "tiny: 1 PIs, 1 POs, 0 DFFs, 2 gates");
    }

    #[test]
    fn fanout_records_pins() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_gate("g", GateKind::And, &["a", "a"]).unwrap();
        b.mark_output("g").unwrap();
        let n = b.build().unwrap();
        let a = n.find("a").unwrap();
        let g = n.find("g").unwrap();
        assert_eq!(n.fanout(a), &[(g, 0), (g, 1)]);
        assert!(n.fanout(g).is_empty());
    }

    #[test]
    fn find_and_names() {
        let mut b = NetlistBuilder::new("t");
        b.add_input("alpha").unwrap();
        b.add_gate("beta", GateKind::Buf, &["alpha"]).unwrap();
        b.mark_output("beta").unwrap();
        let n = b.build().unwrap();
        let alpha = n.find("alpha").unwrap();
        assert_eq!(n.gate_name(alpha), "alpha");
        assert!(n.find("gamma").is_none());
    }
}
