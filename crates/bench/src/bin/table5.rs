//! Reproduces **Table 5** of the DATE 2003 paper: the overall scheme
//! (variable shift + Most-faults greedy + no XOR hardware) on the seven
//! largest circuits, reporting I/O, scan length, `m` and `t`.
//!
//! Usage: `table5 [--scale <f>] [--full] [--threads <n>]`. The default
//! scaling caps the stand-in logic volume (see `tvs_bench::runner`);
//! interface counts — the I/O and scan# columns the paper prints — are
//! always exact. With `--threads <n>` (or `TVS_THREADS`) the circuit
//! profiles run on a worker pool, one profile per worker; the printed table
//! is byte-identical at any thread count.

use tvs_bench::runner::{map_profiles, run_profile, threads_from_args, Scaling};
use tvs_bench::tables::{mean, ratio, TextTable};
use tvs_stitch::StitchConfig;

fn main() {
    let scaling = Scaling::from_args();
    let threads = threads_from_args();
    println!("Table 5: experimental results for large circuits");
    println!("(variable shift + Most-faults selection + no XOR hardware)\n");
    let mut table = TextTable::new(vec![
        "circ", "I/O", "scan#", "gates", "TV", "ex", "cov", "m", "t",
    ]);
    let mut ms = Vec::new();
    let mut ts = Vec::new();

    let profiles = tvs_circuits::profiles_table5();
    let rows = map_profiles(&profiles, threads, |profile| {
        let row = run_profile(profile, &scaling, &StitchConfig::default());
        let m = &row.report.metrics;
        eprintln!(
            "  [{}] done (m={:.2} t={:.2})",
            profile.name, m.memory_ratio, m.time_ratio
        );
        row
    });

    for (profile, row) in profiles.iter().zip(&rows) {
        let m = &row.report.metrics;
        table.row(vec![
            profile.name.to_owned(),
            format!("{}/{}", profile.inputs, profile.outputs),
            profile.flip_flops.to_string(),
            row.gates.to_string(),
            m.stitched_vectors.to_string(),
            m.extra_vectors.to_string(),
            format!("{:.3}", m.fault_coverage),
            ratio(m.memory_ratio),
            ratio(m.time_ratio),
        ]);
        ms.push(m.memory_ratio);
        ts.push(m.time_ratio);
    }
    table.row(vec![
        "Ave".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        ratio(mean(ms)),
        ratio(mean(ts)),
    ]);
    println!("{table}");
    println!("(paper, average: m=0.61 t=0.51; best row s35932 m=0.20 t=0.07)");
}
