//! Reproduces **Table 3** of the DATE 2003 paper: hidden-fault observability
//! schemes — plain (NXOR), vertical XOR (VXOR) and horizontal XOR (HXOR) —
//! on the eight Table-2 circuits, reporting `m` and `t` per scheme.
//!
//! Usage: `table3 [--scale <f>] [--full] [--threads <n>]`. With
//! `--threads <n>` (or `TVS_THREADS`) profiles run on a worker pool; the
//! printed table is byte-identical at any thread count.

use tvs_bench::runner::{map_profiles, run_profile, threads_from_args, Scaling};
use tvs_bench::tables::{mean, ratio, TextTable};
use tvs_scan::{CaptureTransform, ObserveTransform};
use tvs_stitch::StitchConfig;

fn main() {
    let scaling = Scaling::from_args();
    let threads = threads_from_args();
    let schemes: [(&str, CaptureTransform, ObserveTransform); 3] = [
        ("NXOR", CaptureTransform::Plain, ObserveTransform::Direct),
        (
            "VXOR",
            CaptureTransform::VerticalXor,
            ObserveTransform::Direct,
        ),
        (
            "HXOR",
            CaptureTransform::Plain,
            ObserveTransform::HorizontalXor(3),
        ),
    ];

    println!("Table 3: hidden fault observability (m, t per scheme)\n");
    let mut table = TextTable::new(vec![
        "circ", "gates", "NXOR m", "NXOR t", "VXOR m", "VXOR t", "HXOR m", "HXOR t",
    ]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 6];

    let profiles = tvs_circuits::profiles_table2();
    let results = map_profiles(&profiles, threads, |profile| {
        let mut cells = vec![profile.name.to_owned(), String::new()];
        let mut ratios = Vec::with_capacity(6);
        for (_, capture, observe) in schemes.iter() {
            let cfg = StitchConfig {
                capture: *capture,
                observe: *observe,
                ..StitchConfig::default()
            };
            let row = run_profile(profile, &scaling, &cfg);
            cells[1] = row.gates.to_string();
            let m = row.report.metrics.memory_ratio;
            let t = row.report.metrics.time_ratio;
            cells.push(ratio(m));
            cells.push(ratio(t));
            ratios.push(m);
            ratios.push(t);
        }
        eprintln!("  [{}] done", profile.name);
        (cells, ratios)
    });

    for (cells, ratios) in results {
        for (sum, value) in sums.iter_mut().zip(ratios) {
            sum.push(value);
        }
        table.row(cells);
    }
    let mut avg = vec!["Ave".to_owned(), String::new()];
    for s in &sums {
        avg.push(ratio(mean(s.iter().copied())));
    }
    table.row(avg);
    println!("{table}");
    println!("(paper, averages: NXOR m=0.74 t=0.48; VXOR m=0.66 t=0.41; HXOR m=0.69 t=0.43)");
}
