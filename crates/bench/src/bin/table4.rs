//! Reproduces **Table 4** of the DATE 2003 paper: test vector selection
//! strategies — Random, Hardness (hardest-first by SCOAP) and the greedy
//! Most-faults — on the eight Table-2 circuits, reporting `m` and `t`.
//!
//! Usage: `table4 [--scale <f>] [--full] [--threads <n>]`. With
//! `--threads <n>` (or `TVS_THREADS`) profiles run on a worker pool; the
//! printed table is byte-identical at any thread count.

use tvs_bench::runner::{map_profiles, run_profile, threads_from_args, Scaling};
use tvs_bench::tables::{mean, ratio, TextTable};
use tvs_stitch::{StitchConfig, StrategyId};

fn main() {
    let scaling = Scaling::from_args();
    let threads = threads_from_args();
    let strategies = [
        ("Random", StrategyId::Random),
        ("Hardness", StrategyId::Hardness),
        ("Most-faults", StrategyId::MostFaults),
    ];

    println!("Table 4: selection of test vectors (m, t per strategy)\n");
    let mut table = TextTable::new(vec![
        "circ", "gates", "Rand m", "Rand t", "Hard m", "Hard t", "Most m", "Most t",
    ]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); 6];

    let profiles = tvs_circuits::profiles_table2();
    let results = map_profiles(&profiles, threads, |profile| {
        let mut cells = vec![profile.name.to_owned(), String::new()];
        let mut ratios = Vec::with_capacity(6);
        for (_, strategy) in strategies.iter() {
            let cfg = StitchConfig {
                strategy: *strategy,
                ..StitchConfig::default()
            };
            let row = run_profile(profile, &scaling, &cfg);
            cells[1] = row.gates.to_string();
            let m = row.report.metrics.memory_ratio;
            let t = row.report.metrics.time_ratio;
            cells.push(ratio(m));
            cells.push(ratio(t));
            ratios.push(m);
            ratios.push(t);
        }
        eprintln!("  [{}] done", profile.name);
        (cells, ratios)
    });

    for (cells, ratios) in results {
        for (sum, value) in sums.iter_mut().zip(ratios) {
            sum.push(value);
        }
        table.row(cells);
    }
    let mut avg = vec!["Ave".to_owned(), String::new()];
    for s in &sums {
        avg.push(ratio(mean(s.iter().copied())));
    }
    table.row(avg);
    println!("{table}");
    println!("(paper, averages: Random m=0.80 t=0.48; Hardness m=0.74 t=0.44; Most-faults m=0.64 t=0.38)");
}
