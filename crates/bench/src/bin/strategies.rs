//! Standalone entry point of the strategies × profiles Pareto sweep; the
//! `tvs bench strategies` subcommand is the canonical wrapper and takes
//! the same options.
//!
//! Usage: `strategies [--out <f>] [--profiles <a,b,…>] [--budget <n>]
//! [--scale <f>] [--threads <n>] [--gate]`

use std::process::ExitCode;

use tvs_bench::strategies::{coverage_regressions, sweep, to_json, SweepOpts};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, out, gate) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match sweep(&opts) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let json = to_json(&result);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: write {out}: {e}");
        return ExitCode::from(6);
    }
    eprintln!(
        "wrote {out}: {} profiles x {} strategies",
        result.profiles.len(),
        result.profiles.first().map_or(0, |p| p.rows.len())
    );
    if gate {
        let regressions = coverage_regressions(&result);
        if !regressions.is_empty() {
            for (profile, strategy, got, baseline) in &regressions {
                eprintln!(
                    "coverage regression: {profile}/{strategy} {got:.4} < most {baseline:.4}"
                );
            }
            return ExitCode::from(11);
        }
    }
    ExitCode::SUCCESS
}

type Parsed = (SweepOpts, String, bool);

fn parse(args: &[String]) -> Result<Parsed, String> {
    let mut opts = SweepOpts::default();
    let mut out = "BENCH_strategies.json".to_owned();
    let mut gate = false;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[i]))
        };
        match args[i].as_str() {
            "--out" => {
                out = value(i)?;
                i += 1;
            }
            "--profiles" => {
                opts.profiles = value(i)?.split(',').map(str::to_owned).collect();
                i += 1;
            }
            "--budget" => {
                opts.budget = value(i)?
                    .parse()
                    .map_err(|_| "malformed --budget".to_owned())?;
                i += 1;
            }
            "--scale" => {
                opts.scale = value(i)?
                    .parse()
                    .map_err(|_| "malformed --scale".to_owned())?;
                i += 1;
            }
            "--threads" => {
                opts.threads = value(i)?
                    .parse()
                    .map_err(|_| "malformed --threads".to_owned())?;
                i += 1;
            }
            "--gate" => gate = true,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 1;
    }
    Ok((opts, out, gate))
}
