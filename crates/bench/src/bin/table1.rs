//! Reproduces **Table 1** of the DATE 2003 paper: the fault-behaviour table
//! of the Figure 1 circuit under the paper's four stitched test vectors.
//!
//! Each tracked fault's row shows, per cycle, the test vector its faulty
//! machine actually received and the response it produced; tracking stops
//! (blank cells) once the fault's effect has reached the tester. The paper's
//! highlights reproduce exactly: `F/0` hides in cycle 1 and surfaces in
//! cycle 2 through the mutated vector `000`; `F/1`-class faults mutate the
//! third vector to `101`; the branch `E-F/1` is redundant and never caught.

use tvs_bench::tables::TextTable;
use tvs_stitch::{StitchConfig, StitchEngine};

fn main() {
    let netlist = tvs_circuits::fig1();
    let engine = StitchEngine::new(&netlist).expect("fig1 has a scan chain");
    let vectors = tvs_circuits::fig1_vectors();
    let trace = engine
        .replay(&vectors, &[3, 2, 2, 2], 2, &StitchConfig::default())
        .expect("the paper's schedule is stitch-consistent");

    println!("Table 1: fault behaviour under the paper's stitched schedule");
    println!("(circuit: Fig. 1; shifts 3,2,2,2; closing flush 2)\n");

    let mut header = vec!["fault".to_owned()];
    for c in 1..=trace.cycles.len() {
        header.push(format!("TV{c}"));
        header.push(format!("RP{c}"));
    }
    let mut table = TextTable::new(header.iter().map(String::as_str).collect());

    let mut correct = vec!["correct".to_owned()];
    for cycle in &trace.cycles {
        correct.push(cycle.vector.to_string());
        correct.push(cycle.response.to_string());
    }
    table.row(correct);

    for row in &trace.rows {
        let mut cells = vec![row.fault.display_in(&netlist)];
        for entry in &row.entries {
            cells.push(entry.vector.to_string());
            cells.push(entry.response.to_string());
        }
        table.row(cells);
    }
    println!("{table}");

    let caught = trace.rows.iter().filter(|r| r.caught_at.is_some()).count();
    let uncaught: Vec<String> = trace
        .rows
        .iter()
        .filter(|r| r.caught_at.is_none())
        .map(|r| r.fault.display_in(&netlist))
        .collect();
    println!(
        "caught {caught}/{} tracked faults; never caught: {uncaught:?}",
        trace.rows.len()
    );
    println!("(the paper's only uncaught fault is the redundant E-F/1)");
}
