//! Reproduces **Table 2** of the DATE 2003 paper: fixed shift sizes at the
//! 3/8, 5/8 and 7/8 info ratios versus the variable shift policy, on the
//! eight Table-2 circuits.
//!
//! Columns per the paper: `shift` (bits per cycle / scan length), `TV`
//! (stitched vectors), `ex` (fallback full vectors), `m` (memory ratio), `t`
//! (time ratio). Profiles where an info ratio is unattainable because the
//! primary inputs alone exceed it are marked `/`, as in the paper.
//!
//! Usage: `table2 [--scale <f>] [--full] [--threads <n>]` (see
//! `tvs_bench::runner`). With `--threads <n>` (or `TVS_THREADS`) profiles
//! run on a worker pool, one profile per worker; the printed table is
//! byte-identical at any thread count.

use tvs_bench::runner::{map_profiles, run_profile, threads_from_args, Scaling};
use tvs_bench::tables::{ratio, TextTable};
use tvs_scan::CostModel;
use tvs_stitch::{ShiftPolicy, StitchConfig};

fn main() {
    let scaling = Scaling::from_args();
    let threads = threads_from_args();
    let infos = [(3.0 / 8.0, "3/8"), (5.0 / 8.0, "5/8"), (7.0 / 8.0, "7/8")];

    let mut table = TextTable::new(vec![
        "circ", "gates", "aTV", // baseline
        "shift", "TV", "ex", "m", "t", // 3/8
        "shift", "TV", "ex", "m", "t", // 5/8
        "shift", "TV", "ex", "m", "t", // 7/8
        "TV", "ex", "m", "t", // variable
    ]);
    println!("Table 2: varying the size and type of shifting");
    println!("(columns: three fixed-shift info points 3/8, 5/8, 7/8, then variable shift)\n");

    let profiles = tvs_circuits::profiles_table2();
    let all_cells = map_profiles(&profiles, threads, |profile| {
        let mut cells = vec![profile.name.to_owned()];
        let mut first = true;
        for (target, _label) in infos {
            let model = CostModel {
                scan_len: profile.flip_flops,
                pi_count: profile.inputs,
                po_count: profile.outputs,
            };
            match model.shift_for_info(target) {
                Some(k) => {
                    let cfg = StitchConfig {
                        policy: ShiftPolicy::Fixed(k),
                        ..StitchConfig::default()
                    };
                    let row = run_profile(profile, &scaling, &cfg);
                    if first {
                        cells.push(row.gates.to_string());
                        cells.push(row.report.metrics.baseline_vectors.to_string());
                        first = false;
                    }
                    let m = &row.report.metrics;
                    cells.push(format!("{k}/{}", profile.flip_flops));
                    cells.push(m.stitched_vectors.to_string());
                    cells.push(m.extra_vectors.to_string());
                    cells.push(ratio(m.memory_ratio));
                    cells.push(ratio(m.time_ratio));
                }
                None => {
                    if first {
                        // Fill gates/aTV from the variable run later; use
                        // placeholders for now (variable always runs).
                        cells.push(String::new());
                        cells.push(String::new());
                        first = false;
                    }
                    for _ in 0..5 {
                        cells.push("/".to_owned());
                    }
                }
            }
        }
        // Variable shift.
        let row = run_profile(profile, &scaling, &StitchConfig::default());
        let m = &row.report.metrics;
        if cells[1].is_empty() {
            cells[1] = row.gates.to_string();
            cells[2] = m.baseline_vectors.to_string();
        }
        cells.push(m.stitched_vectors.to_string());
        cells.push(m.extra_vectors.to_string());
        cells.push(ratio(m.memory_ratio));
        cells.push(ratio(m.time_ratio));
        eprintln!("  [{}] done", profile.name);
        cells
    });

    for cells in all_cells {
        table.row(cells);
    }
    println!("{table}");
    println!("(paper, averages: 3/8 m=0.88 t=0.84; 5/8 m=0.73 t=0.59; 7/8 m=0.78 t=0.73; variable m=0.63 t=0.38)");
}
