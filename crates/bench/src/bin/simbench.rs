//! CI smoke bench for the incremental simulation kernel.
//!
//! Runs a classify-style fault-simulation workload — one good-machine
//! stimulus, the collapsed fault list swept in 63-slot chunks — on the
//! largest built-in profile (s38417) in two modes:
//!
//! * **full**: every chunk is a plain levelized sweep ([`ParallelSim::eval`]);
//! * **incremental**: one baseline seed, then every chunk re-evaluates only
//!   the injection fanout cones ([`ParallelSim::eval_incremental`]).
//!
//! The two modes must produce bit-identical output words (exit 1 otherwise),
//! and the incremental mode must beat the full sweep by at least
//! [`MIN_GATE_EVAL_RATIO`]× on the `sim.gates_evaluated` counter (exit 1
//! otherwise). The gate is **deterministic**: counter values are a pure
//! function of the workload, so the same binary passes or fails identically
//! on a loaded CI box and a quiet workstation. Wall-clock medians are still
//! measured and reported in the JSON, but purely as information — they gate
//! nothing.
//!
//! Results — gate evaluations and median wall time per pass — are written
//! to `BENCH_sim.json` in the current directory.
//!
//! Usage: `simbench [--out <path>]`.

use std::process::ExitCode;

use tvs_bench::microbench::BenchGroup;
use tvs_fault::FaultList;
use tvs_logic::Prng;
use tvs_sim::{Injection, ParallelSim};

/// The CI gate: the incremental kernel must evaluate at least this many
/// times fewer gates than full sweeps on the s38417 workload. The observed
/// ratio is ~4–5×; 2.0 leaves headroom for workload drift while still
/// catching a broken fanout-cone cut (which collapses the ratio to ~1).
const MIN_GATE_EVAL_RATIO: f64 = 2.0;

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => {
                eprintln!("unknown argument: {other} (usage: simbench [--out <path>])");
                return ExitCode::from(2);
            }
        }
    }

    let profile = tvs_circuits::profile("s38417").expect("largest built-in profile");
    eprintln!(
        "simbench: building {} ({} gates)…",
        profile.name, profile.gates
    );
    let netlist = profile.build();
    let view = netlist.scan_view().expect("profile has a scan chain");
    let list = FaultList::collapsed(&netlist);

    // The classify-style workload: one stimulus, all faults in 63-slot
    // chunks (slot 63 stays free, as the engine reserves it for the good
    // machine when packing comparison sweeps).
    let mut rng = Prng::seed_from_u64(0x38417);
    let words: Vec<u64> = (0..view.input_count()).map(|_| rng.next_u64()).collect();
    let chunks: Vec<Vec<Injection>> = list
        .faults()
        .chunks(63)
        .map(|c| {
            c.iter()
                .enumerate()
                .map(|(slot, f)| f.injection(1u64 << slot))
                .collect()
        })
        .collect();
    eprintln!(
        "simbench: {} faults in {} chunks",
        list.faults().len(),
        chunks.len()
    );

    let gates = tvs_exec::counter("sim.gates_evaluated");
    let outputs = view.output_count();
    let mut sim = ParallelSim::new(&netlist, &view);

    // Counted correctness passes: one per mode, comparing every output word.
    let before = gates.get();
    let mut full_outs: Vec<u64> = Vec::with_capacity(chunks.len() * outputs);
    for chunk in &chunks {
        sim.eval(&words, chunk);
        full_outs.extend((0..outputs).map(|o| sim.output_word(o)));
    }
    let gates_full = gates.get() - before;

    let before = gates.get();
    let mut inc_outs: Vec<u64> = Vec::with_capacity(chunks.len() * outputs);
    sim.seed_baseline(&words, &[]);
    for chunk in &chunks {
        sim.eval_incremental(&words, chunk);
        inc_outs.extend((0..outputs).map(|o| sim.output_word(o)));
    }
    let gates_incremental = gates.get() - before;

    if full_outs != inc_outs {
        eprintln!("simbench: FAIL — incremental outputs diverged from full sweeps");
        return ExitCode::FAILURE;
    }

    // Timed passes (median of `samples`, after one warm-up each).
    let group = BenchGroup::new("sim", 5);
    let wall_full = group.bench_timed("full", || {
        for chunk in &chunks {
            sim.eval(&words, chunk);
        }
    });
    let wall_incremental = group.bench_timed("incremental", || {
        sim.seed_baseline(&words, &[]);
        for chunk in &chunks {
            sim.eval_incremental(&words, chunk);
        }
    });

    let ratio = gates_full as f64 / gates_incremental.max(1) as f64;
    let json = format!(
        "{{\n  \"circuit\": \"{}\",\n  \"gates\": {},\n  \"faults\": {},\n  \"chunks\": {},\n  \"gates_evaluated_full\": {},\n  \"gates_evaluated_incremental\": {},\n  \"gate_eval_ratio\": {:.2},\n  \"wall_ms_full\": {:.3},\n  \"wall_ms_incremental\": {:.3}\n}}\n",
        profile.name,
        netlist.gate_count(),
        list.faults().len(),
        chunks.len(),
        gates_full,
        gates_incremental,
        ratio,
        wall_full.as_secs_f64() * 1e3,
        wall_incremental.as_secs_f64() * 1e3,
    );
    std::fs::write(&out_path, &json).expect("write bench results");
    print!("{json}");

    if ratio < MIN_GATE_EVAL_RATIO {
        eprintln!(
            "simbench: FAIL — incremental evaluated {gates_incremental} gates vs \
             {gates_full} full ({ratio:.2}x, gate requires {MIN_GATE_EVAL_RATIO}x)"
        );
        return ExitCode::FAILURE;
    }
    eprintln!(
        "simbench: OK — {ratio:.1}x fewer gate evaluations \
         (deterministic gate ≥ {MIN_GATE_EVAL_RATIO}x; wall times informational), \
         results in {out_path}"
    );
    ExitCode::SUCCESS
}
