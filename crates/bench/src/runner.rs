//! Shared experiment plumbing for the table binaries and benches.

use tvs_circuits::Profile;
use tvs_exec::ThreadPool;
use tvs_netlist::Netlist;
use tvs_stitch::{StitchConfig, StitchEngine, StitchReport};

/// Default gate-count cap applied when building profiles for the table
/// binaries. The stand-in generator preserves the interface (PI/PO/scan
/// length — everything the compression mechanics see) at any scale; capping
/// the logic volume keeps a full table run in CI-friendly time. Override
/// with `--scale <f>` (a multiplier on top of this cap) or `--full`.
pub const DEFAULT_GATE_CAP: usize = 1200;

/// How a binary was asked to scale its circuits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaling {
    /// Multiplier applied to the per-profile default scale.
    pub factor: f64,
    /// Build every profile at the full published gate count.
    pub full: bool,
}

impl Default for Scaling {
    fn default() -> Self {
        Scaling {
            factor: 1.0,
            full: false,
        }
    }
}

impl Scaling {
    /// Parses `--scale <f>` and `--full` from command-line arguments.
    pub fn from_args() -> Scaling {
        let args: Vec<String> = std::env::args().collect();
        let mut scaling = Scaling::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scaling.full = true,
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        scaling.factor = v;
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        scaling
    }

    /// The effective build scale for a profile.
    pub fn effective(&self, profile: &Profile) -> f64 {
        if self.full {
            return 1.0;
        }
        let cap = DEFAULT_GATE_CAP as f64 / profile.gates as f64;
        (cap.min(1.0) * self.factor).clamp(1e-3, 1.0)
    }

    /// Builds the profile's netlist at the effective scale.
    pub fn build(&self, profile: &Profile) -> Netlist {
        profile.build_scaled(self.effective(profile))
    }
}

/// Parses `--threads <n>` from the command line. Falls back to the
/// `TVS_THREADS` environment variable and then the machine's available
/// parallelism (see [`tvs_exec::default_threads`]).
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--threads" {
            if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                return n.max(1);
            }
        }
        i += 1;
    }
    tvs_exec::default_threads()
}

/// Fans `f` out over the profiles — one worker per circuit profile — and
/// returns the results **in profile order**, so table output is byte-identical
/// at any thread count. At `threads == 1` this degenerates to a plain
/// sequential loop on the calling thread.
pub fn map_profiles<R, F>(profiles: &[Profile], threads: usize, f: F) -> Vec<R>
where
    F: Fn(&Profile) -> R + Sync,
    R: Send,
{
    let pool = ThreadPool::new(threads);
    pool.map(profiles, |_, p| f(p))
}

/// One experiment outcome row.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Benchmark name.
    pub name: String,
    /// Gate count actually built.
    pub gates: usize,
    /// The stitched run report.
    pub report: StitchReport,
}

/// Runs one stitching configuration against a profile.
///
/// # Panics
///
/// Panics if the profile's circuit cannot be processed (the generator only
/// emits valid circuits, so this indicates an internal error).
pub fn run_profile(profile: &Profile, scaling: &Scaling, config: &StitchConfig) -> RunRow {
    let netlist = scaling.build(profile);
    let gates = netlist.stats().combinational_gates;
    // The "# Panics" contract above: generated profiles are valid by
    // construction, so failure here is an internal bug. lint:allow(SRC005)
    let engine = StitchEngine::new(&netlist).expect("profiles are sequential circuits");
    let report = engine.run(config).expect("engine run"); // lint:allow(SRC005)
    RunRow {
        name: profile.name.to_owned(),
        gates,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_scale_caps_large_profiles() {
        let big = tvs_circuits::profile("s38417").unwrap();
        let small = tvs_circuits::profile("s444").unwrap();
        let s = Scaling::default();
        assert!(s.effective(&big) < 0.1);
        assert_eq!(s.effective(&small), 1.0);
        let full = Scaling {
            full: true,
            ..Scaling::default()
        };
        assert_eq!(full.effective(&big), 1.0);
    }

    #[test]
    fn run_profile_produces_coverage() {
        let p = tvs_circuits::profile("s444").unwrap();
        let row = run_profile(
            &p,
            &Scaling {
                factor: 0.3,
                full: false,
            },
            &Default::default(),
        );
        assert!(row.report.metrics.fault_coverage > 0.9);
        assert!(row.gates > 0);
    }
}
