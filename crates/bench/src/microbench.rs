//! Minimal std-only timing harness for the `cargo bench` targets.
//!
//! The workspace builds with no external dependencies (the reproduction
//! environment is offline), so the `harness = false` bench targets use this
//! deliberately small substitute instead of Criterion: a fixed warm-up, a
//! fixed sample count and a min/median/mean line per benchmark. It is meant
//! for relative A/B comparison within one run on one machine, not for
//! cross-machine statistics.

use std::hint::black_box;
// Timing is this module's whole purpose; bench output is not part of the
// deterministic result surface. lint:allow(SRC002)
use std::time::{Duration, Instant};

/// A named group of timed functions sharing a sample count.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group running `samples` timed iterations per benchmark
    /// (clamped to at least 1), after one untimed warm-up call.
    pub fn new(name: impl Into<String>, samples: usize) -> Self {
        BenchGroup {
            name: name.into(),
            samples: samples.max(1),
        }
    }

    /// Times `f` for the group's sample count and prints one result line
    /// (`group/label: min … median … mean`).
    pub fn bench<R>(&self, label: &str, f: impl FnMut() -> R) {
        let _ = self.bench_timed(label, f);
    }

    /// Like [`bench`](Self::bench), but additionally returns the median
    /// sample, for harnesses that gate or report on the measured time.
    pub fn bench_timed<R>(&self, label: &str, mut f: impl FnMut() -> R) -> Duration {
        black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now(); // lint:allow(SRC002)
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{}: min {}  median {}  mean {}  ({} samples)",
            self.name,
            label,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            self.samples
        );
        median
    }
}

/// Renders a duration with a unit suited to its magnitude.
fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let group = BenchGroup::new("test", 3);
        let mut calls = 0;
        group.bench("count", || calls += 1);
        // One warm-up plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn durations_format_with_sane_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
