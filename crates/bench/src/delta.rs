//! The delta-reuse × edit-size table behind `tvs bench delta`.
//!
//! For every requested profile the sweep builds the base netlist, takes its
//! cone manifest, then applies k-gate edits (k over `--edits`) and measures
//! how much of the base's fault classification a delta run could reuse:
//! `plan_for` is pure manifest arithmetic, so the whole table costs cone
//! hashing plus support hashing — no engine runs. The report is rendered by
//! hand into a canonical JSON string (fixed key order, fixed precision,
//! `\n` line endings) so two sweeps with the same options produce
//! byte-identical files, which is what the CI stage `cmp`s.

use tvs_delta::{plan_for, ConeManifest};
use tvs_fault::FaultList;
use tvs_netlist::{bench, GateKind, Netlist};
use tvs_stitch::{PrescreenRecord, StitchConfig};

/// Sweep parameters (all deterministic: no wall-clock inputs).
#[derive(Debug, Clone)]
pub struct DeltaOpts {
    /// Profile names to measure (a subset of the 13 built-in profiles).
    pub profiles: Vec<String>,
    /// Edit sizes: how many combinational gates each edit flips.
    pub edits: Vec<usize>,
    /// Gate-count scaling factor applied to every profile.
    pub scale: f64,
}

impl Default for DeltaOpts {
    fn default() -> Self {
        DeltaOpts {
            profiles: tvs_circuits::all_profiles()
                .iter()
                .map(|p| p.name.to_owned())
                .collect(),
            edits: vec![1, 2, 4, 8],
            scale: 1.0,
        }
    }
}

/// One (profile, edit-size) measurement.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Gates flipped in this edit.
    pub edits: usize,
    /// Collapsed faults in the edited netlist.
    pub faults_total: usize,
    /// Faults whose support survived the edit (reusable verbatim).
    pub faults_matched: usize,
    /// Cones whose hash changed or vanished.
    pub cones_dirty: usize,
}

impl DeltaRow {
    /// The fraction of the edited fault list a delta run reuses.
    pub fn reuse_ratio(&self) -> f64 {
        self.faults_matched as f64 / self.faults_total.max(1) as f64
    }
}

/// All rows for one profile.
#[derive(Debug, Clone)]
pub struct DeltaProfile {
    /// Profile name.
    pub name: String,
    /// Gate count actually built after scaling.
    pub gates: usize,
    /// Cones in the base manifest.
    pub cones: usize,
    /// One row per edit size, in request order.
    pub rows: Vec<DeltaRow>,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct DeltaResult {
    /// The options the sweep ran under.
    pub opts: DeltaOpts,
    /// Per-profile measurements, in request order.
    pub profiles: Vec<DeltaProfile>,
}

/// The same-arity dual a gate flips to in an edit.
fn dual(kind: GateKind) -> Option<GateKind> {
    match kind {
        GateKind::And => Some(GateKind::Or),
        GateKind::Or => Some(GateKind::And),
        GateKind::Nand => Some(GateKind::Nor),
        GateKind::Nor => Some(GateKind::Nand),
        GateKind::Xor => Some(GateKind::Xnor),
        GateKind::Xnor => Some(GateKind::Xor),
        GateKind::Not => Some(GateKind::Buf),
        GateKind::Buf => Some(GateKind::Not),
        GateKind::Input | GateKind::Dff => None,
    }
}

/// Rebuilds `netlist` with `k` combinational gates flipped to their duals,
/// the victims spread evenly through the gate order so edits of different
/// sizes touch different circuit regions.
fn apply_edit(netlist: &Netlist, k: usize) -> Result<Netlist, String> {
    let flippable: Vec<_> = netlist
        .gate_ids()
        .filter(|&id| dual(netlist.gate(id).kind()).is_some())
        .collect();
    if flippable.len() < k {
        return Err(format!(
            "{}: {} flippable gates < edit size {k}",
            netlist.name(),
            flippable.len()
        ));
    }
    let mut text = bench::to_string(netlist);
    for i in 0..k {
        let id = flippable[i * flippable.len() / k];
        let kind = netlist.gate(id).kind();
        let to = dual(kind).ok_or("unreachable: filtered above")?;
        let name = netlist.gate_name(id);
        let from_line = format!("{name} = {}(", kind.keyword());
        let to_line = format!("{name} = {}(", to.keyword());
        if !text.contains(&from_line) {
            return Err(format!("{}: gate {name} not found in text", netlist.name()));
        }
        text = text.replacen(&from_line, &to_line, 1);
    }
    bench::parse(netlist.name(), &text).map_err(|e| e.to_string())
}

/// Runs the sweep. Fails on unknown profile names or a profile too small
/// for the largest requested edit.
pub fn sweep(opts: &DeltaOpts) -> Result<DeltaResult, String> {
    let config = StitchConfig::default();
    let mut profiles = Vec::with_capacity(opts.profiles.len());
    for name in &opts.profiles {
        let profile =
            tvs_circuits::profile(name).ok_or_else(|| format!("unknown profile {name:?}"))?;
        let base = profile.build_scaled(opts.scale);
        // Default records suffice: reuse arithmetic only compares support
        // hashes, never the record contents.
        let records = vec![PrescreenRecord::default(); FaultList::collapsed(&base).len()];
        let manifest = ConeManifest::build(&base, config.fingerprint(), &records)
            .map_err(|e| format!("{name}: {e}"))?;
        let mut rows = Vec::with_capacity(opts.edits.len());
        for &k in &opts.edits {
            let edited = apply_edit(&base, k)?;
            let plan = plan_for(&manifest, &edited, config.fingerprint())
                .map_err(|e| format!("{name}/{k}: {e}"))?;
            rows.push(DeltaRow {
                edits: k,
                faults_total: plan.faults_total,
                faults_matched: plan.faults_matched,
                cones_dirty: plan.cones_dirty,
            });
        }
        profiles.push(DeltaProfile {
            name: name.clone(),
            gates: base.gate_count(),
            cones: manifest.cones.len(),
            rows,
        });
    }
    Ok(DeltaResult {
        opts: opts.clone(),
        profiles,
    })
}

/// Gate failures: every profile's one-gate edit must reuse strictly more
/// than nothing and at least `floor` of its fault list. Returns
/// `(profile, reuse_ratio)` for each violation.
pub fn reuse_failures(result: &DeltaResult, floor: f64) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for profile in &result.profiles {
        for row in &profile.rows {
            if row.edits != 1 {
                continue;
            }
            let ratio = row.reuse_ratio();
            if row.faults_matched == 0 || ratio < floor {
                out.push((profile.name.clone(), ratio));
            }
        }
    }
    out
}

/// Renders the canonical byte-stable JSON document.
pub fn to_json(result: &DeltaResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tvs-bench-delta v1\",\n");
    s.push_str(&format!("  \"scale\": \"{:.4}\",\n", result.opts.scale));
    s.push_str("  \"profiles\": [\n");
    for (i, profile) in result.profiles.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", profile.name));
        s.push_str(&format!("      \"gates\": {},\n", profile.gates));
        s.push_str(&format!("      \"cones\": {},\n", profile.cones));
        s.push_str("      \"rows\": [\n");
        for (j, row) in profile.rows.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"edits\": {}, \"faults_total\": {}, \
                 \"faults_matched\": {}, \"reuse_ratio\": {:.4}, \
                 \"cones_dirty\": {}}}{}\n",
                row.edits,
                row.faults_total,
                row.faults_matched,
                row.reuse_ratio(),
                row.cones_dirty,
                if j + 1 < profile.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < result.profiles.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_on_one_small_profile_is_byte_stable_and_reuses_most_faults() {
        let opts = DeltaOpts {
            profiles: vec!["s444".into()],
            edits: vec![1, 2],
            scale: 1.0,
        };
        let first = sweep(&opts).expect("sweep runs");
        let second = sweep(&opts).expect("sweep runs");
        assert_eq!(to_json(&first), to_json(&second), "sweep not byte-stable");
        let rows = &first.profiles[0].rows;
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].faults_matched > 0,
            "a one-gate edit must leave reusable faults"
        );
        assert!(
            rows[0].faults_matched >= rows[1].faults_matched,
            "larger edits cannot reuse more than smaller ones here"
        );
        assert!(reuse_failures(&first, 0.3).is_empty());
    }

    #[test]
    fn unknown_profiles_are_rejected() {
        let opts = DeltaOpts {
            profiles: vec!["s000".into()],
            ..DeltaOpts::default()
        };
        assert!(sweep(&opts).is_err());
    }
}
