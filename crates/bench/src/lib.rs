//! Reproduction harness support for the TVS toolkit.
//!
//! The table binaries (`table1` … `table5`) and the std-only bench targets
//! share the helpers in this crate: profile setup, table formatting, the
//! [`microbench`] timing harness and the standard experiment runner
//! configurations matching each table of the DATE 2003 paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delta;
pub mod microbench;
pub mod runner;
pub mod strategies;
pub mod tables;
