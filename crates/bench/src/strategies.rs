//! The strategies × profiles compression/coverage sweep behind
//! `tvs bench strategies`.
//!
//! Every registered strategy runs on every requested profile under one
//! deterministic work budget, and each profile's rows are reduced to a
//! Pareto front over (tester-memory ratio ↓, attainable fault coverage ↑).
//! The report is rendered by hand into a canonical JSON string — fixed key
//! order, fixed float precision, `\n` line endings — so two sweeps with the
//! same inputs produce byte-identical files, which is exactly what the CI
//! stage `cmp`s.

use tvs_circuits::Profile;
use tvs_stitch::{StitchConfig, StrategyId, ALL_STRATEGIES};

use crate::runner::{run_profile, Scaling};

/// Sweep parameters (all deterministic: no wall-clock inputs).
#[derive(Debug, Clone)]
pub struct SweepOpts {
    /// Profile names to run (a subset of the 13 built-in profiles).
    pub profiles: Vec<String>,
    /// Deterministic work budget per (profile, strategy) run.
    pub budget: u64,
    /// Gate-count scaling factor handed to [`Scaling`].
    pub scale: f64,
    /// Worker threads per run (results are thread-count invariant).
    pub threads: usize,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            profiles: tvs_circuits::all_profiles()
                .iter()
                .map(|p| p.name.to_owned())
                .collect(),
            budget: 20_000,
            scale: 0.08,
            threads: 1,
        }
    }
}

/// One (profile, strategy) measurement.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Strategy name as accepted by `--strategy`.
    pub strategy: &'static str,
    /// Attainable fault coverage reached under the budget.
    pub coverage: f64,
    /// Tester-memory ratio (the paper's `m`).
    pub memory_ratio: f64,
    /// Test-application-time ratio (the paper's `t`).
    pub time_ratio: f64,
    /// Stitched vectors applied (the paper's `TV`).
    pub stitched_vectors: usize,
    /// Fallback full-shift vectors (the paper's `ex`).
    pub extra_vectors: usize,
    /// Whether this row sits on the profile's Pareto front.
    pub pareto: bool,
}

/// All rows for one profile.
#[derive(Debug, Clone)]
pub struct SweepProfile {
    /// Profile name.
    pub name: String,
    /// Gate count actually built after scaling.
    pub gates: usize,
    /// One row per strategy, in [`ALL_STRATEGIES`] order.
    pub rows: Vec<SweepRow>,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The options the sweep ran under.
    pub opts: SweepOpts,
    /// Per-profile measurements, in request order.
    pub profiles: Vec<SweepProfile>,
}

/// Marks the Pareto-optimal rows: a row is dominated when some other row
/// has coverage ≥ and memory ratio ≤ with at least one strict inequality.
/// Ties (equal on both axes) all stay on the front, which keeps the
/// marking order-independent and therefore deterministic.
fn mark_pareto(rows: &mut [SweepRow]) {
    let snapshot: Vec<(f64, f64)> = rows.iter().map(|r| (r.coverage, r.memory_ratio)).collect();
    for (i, row) in rows.iter_mut().enumerate() {
        let (c, m) = snapshot[i];
        row.pareto = !snapshot
            .iter()
            .enumerate()
            .any(|(j, &(oc, om))| j != i && oc >= c && om <= m && (oc > c || om < m));
    }
}

/// Runs the sweep. Fails only on unknown profile names; engine failures on
/// a profile are impossible by construction (every built-in profile is
/// sequential and scan-chained).
pub fn sweep(opts: &SweepOpts) -> Result<SweepResult, String> {
    let mut resolved: Vec<Profile> = Vec::with_capacity(opts.profiles.len());
    for name in &opts.profiles {
        resolved
            .push(tvs_circuits::profile(name).ok_or_else(|| format!("unknown profile {name:?}"))?);
    }
    let scaling = Scaling {
        factor: opts.scale,
        full: false,
    };
    let mut profiles = Vec::with_capacity(resolved.len());
    for profile in &resolved {
        let mut gates = 0;
        let mut rows = Vec::with_capacity(ALL_STRATEGIES.len());
        for strategy in ALL_STRATEGIES {
            let cfg = StitchConfig {
                strategy,
                budget: Some(opts.budget),
                threads: opts.threads,
                ..StitchConfig::default()
            };
            let run = run_profile(profile, &scaling, &cfg);
            gates = run.gates;
            let m = &run.report.metrics;
            rows.push(SweepRow {
                strategy: strategy.name(),
                coverage: m.fault_coverage,
                memory_ratio: m.memory_ratio,
                time_ratio: m.time_ratio,
                stitched_vectors: m.stitched_vectors,
                extra_vectors: m.extra_vectors,
                pareto: false,
            });
        }
        mark_pareto(&mut rows);
        profiles.push(SweepProfile {
            name: profile.name.to_owned(),
            gates,
            rows,
        });
    }
    Ok(SweepResult {
        opts: opts.clone(),
        profiles,
    })
}

/// Coverage regressions against the `MostFaults` baseline column:
/// `(profile, strategy, coverage, baseline coverage)` for every row whose
/// coverage falls strictly below the same profile's `most` row.
pub fn coverage_regressions(result: &SweepResult) -> Vec<(String, &'static str, f64, f64)> {
    let mut out = Vec::new();
    for profile in &result.profiles {
        let Some(baseline) = profile
            .rows
            .iter()
            .find(|r| r.strategy == StrategyId::MostFaults.name())
        else {
            continue;
        };
        for row in &profile.rows {
            if row.coverage < baseline.coverage {
                out.push((
                    profile.name.clone(),
                    row.strategy,
                    row.coverage,
                    baseline.coverage,
                ));
            }
        }
    }
    out
}

/// Renders the canonical byte-stable JSON document.
///
/// Ratios print with four decimals and counts as plain integers; the float
/// values themselves are deterministic (the engine is bit-identical at any
/// thread count), so the rendering is too.
pub fn to_json(result: &SweepResult) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tvs-bench-strategies v1\",\n");
    s.push_str(&format!("  \"budget\": {},\n", result.opts.budget));
    s.push_str(&format!("  \"scale\": \"{:.4}\",\n", result.opts.scale));
    s.push_str("  \"profiles\": [\n");
    for (i, profile) in result.profiles.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", profile.name));
        s.push_str(&format!("      \"gates\": {},\n", profile.gates));
        s.push_str("      \"rows\": [\n");
        for (j, row) in profile.rows.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"strategy\": \"{}\", \"coverage\": {:.4}, \
                 \"memory_ratio\": {:.4}, \"time_ratio\": {:.4}, \
                 \"stitched_vectors\": {}, \"extra_vectors\": {}, \
                 \"pareto\": {}}}{}\n",
                row.strategy,
                row.coverage,
                row.memory_ratio,
                row.time_ratio,
                row.stitched_vectors,
                row.extra_vectors,
                row.pareto,
                if j + 1 < profile.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("      ],\n");
        let front: Vec<String> = profile
            .rows
            .iter()
            .filter(|r| r.pareto)
            .map(|r| format!("\"{}\"", r.strategy))
            .collect();
        s.push_str(&format!("      \"pareto\": [{}]\n", front.join(", ")));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < result.profiles.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(strategy: &'static str, coverage: f64, memory: f64) -> SweepRow {
        SweepRow {
            strategy,
            coverage,
            memory_ratio: memory,
            time_ratio: memory,
            stitched_vectors: 1,
            extra_vectors: 0,
            pareto: false,
        }
    }

    #[test]
    fn pareto_marking_keeps_ties_and_drops_dominated_rows() {
        let mut rows = vec![
            row("a", 0.99, 0.80),
            row("b", 0.99, 0.70), // dominates a
            row("c", 1.00, 0.90), // best coverage: on the front
            row("d", 0.99, 0.70), // tie with b: both stay
            row("e", 0.98, 0.95), // dominated by everything
        ];
        mark_pareto(&mut rows);
        let front: Vec<&str> = rows
            .iter()
            .filter(|r| r.pareto)
            .map(|r| r.strategy)
            .collect();
        assert_eq!(front, ["b", "c", "d"]);
    }

    #[test]
    fn sweep_on_one_small_profile_is_byte_stable_and_gated() {
        let opts = SweepOpts {
            profiles: vec!["s444".into()],
            budget: 20_000,
            scale: 0.08,
            threads: 1,
        };
        let first = sweep(&opts).expect("sweep runs");
        let second = sweep(&opts).expect("sweep runs");
        assert_eq!(to_json(&first), to_json(&second), "sweep not byte-stable");
        assert_eq!(first.profiles[0].rows.len(), ALL_STRATEGIES.len());
        assert!(
            first.profiles[0].rows.iter().any(|r| r.pareto),
            "every profile has a nonempty Pareto front"
        );
    }

    #[test]
    fn unknown_profiles_are_rejected() {
        let opts = SweepOpts {
            profiles: vec!["s000".into()],
            ..SweepOpts::default()
        };
        assert!(sweep(&opts).is_err());
    }
}
