//! Plain-text table formatting for the reproduction binaries.

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use tvs_bench::tables::TextTable;
///
/// let mut t = TextTable::new(vec!["circ", "m", "t"]);
/// t.row(vec!["s444".into(), "0.73".into(), "0.53".into()]);
/// let s = t.to_string();
/// assert!(s.contains("s444"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<&str>) -> Self {
        TextTable {
            header: header.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table.
    fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate().take(cols) {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, w) in width.iter().enumerate().take(cols) {
                let cell = cells.get(c).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>w$}  "));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a ratio with two decimals, the tables' house style.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Computes the mean of an iterator of ratios.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].contains("xxxx"));
    }

    #[test]
    fn ratio_and_mean() {
        assert_eq!(ratio(0.731), "0.73");
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(std::iter::empty::<f64>()), 0.0);
    }
}
