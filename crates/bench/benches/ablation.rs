//! Ablation benches for design choices beyond the paper's tables:
//! don't-care fill strategy, HXOR tap count, PODEM backtrack budget and the
//! greedy candidate-pool size. EXPERIMENTS.md records the metric outcomes;
//! these benches track the runtime cost of each choice.

use std::hint::black_box;

use tvs_atpg::{AtpgConfig, FillStrategy, PodemConfig};
use tvs_bench::microbench::BenchGroup;
use tvs_bench::runner::{run_profile, Scaling};
use tvs_scan::ObserveTransform;
use tvs_stitch::StitchConfig;

fn scaling() -> Scaling {
    Scaling {
        factor: 0.4,
        full: false,
    }
}

fn bench_fill_strategy() {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let group = BenchGroup::new("ablation_fill", 10);
    for (label, fill) in [
        ("random_fill", FillStrategy::Random),
        ("zero_fill", FillStrategy::Zero),
    ] {
        group.bench(label, || {
            let cfg = StitchConfig {
                baseline: AtpgConfig {
                    fill,
                    ..AtpgConfig::default()
                },
                ..StitchConfig::default()
            };
            let row = run_profile(&profile, &scaling(), &cfg);
            black_box(row.report.metrics.memory_ratio)
        });
    }
}

fn bench_hxor_taps() {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let group = BenchGroup::new("ablation_hxor_taps", 10);
    for taps in [2usize, 3, 5] {
        group.bench(&format!("taps_{taps}"), || {
            let cfg = StitchConfig {
                observe: ObserveTransform::HorizontalXor(taps),
                ..StitchConfig::default()
            };
            let row = run_profile(&profile, &scaling(), &cfg);
            black_box(row.report.metrics.memory_ratio)
        });
    }
}

fn bench_backtrack_budget() {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let group = BenchGroup::new("ablation_backtracks", 10);
    for limit in [16u32, 256, 2048] {
        group.bench(&format!("limit_{limit}"), || {
            let cfg = StitchConfig {
                podem: PodemConfig {
                    backtrack_limit: limit,
                    ..PodemConfig::default()
                },
                ..StitchConfig::default()
            };
            let row = run_profile(&profile, &scaling(), &cfg);
            black_box(row.report.metrics.fault_coverage)
        });
    }
}

fn bench_candidate_pool() {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let group = BenchGroup::new("ablation_candidates", 10);
    for pool in [2usize, 8, 16] {
        group.bench(&format!("pool_{pool}"), || {
            let cfg = StitchConfig {
                candidates: pool,
                ..StitchConfig::default()
            };
            let row = run_profile(&profile, &scaling(), &cfg);
            black_box(row.report.metrics.memory_ratio)
        });
    }
}

fn main() {
    bench_fill_strategy();
    bench_hxor_taps();
    bench_backtrack_budget();
    bench_candidate_pool();
}
