//! Ablation benches for design choices beyond the paper's tables:
//! don't-care fill strategy, HXOR tap count, PODEM backtrack budget and the
//! greedy candidate-pool size. EXPERIMENTS.md records the metric outcomes;
//! these benches track the runtime cost of each choice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tvs_atpg::{AtpgConfig, FillStrategy, PodemConfig};
use tvs_bench::runner::{run_profile, Scaling};
use tvs_scan::ObserveTransform;
use tvs_stitch::StitchConfig;

fn scaling() -> Scaling {
    Scaling { factor: 0.4, full: false }
}

fn bench_fill_strategy(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let mut group = c.benchmark_group("ablation_fill");
    group.sample_size(10);
    for (label, fill) in [("random_fill", FillStrategy::Random), ("zero_fill", FillStrategy::Zero)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = StitchConfig {
                    baseline: AtpgConfig { fill, ..AtpgConfig::default() },
                    ..StitchConfig::default()
                };
                let row = run_profile(&profile, &scaling(), &cfg);
                black_box(row.report.metrics.memory_ratio)
            })
        });
    }
    group.finish();
}

fn bench_hxor_taps(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let mut group = c.benchmark_group("ablation_hxor_taps");
    group.sample_size(10);
    for taps in [2usize, 3, 5] {
        group.bench_function(format!("taps_{taps}"), |b| {
            b.iter(|| {
                let cfg = StitchConfig {
                    observe: ObserveTransform::HorizontalXor(taps),
                    ..StitchConfig::default()
                };
                let row = run_profile(&profile, &scaling(), &cfg);
                black_box(row.report.metrics.memory_ratio)
            })
        });
    }
    group.finish();
}

fn bench_backtrack_budget(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let mut group = c.benchmark_group("ablation_backtracks");
    group.sample_size(10);
    for limit in [16u32, 256, 2048] {
        group.bench_function(format!("limit_{limit}"), |b| {
            b.iter(|| {
                let cfg = StitchConfig {
                    podem: PodemConfig { backtrack_limit: limit, ..PodemConfig::default() },
                    ..StitchConfig::default()
                };
                let row = run_profile(&profile, &scaling(), &cfg);
                black_box(row.report.metrics.fault_coverage)
            })
        });
    }
    group.finish();
}

fn bench_candidate_pool(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s444").expect("profile exists");
    let mut group = c.benchmark_group("ablation_candidates");
    group.sample_size(10);
    for pool in [2usize, 8, 16] {
        group.bench_function(format!("pool_{pool}"), |b| {
            b.iter(|| {
                let cfg = StitchConfig { candidates: pool, ..StitchConfig::default() };
                let row = run_profile(&profile, &scaling(), &cfg);
                black_box(row.report.metrics.memory_ratio)
            })
        });
    }
    group.finish();
}

criterion_group!(
    ablation,
    bench_fill_strategy,
    bench_hxor_taps,
    bench_backtrack_budget,
    bench_candidate_pool
);
criterion_main!(ablation);
