//! Microbenchmarks of the substrate layers: bit-parallel simulation, fault
//! simulation, SCOAP, PODEM and scan-chain mechanics.

use std::hint::black_box;

use tvs_atpg::{Podem, PodemResult};
use tvs_bench::microbench::BenchGroup;
use tvs_fault::{FaultList, FaultSim, Scoap};
use tvs_logic::{BitVec, Cube, Prng};
use tvs_scan::{ObserveTransform, ScanChain};
use tvs_sim::ParallelSim;

fn bench_parallel_sim(group: &BenchGroup) {
    let profile = tvs_circuits::profile("s953").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    let mut sim = ParallelSim::new(&netlist, &view);
    let mut rng = Prng::seed_from_u64(1);
    let words: Vec<u64> = (0..view.input_count()).map(|_| rng.next_u64()).collect();
    group.bench("parallel_sim_64_patterns_s953", || {
        sim.eval(black_box(&words), &[]);
        black_box(sim.output_word(0))
    });
}

fn bench_fault_sim(group: &BenchGroup) {
    let profile = tvs_circuits::profile("s953").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    let faults = FaultList::collapsed(&netlist);
    let mut sim = FaultSim::new(&netlist, &view);
    let mut rng = Prng::seed_from_u64(2);
    let pattern: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
    let subset: Vec<_> = faults.faults().iter().copied().take(63).collect();
    group.bench("fault_sim_63_faults_s953", || {
        black_box(sim.detect(black_box(&pattern), &subset))
    });
}

fn bench_scoap(group: &BenchGroup) {
    let profile = tvs_circuits::profile("s1423").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    group.bench("scoap_s1423", || black_box(Scoap::compute(&netlist, &view)));
}

fn bench_podem(group: &BenchGroup) {
    let profile = tvs_circuits::profile("s953").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    let faults = FaultList::collapsed(&netlist);
    let mut podem = Podem::new(&netlist, &view);
    let free = Cube::unspecified(view.input_count());
    let sample: Vec<_> = faults
        .faults()
        .iter()
        .copied()
        .step_by(29)
        .take(16)
        .collect();
    group.bench("podem_16_faults_s953", || {
        let mut tests = 0;
        for &f in &sample {
            if matches!(podem.generate(f, &free), PodemResult::Test(_)) {
                tests += 1;
            }
        }
        black_box(tests)
    });
}

fn bench_chain_shift(group: &BenchGroup) {
    let chain = ScanChain::new(1728); // s35932-sized
    let mut rng = Prng::seed_from_u64(3);
    let image: BitVec = (0..1728).map(|_| rng.next_bool()).collect();
    let incoming: BitVec = (0..108).map(|_| rng.next_bool()).collect();
    group.bench("chain_shift_108_of_1728_direct", || {
        black_box(chain.shift(&image, &incoming, ObserveTransform::Direct))
    });
    group.bench("chain_shift_108_of_1728_hxor3", || {
        black_box(chain.shift(&image, &incoming, ObserveTransform::HorizontalXor(3)))
    });
}

fn main() {
    let group = BenchGroup::new("substrates", 20);
    bench_parallel_sim(&group);
    bench_fault_sim(&group);
    bench_scoap(&group);
    bench_podem(&group);
    bench_chain_shift(&group);
}
