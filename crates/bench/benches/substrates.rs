//! Microbenchmarks of the substrate layers: bit-parallel simulation, fault
//! simulation, SCOAP, PODEM and scan-chain mechanics.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::hint::black_box;

use tvs_atpg::{Podem, PodemResult};
use tvs_fault::{FaultList, FaultSim, Scoap};
use tvs_logic::{BitVec, Cube};
use tvs_scan::{ObserveTransform, ScanChain};
use tvs_sim::ParallelSim;

fn bench_parallel_sim(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s953").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    let mut sim = ParallelSim::new(&netlist, &view);
    let mut rng = SmallRng::seed_from_u64(1);
    let words: Vec<u64> = (0..view.input_count()).map(|_| rng.gen()).collect();
    c.bench_function("parallel_sim_64_patterns_s953", |b| {
        b.iter(|| {
            sim.eval(black_box(&words), &[]);
            black_box(sim.output_word(0))
        })
    });
}

fn bench_fault_sim(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s953").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    let faults = FaultList::collapsed(&netlist);
    let mut sim = FaultSim::new(&netlist, &view);
    let mut rng = SmallRng::seed_from_u64(2);
    let pattern: BitVec = (0..view.input_count()).map(|_| rng.gen::<bool>()).collect();
    let subset: Vec<_> = faults.faults().iter().copied().take(63).collect();
    c.bench_function("fault_sim_63_faults_s953", |b| {
        b.iter(|| black_box(sim.detect(black_box(&pattern), &subset)))
    });
}

fn bench_scoap(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s1423").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    c.bench_function("scoap_s1423", |b| {
        b.iter(|| black_box(Scoap::compute(&netlist, &view)))
    });
}

fn bench_podem(c: &mut Criterion) {
    let profile = tvs_circuits::profile("s953").expect("profile exists");
    let netlist = profile.build();
    let view = netlist.scan_view().expect("valid view");
    let faults = FaultList::collapsed(&netlist);
    let mut podem = Podem::new(&netlist, &view);
    let free = Cube::unspecified(view.input_count());
    let sample: Vec<_> = faults.faults().iter().copied().step_by(29).take(16).collect();
    c.bench_function("podem_16_faults_s953", |b| {
        b.iter(|| {
            let mut tests = 0;
            for &f in &sample {
                if matches!(podem.generate(f, &free), PodemResult::Test(_)) {
                    tests += 1;
                }
            }
            black_box(tests)
        })
    });
}

fn bench_chain_shift(c: &mut Criterion) {
    let chain = ScanChain::new(1728); // s35932-sized
    let mut rng = SmallRng::seed_from_u64(3);
    let image: BitVec = (0..1728).map(|_| rng.gen::<bool>()).collect();
    let incoming: BitVec = (0..108).map(|_| rng.gen::<bool>()).collect();
    c.bench_function("chain_shift_108_of_1728_direct", |b| {
        b.iter(|| black_box(chain.shift(&image, &incoming, ObserveTransform::Direct)))
    });
    c.bench_function("chain_shift_108_of_1728_hxor3", |b| {
        b.iter(|| black_box(chain.shift(&image, &incoming, ObserveTransform::HorizontalXor(3))))
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_parallel_sim, bench_fault_sim, bench_scoap, bench_podem, bench_chain_shift
}
criterion_main!(substrates);
