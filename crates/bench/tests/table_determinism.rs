//! The table binaries must print byte-identical stdout at every thread
//! count: profiles fan out one-per-worker but rows are reduced in profile
//! order (DESIGN.md §6.4).

use std::process::Command;

fn table_stdout(bin: &str, threads: &str) -> String {
    let out = Command::new(bin)
        .args(["--scale", "0.02", "--threads", threads])
        .output()
        .expect("run table binary");
    assert!(out.status.success(), "{bin} --threads {threads} failed");
    String::from_utf8(out.stdout).expect("utf-8 table")
}

fn assert_thread_count_invariant(bin: &str, marker: &str) {
    let seq = table_stdout(bin, "1");
    let par = table_stdout(bin, "8");
    assert!(seq.contains(marker), "unexpected output: {seq}");
    assert_eq!(seq, par, "{bin} stdout diverged between 1 and 8 threads");
}

#[test]
fn table2_output_is_byte_identical_at_1_and_8_threads() {
    assert_thread_count_invariant(env!("CARGO_BIN_EXE_table2"), "Table 2");
}

#[test]
fn table3_output_is_byte_identical_at_1_and_8_threads() {
    // Table 3 additionally exercises the VXOR/HXOR transform paths and the
    // BTreeSet-based target bookkeeping in the stitch engine.
    assert_thread_count_invariant(env!("CARGO_BIN_EXE_table3"), "Table 3");
}
