//! The table binaries must print byte-identical stdout at every thread
//! count: profiles fan out one-per-worker but rows are reduced in profile
//! order (DESIGN.md §6.4).

use std::process::Command;

fn table2_stdout(threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_table2"))
        .args(["--scale", "0.02", "--threads", threads])
        .output()
        .expect("run table2");
    assert!(out.status.success(), "table2 --threads {threads} failed");
    String::from_utf8(out.stdout).expect("utf-8 table")
}

#[test]
fn table2_output_is_byte_identical_at_1_and_8_threads() {
    let seq = table2_stdout("1");
    let par = table2_stdout("8");
    assert!(seq.contains("Table 2"), "unexpected output: {seq}");
    assert_eq!(seq, par, "table2 stdout diverged between 1 and 8 threads");
}
