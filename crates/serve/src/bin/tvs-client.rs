//! Command-line client for a `tvs serve` daemon.
//!
//! ```text
//! tvs-client --addr HOST:PORT submit [--wait] [--fetch [--out FILE]]
//!            [--name N] [stitch options] <circuit.bench>
//! tvs-client --addr HOST:PORT lint   [--name N] <circuit.bench>
//! tvs-client --addr HOST:PORT status <job>
//! tvs-client --addr HOST:PORT wait   <job>
//! tvs-client --addr HOST:PORT fetch  <job> [--out FILE]
//! tvs-client --addr HOST:PORT stats
//! tvs-client --addr HOST:PORT shutdown
//! ```
//!
//! Stitch options mirror `tvs run`: `--seed N`, `--fixed K`, `--strategy S`,
//! `--vxor`, `--hxor G`, `--budget N`, `--threads N`.
//!
//! Exit codes: 0 success, 2 usage, 8 any server/transport error. Server
//! errors print as `tvs-client: [<wire-code>] <message>` — the bracketed
//! code (`busy`, `unknown-job`, `version`, …) is stable for scripting.

use std::fs;
use std::process::ExitCode;

use tvs_serve::json::Value;
use tvs_serve::{Client, ServeError};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(message)) => {
            eprintln!("tvs-client: {message}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(Failure::Serve(e)) => {
            // The bracketed wire code is stable; scripts branch on it
            // (e.g. `[busy]`, `[unknown-job]`) instead of parsing prose.
            eprintln!("tvs-client: [{}] {e}", e.wire_code());
            ExitCode::from(8)
        }
    }
}

const USAGE: &str = "\
usage:
  tvs-client --addr HOST:PORT submit [--wait] [--fetch [--out FILE]]
             [--name N] [--seed N] [--fixed K] [--strategy S] [--vxor]
             [--hxor G] [--budget N] [--threads N] <circuit.bench>
  tvs-client --addr HOST:PORT lint   [--name N] <circuit.bench>
  tvs-client --addr HOST:PORT status <job>
  tvs-client --addr HOST:PORT wait   <job>
  tvs-client --addr HOST:PORT fetch  <job> [--out FILE]
  tvs-client --addr HOST:PORT stats
  tvs-client --addr HOST:PORT shutdown";

enum Failure {
    Usage(String),
    Serve(ServeError),
}

impl From<ServeError> for Failure {
    fn from(e: ServeError) -> Self {
        Failure::Serve(e)
    }
}

fn usage(message: impl Into<String>) -> Failure {
    Failure::Usage(message.into())
}

fn run(args: &[String]) -> Result<(), Failure> {
    let mut addr: Option<&str> = None;
    let mut rest: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            addr = args.get(i + 1).map(String::as_str);
            i += 2;
        } else {
            rest.push(&args[i]);
            i += 1;
        }
    }
    let addr = addr.ok_or_else(|| usage("--addr HOST:PORT is required"))?;
    let verb = rest.first().ok_or_else(|| usage("missing verb"))?;
    let mut client = Client::connect(addr)?;
    match verb.as_str() {
        "submit" => submit(&mut client, &rest[1..]),
        "lint" => lint(&mut client, &rest[1..]),
        "status" | "wait" => {
            let job = rest.get(1).ok_or_else(|| usage("missing job id"))?;
            let doc = if verb.as_str() == "wait" {
                client.wait(job)?
            } else {
                client.status(job)?
            };
            print_status(&doc);
            Ok(())
        }
        "fetch" => {
            let job = rest.get(1).ok_or_else(|| usage("missing job id"))?;
            let out = flag_value(&rest[2..], "--out");
            let artifact = client.fetch(job)?;
            emit_artifact(&artifact, out)
        }
        "stats" => {
            let doc = client.stats()?;
            println!("{}", doc.to_text());
            Ok(())
        }
        "shutdown" => {
            client.shutdown()?;
            println!("server draining");
            Ok(())
        }
        other => Err(usage(format!("unknown verb {other:?}"))),
    }
}

fn submit(client: &mut Client, args: &[&String]) -> Result<(), Failure> {
    let mut wait = false;
    let mut fetch = false;
    let mut out: Option<&str> = None;
    let mut name: Option<&str> = None;
    let mut config: Vec<(String, Value)> = Vec::new();
    let mut bench_path: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut take = |what: &str| -> Result<&str, Failure> {
            i += 1;
            args.get(i)
                .map(|s| s.as_str())
                .ok_or_else(|| usage(format!("{arg} needs {what}")))
        };
        match arg {
            "--wait" => wait = true,
            "--fetch" => fetch = true,
            "--out" => out = Some(take("a path")?),
            "--name" => name = Some(take("a name")?),
            "--seed" => config.push(("seed".into(), num(take("a seed")?)?)),
            "--fixed" => config.push(("fixed".into(), num(take("a shift size")?)?)),
            "--select" => config.push(("select".into(), Value::str(take("a strategy")?))),
            "--strategy" => config.push(("strategy".into(), Value::str(take("a strategy")?))),
            "--vxor" => config.push(("vxor".into(), Value::Bool(true))),
            "--hxor" => config.push(("hxor".into(), num(take("a tap count")?)?)),
            "--budget" => config.push(("budget".into(), num(take("a budget")?)?)),
            "--threads" => config.push(("threads".into(), num(take("a thread count")?)?)),
            other if other.starts_with("--") => {
                return Err(usage(format!("unknown option {other:?}")))
            }
            path => bench_path = Some(path),
        }
        i += 1;
    }
    let path = bench_path.ok_or_else(|| usage("missing <circuit.bench>"))?;
    let bench = fs::read_to_string(path).map_err(|e| Failure::Serve(ServeError::io(path, e)))?;
    let default_name = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".bench");
    let (job, admission) =
        client.submit(name.unwrap_or(default_name), &bench, Value::Obj(config))?;
    println!("job {job} admission {admission}");
    if wait {
        let doc = client.wait(&job)?;
        print_status(&doc);
    }
    if fetch {
        let artifact = client.fetch(&job)?;
        emit_artifact(&artifact, out)?;
    }
    Ok(())
}

fn lint(client: &mut Client, args: &[&String]) -> Result<(), Failure> {
    let name = flag_value(args, "--name");
    let path = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| !a.starts_with("--"))
        .find(|a| Some(*a) != name)
        .ok_or_else(|| usage("missing <circuit.bench>"))?;
    let bench = fs::read_to_string(path).map_err(|e| Failure::Serve(ServeError::io(path, e)))?;
    let default_name = path
        .rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".bench");
    let (admitted, doc) = client.lint(name.unwrap_or(default_name), &bench)?;
    println!("{}", doc.to_text());
    println!("admitted {admitted}");
    Ok(())
}

fn num(text: &str) -> Result<Value, Failure> {
    text.parse::<u64>()
        .map(Value::num_u64)
        .map_err(|_| usage(format!("{text:?} is not a number")))
}

fn flag_value<'a>(args: &'a [&String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn print_status(doc: &Value) {
    let get = |k: &str| doc.get(k).map(Value::to_text).unwrap_or_default();
    println!(
        "state {} key {} cycle {} caught {} hidden {} uncaught {}",
        get("state"),
        get("key"),
        get("cycle"),
        get("caught"),
        get("hidden"),
        get("uncaught"),
    );
}

fn emit_artifact(artifact: &Value, out: Option<&str>) -> Result<(), Failure> {
    let text = artifact.to_text();
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| Failure::Serve(ServeError::io(path, e)))?;
            let key = artifact.get("key").and_then(Value::as_str).unwrap_or("?");
            println!("artifact {key} written to {path}");
        }
        None => println!("{text}"),
    }
    Ok(())
}
