//! **tvs-serve** — the batching compression service.
//!
//! Stitched test generation (the core of the DATE 2003 flow, see
//! `tvs-stitch`) is CPU-minutes per circuit but a pure function of
//! `(netlist, configuration)`. This crate exploits that purity end to end:
//!
//! * a **TCP daemon** ([`Server`]) speaking a length-prefixed JSON protocol
//!   ([`proto`]) with ops `submit`, `status`, `wait`, `fetch`, `stats` and
//!   `shutdown`;
//! * a **content-addressed artifact cache** ([`ArtifactStore`]): the key is
//!   the FNV fingerprint of the canonicalized `.bench` source combined with
//!   the [`StitchConfig`](tvs_stitch::StitchConfig) fingerprint, so a warm
//!   fetch never re-runs the engine and formatting differences cannot split
//!   the cache;
//! * **single-flight deduplication** ([`JobTable`]): any number of
//!   concurrent identical submissions coalesce onto one engine run, whose
//!   cloneable [`tvs_exec::JobHandle`] fans the result out to every waiter;
//! * **bounded admission**: engine runs execute on a
//!   [`tvs_exec::JobQueue`]; past its capacity clients get a typed `busy`
//!   rejection instead of an unbounded backlog.
//!
//! Everything is std-only; determinism of the engine itself is untouched —
//! connection threads (the one allowed use of raw threads outside
//! `crates/exec`, see the lint table) only wait on sockets and job handles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
mod error;
pub mod jobs;
pub mod json;
pub mod proto;
mod server;

pub use cache::{ArtifactKey, ArtifactStore};
pub use client::Client;
pub use error::ServeError;
pub use jobs::{Admission, JobStatus, JobTable};
pub use server::{config_from_wire, Server, ServerConfig};
