//! **tvs-serve** — the batching compression service.
//!
//! Stitched test generation (the core of the DATE 2003 flow, see
//! `tvs-stitch`) is CPU-minutes per circuit but a pure function of
//! `(netlist, configuration)`. This crate exploits that purity end to end:
//!
//! * a **TCP daemon** ([`Server`]) speaking a length-prefixed, versioned
//!   JSON protocol ([`proto`]) with ops `submit`, `lint`, `status`, `wait`,
//!   `fetch`, `stats` and `shutdown`;
//! * the **transport-agnostic serving core** re-exported from
//!   [`tvs_core`]: the content-addressed [`ArtifactStore`], the
//!   single-flight [`JobTable`] with bounded admission, and the
//!   deterministic [`json`] value model (numbers keep their raw source
//!   text, so artifacts re-serialize byte-identically).
//!
//! This crate owns the *wire*: framing, the request grammar, the
//! [`ServeError`] taxonomy with stable wire codes, and the blocking
//! [`Client`]. The job/cache/queue mechanics live in `tvs-core`, shared
//! with the fleet coordinator (`tvs-fleet`) that shards submissions across
//! many of these daemons.
//!
//! Everything is std-only; determinism of the engine itself is untouched —
//! connection threads (one allowed use of raw threads outside
//! `crates/exec`, see the lint table) only wait on sockets and job handles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod error;
pub mod proto;
mod server;

pub use tvs_core::cache;
pub use tvs_core::jobs;
pub use tvs_core::json;

pub use client::Client;
pub use error::ServeError;
pub use proto::PROTO_VERSION;
pub use server::{check_version, config_from_wire, Server, ServerConfig};
pub use tvs_core::{Admission, ArtifactKey, ArtifactStore, CoreError, JobStatus, JobTable};
