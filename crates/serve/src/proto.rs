//! Wire framing: length-prefixed JSON lines.
//!
//! Each frame is the ASCII decimal byte length of the payload, a newline,
//! the payload bytes (UTF-8 JSON), and a trailing newline:
//!
//! ```text
//! 17\n{"op":"shutdown"}\n
//! ```
//!
//! The explicit length lets payloads contain newlines (netlist sources do)
//! while keeping the protocol debuggable with `nc`. Frames above
//! [`MAX_FRAME`] are rejected before any allocation so a malformed client
//! cannot balloon the server.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload (64 MiB — an order of magnitude
/// above the largest ISCAS benchmark plus its artifact).
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// The protocol generation this build speaks. Every request document
/// carries it as a top-level `"v"` field; servers (daemon and fleet
/// coordinator alike) reject any other value — or its absence — with the
/// typed `version` error, so a mixed-version fleet fails loudly at the
/// first frame instead of misparsing payloads. Bump on any change to the
/// request/response grammar.
pub const PROTO_VERSION: u64 = 1;

/// A framing failure.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The peer announced a payload above [`MAX_FRAME`].
    Oversize {
        /// The announced length.
        announced: usize,
    },
    /// The byte stream does not follow the framing grammar.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport: {e}"),
            ProtoError::Oversize { announced } => {
                write!(
                    f,
                    "frame of {announced} bytes exceeds the {MAX_FRAME} byte cap"
                )
            }
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), ProtoError> {
    if payload.len() > MAX_FRAME {
        return Err(ProtoError::Oversize {
            announced: payload.len(),
        });
    }
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()?;
    Ok(())
}

/// Bound on consecutive would-block retries once a frame has started —
/// roughly a minute at the server's 50 ms read timeout, so a half-written
/// frame from a stuck peer cannot pin a connection thread forever.
const MAX_STALL_READS: usize = 1200;

/// Bound on length-line digits. [`MAX_FRAME`] needs 8; anything past this is
/// a peer streaming leading zeros (the only way to grow the digit count
/// without tripping the cap), which would otherwise let it pin the
/// connection in the length loop indefinitely.
const MAX_LENGTH_DIGITS: usize = 20;

/// True for the error kinds a socket read timeout produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF **before** any length
/// byte; EOF mid-frame is [`ProtoError::Malformed`].
///
/// Timeout contract: a read timeout surfaces as [`ProtoError::Io`] **only at
/// a frame boundary** (no byte of the frame consumed yet), where the caller
/// can safely poll and call `read_frame` again. Once a frame has started,
/// timeouts are retried internally — a partially consumed frame can never be
/// abandoned mid-stream, which would desynchronize the framing — up to a
/// stall bound, after which the stream is declared malformed.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, ProtoError> {
    // Length line, byte at a time (the length line is short; the payload
    // read below is the bulk transfer).
    let mut len: usize = 0;
    let mut digits = 0usize;
    let mut stalls = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) if digits == 0 => return Ok(None),
            Ok(0) => return Err(ProtoError::Malformed("eof inside length".into())),
            Ok(_) => {}
            Err(e) if is_timeout(&e) && digits > 0 => {
                stalls += 1;
                if stalls > MAX_STALL_READS {
                    return Err(ProtoError::Malformed("peer stalled inside frame".into()));
                }
                continue;
            }
            Err(e) => return Err(ProtoError::Io(e)),
        }
        match byte[0] {
            b'\n' if digits > 0 => break,
            d @ b'0'..=b'9' => {
                len = len
                    .checked_mul(10)
                    .and_then(|l| l.checked_add(usize::from(d - b'0')))
                    .ok_or(ProtoError::Oversize {
                        announced: usize::MAX,
                    })?;
                digits += 1;
                if digits > MAX_LENGTH_DIGITS {
                    return Err(ProtoError::Malformed("length line too long".into()));
                }
                if len > MAX_FRAME {
                    return Err(ProtoError::Oversize { announced: len });
                }
            }
            b'\r' => {}
            other => {
                return Err(ProtoError::Malformed(format!(
                    "byte {other:#04x} in length line"
                )))
            }
        }
    }
    // Payload + terminator, with the same stall-bounded retry discipline
    // (read_exact is unusable here: on error it may have consumed bytes).
    let mut payload = vec![0u8; len + 1];
    let mut filled = 0usize;
    let mut stalls = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(ProtoError::Malformed("eof inside payload".into())),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_READS {
                    return Err(ProtoError::Malformed("peer stalled inside frame".into()));
                }
            }
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    if payload.pop() != Some(b'\n') {
        return Err(ProtoError::Malformed("missing frame terminator".into()));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| ProtoError::Malformed("payload is not utf-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_including_newlines() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"bench\":\"INPUT(a)\\n\"}").unwrap();
        write_frame(&mut buf, "second").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"bench\":\"INPUT(a)\\n\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("second"));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn oversize_and_malformed_frames_are_rejected() {
        let huge = format!("{}\n", MAX_FRAME + 1);
        assert!(matches!(
            read_frame(&mut Cursor::new(huge.into_bytes())),
            Err(ProtoError::Oversize { .. })
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(b"12x\n".to_vec())),
            Err(ProtoError::Malformed(_))
        ));
        // Truncated payload.
        assert!(matches!(
            read_frame(&mut Cursor::new(b"10\nshort\n".to_vec())),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_length_prefix_is_typed() {
        // EOF while the length line is still being read — must be a typed
        // Malformed, never a hang or a panic.
        assert!(matches!(
            read_frame(&mut Cursor::new(b"12".to_vec())),
            Err(ProtoError::Malformed(_))
        ));
        assert!(matches!(
            read_frame(&mut Cursor::new(b"123456".to_vec())),
            Err(ProtoError::Malformed(_))
        ));
    }

    #[test]
    fn leading_zero_streams_are_bounded() {
        // A peer streaming zeros never grows `len`, so only the digit bound
        // stops it; 21 zeros must already be rejected.
        let zeros = vec![b'0'; 21];
        assert!(matches!(
            read_frame(&mut Cursor::new(zeros)),
            Err(ProtoError::Malformed(_))
        ));
        // While a zero-padded but in-cap length still parses.
        let padded = b"017\n{\"op\":\"shutdown\"}\n".to_vec();
        assert_eq!(
            read_frame(&mut Cursor::new(padded)).unwrap().as_deref(),
            Some("{\"op\":\"shutdown\"}")
        );
    }
}
