//! The TCP daemon: accept loop, per-connection protocol dispatch, and
//! graceful drain.
//!
//! Concurrency split: **I/O concurrency lives here** (one OS thread per
//! connection — clients block on `wait`/`fetch` for minutes, a share-nothing
//! thread per socket is the simplest correct shape), while **compute
//! concurrency stays in tvs-exec** (every engine run goes through the
//! [`JobTable`]'s bounded [`tvs_exec::JobQueue`]). Connection threads never
//! touch engine state; they only talk to the job table, so the determinism
//! argument of DESIGN.md §6 is untouched by the serving layer.
//!
//! Shutdown: a `shutdown` request flips the draining flag. The accept loop
//! stops admitting sockets, the job table drains (every admitted job
//! completes and persists its artifact — blocked `wait`ers get their
//! answer), and connection threads notice the flag at their next read
//! timeout and hang up.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tvs_scan::{CaptureTransform, ObserveTransform};
use tvs_stitch::{SelectionStrategy, ShiftPolicy, StitchConfig, StrategyId};

use tvs_core::json::{self, Value};
use tvs_core::{ArtifactStore, JobStatus, JobTable};

use crate::error::ServeError;
use crate::proto::{read_frame, write_frame, ProtoError, PROTO_VERSION};

/// How often blocked reads and the accept loop re-check the draining flag.
const POLL: Duration = Duration::from_millis(50);

/// Construction parameters for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on, e.g. `"127.0.0.1:7077"` (`:0` picks a port).
    pub listen: String,
    /// Artifact cache directory.
    pub cache_dir: std::path::PathBuf,
    /// Worker threads executing engine runs.
    pub workers: usize,
    /// Admission bound: open jobs beyond this are rejected as `busy`.
    pub queue_capacity: usize,
    /// Cycles between checkpoint snapshots of running jobs (0 = never).
    pub checkpoint_every: usize,
    /// Artifact-cache byte cap; LRU eviction above it (0 = unbounded).
    pub cache_cap_bytes: u64,
    /// Max in-flight engine runs per client identity (0 = unlimited).
    pub client_quota: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:0".to_owned(),
            cache_dir: std::path::PathBuf::from("tvs-cache"),
            workers: 2,
            queue_capacity: 64,
            checkpoint_every: 8,
            cache_cap_bytes: 0,
            client_quota: 0,
        }
    }
}

/// A bound (but not yet serving) daemon.
pub struct Server {
    listener: TcpListener,
    table: Arc<JobTable>,
    draining: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listen socket and opens the artifact store.
    ///
    /// # Errors
    ///
    /// I/O errors from binding or from creating the cache directory.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| ServeError::io(format!("bind {}", config.listen), e))?;
        let store = ArtifactStore::open(&config.cache_dir)?.with_cap(config.cache_cap_bytes);
        Ok(Server {
            listener,
            table: Arc::new(
                JobTable::new(
                    config.workers,
                    config.queue_capacity,
                    config.checkpoint_every,
                    store,
                )
                .with_client_quota(config.client_quota),
            ),
            draining: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's address lookup failure.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::io("local_addr", e))
    }

    /// A handle that can trigger a drain from another thread (tests).
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.draining)
    }

    /// Serves until a `shutdown` request (or the drain handle) flips the
    /// draining flag, then completes all admitted jobs and returns.
    ///
    /// # Errors
    ///
    /// Only setup failures (making the listener non-blocking) error; per-
    /// connection failures are contained to their connection thread.
    pub fn run(self) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::io("set_nonblocking", e))?;
        // Connection threads are I/O waiters, not compute — every engine run
        // goes through the tvs-exec job queue. This file is the one SRC003
        // allowlist entry outside crates/exec (see the lint table).
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.draining.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let table = Arc::clone(&self.table);
                    let draining = Arc::clone(&self.draining);
                    let handle =
                        std::thread::spawn(move || serve_connection(stream, &table, &draining));
                    connections.push(handle);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
            connections.retain(|h| !h.is_finished());
        }
        // Drain: finish every admitted job, then let connection threads
        // notice the flag and exit.
        self.table.drain();
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One connection's request/response loop.
fn serve_connection(stream: TcpStream, table: &JobTable, draining: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // peer hung up cleanly
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if draining.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return, // malformed stream: hang up
        };
        let response = match dispatch(&frame, table, draining) {
            Ok(value) => value,
            Err(e) => e.to_wire(),
        };
        if write_frame(&mut writer, &response.to_text()).is_err() {
            return;
        }
        // `shutdown` answers first, then stops reading.
        if draining.load(Ordering::Acquire) {
            return;
        }
    }
}

/// Parses one request frame and executes it against the job table.
fn dispatch(frame: &str, table: &JobTable, draining: &AtomicBool) -> Result<Value, ServeError> {
    let request = json::parse(frame).map_err(|e| ServeError::Protocol(e.to_string()))?;
    let op = request
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::Protocol("missing \"op\"".to_owned()))?;
    check_version(&request)?;
    match op {
        "submit" => {
            if draining.load(Ordering::Acquire) {
                return Err(ServeError::Draining);
            }
            let bench = request
                .get("bench")
                .and_then(Value::as_str)
                .ok_or_else(|| ServeError::Protocol("submit requires \"bench\"".to_owned()))?;
            let name = request
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("netlist");
            let config = config_from_wire(request.get("config"))?;
            // The client identity rides at the top level, NOT inside
            // `config`: it must never influence the artifact key.
            let client = request.get("client").and_then(Value::as_str);
            let (job, admission) = table.submit(name, bench, config, client)?;
            let status = table.status(&job)?;
            Ok(Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("job".into(), Value::str(job)),
                ("admission".into(), Value::str(admission.as_str())),
                ("key".into(), Value::str(status.key.to_string())),
            ]))
        }
        "lint" => {
            // Runs the same admission analysis `submit` gates on, but only
            // reports: no job, no engine run, no rejection-cache entry.
            let bench = request
                .get("bench")
                .and_then(Value::as_str)
                .ok_or_else(|| ServeError::Protocol("lint requires \"bench\"".to_owned()))?;
            let name = request
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("netlist");
            let diags = match tvs_netlist::bench::parse(name, bench) {
                Ok(netlist) => tvs_lint::admission_diagnostics(
                    &netlist,
                    &tvs_lint::TestabilityConfig::default(),
                ),
                Err(e) => tvs_lint::netlist_error_diagnostics(&e)
                    .ok_or_else(|| ServeError::Netlist(e.to_string()))?,
            };
            let deny = tvs_lint::has_deny(&diags);
            let doc = json::parse(&tvs_lint::render_json(&diags))
                .map_err(|e| ServeError::Protocol(format!("lint serializer: {e}")))?;
            Ok(Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("admitted".into(), Value::Bool(!deny)),
                ("lint".into(), doc),
            ]))
        }
        "status" | "wait" => {
            let job = job_arg(&request)?;
            let status = if op == "wait" {
                table.wait(job)?
            } else {
                table.status(job)?
            };
            Ok(status_to_wire(&status))
        }
        "fetch" => {
            let job = job_arg(&request)?;
            let artifact_text = table.fetch(job)?;
            let artifact = json::parse(&artifact_text)
                .map_err(|e| ServeError::Protocol(format!("stored artifact corrupt: {e}")))?;
            Ok(Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("artifact".into(), artifact),
            ]))
        }
        "stats" => {
            // The same serializer `tvs run --stats-json` uses, embedded as a
            // document, plus the server's own gauges.
            let counters = json::parse(&tvs_exec::report().to_json())
                .map_err(|e| ServeError::Protocol(format!("stats serializer: {e}")))?;
            Ok(Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("stats".into(), counters),
                (
                    "server".into(),
                    Value::Obj(vec![
                        ("open_jobs".into(), Value::num_u64(table.open_jobs() as u64)),
                        ("capacity".into(), Value::num_u64(table.capacity() as u64)),
                        ("jobs_issued".into(), Value::num_u64(table.jobs_issued())),
                        (
                            "draining".into(),
                            Value::Bool(draining.load(Ordering::Acquire)),
                        ),
                    ]),
                ),
            ]))
        }
        "cache-cap" => {
            // Live adjustment of the artifact cache's byte cap (0 lifts
            // it); the fleet coordinator broadcasts this at startup so one
            // `--cache-cap-bytes` flag governs every worker.
            let bytes = request
                .get("bytes")
                .and_then(Value::as_u64)
                .ok_or_else(|| ServeError::Protocol("cache-cap requires \"bytes\"".to_owned()))?;
            table.store().set_cap(bytes);
            Ok(Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("cap_bytes".into(), Value::num_u64(bytes)),
            ]))
        }
        "shutdown" => {
            draining.store(true, Ordering::Release);
            Ok(Value::Obj(vec![
                ("ok".into(), Value::Bool(true)),
                ("draining".into(), Value::Bool(true)),
            ]))
        }
        other => Err(ServeError::Protocol(format!("unknown op {other:?}"))),
    }
}

/// Enforces the frame's protocol-version field. Requests without a `v`
/// field are from pre-versioning peers and rejected just like mismatched
/// ones: a mixed-version fleet must fail loudly, not misparse.
pub fn check_version(request: &Value) -> Result<(), ServeError> {
    match request.get("v").and_then(Value::as_u64) {
        Some(v) if v == PROTO_VERSION => Ok(()),
        got => Err(ServeError::Version {
            got,
            want: PROTO_VERSION,
        }),
    }
}

fn job_arg(request: &Value) -> Result<&str, ServeError> {
    request
        .get("job")
        .and_then(Value::as_str)
        .ok_or_else(|| ServeError::Protocol("missing \"job\"".to_owned()))
}

fn status_to_wire(status: &JobStatus) -> Value {
    let mut pairs = vec![
        ("ok".into(), Value::Bool(true)),
        ("state".into(), Value::str(status.state)),
        ("key".into(), Value::str(status.key.to_string())),
        ("cycle".into(), Value::num_u64(status.cycle as u64)),
        ("caught".into(), Value::num_u64(status.caught as u64)),
        ("hidden".into(), Value::num_u64(status.hidden as u64)),
        ("uncaught".into(), Value::num_u64(status.uncaught as u64)),
    ];
    if let Some(error) = &status.error {
        pairs.push(("error_message".into(), Value::str(error.clone())));
    }
    Value::Obj(pairs)
}

/// Builds a [`StitchConfig`] from the request's `config` object. Keys mirror
/// the CLI's stitch options: `seed`, `fixed` (shift size), `select` (legacy
/// selection names), `strategy` (any strategy-layer name), `vxor`, `hxor`
/// (tap count), `budget`, `threads`. Absent keys keep defaults; unknown keys
/// — and unknown strategy names — are rejected so typos cannot silently
/// change a run's identity (and therefore its cache key).
pub fn config_from_wire(value: Option<&Value>) -> Result<StitchConfig, ServeError> {
    let mut config = StitchConfig::default();
    let Some(value) = value else {
        return Ok(config);
    };
    let Value::Obj(pairs) = value else {
        return Err(ServeError::Config(
            "\"config\" must be an object".to_owned(),
        ));
    };
    for (key, v) in pairs {
        match key.as_str() {
            "seed" => {
                config.seed = v
                    .as_u64()
                    .ok_or_else(|| ServeError::Config("seed must be a u64".to_owned()))?;
            }
            "fixed" => {
                let k = v
                    .as_u64()
                    .ok_or_else(|| ServeError::Config("fixed must be a u64".to_owned()))?;
                config.policy = ShiftPolicy::Fixed(k as usize);
            }
            "select" => {
                let selection = match v.as_str() {
                    Some("random") => SelectionStrategy::Random,
                    Some("hardness") => SelectionStrategy::Hardness,
                    Some("most") => SelectionStrategy::MostFaults,
                    Some("weighted") => SelectionStrategy::Weighted,
                    other => {
                        return Err(ServeError::Config(format!(
                            "unknown selection strategy {other:?}"
                        )))
                    }
                };
                config.strategy = StrategyId::from_selection(selection);
            }
            "strategy" => {
                let name = v.as_str().unwrap_or_default();
                config.strategy = StrategyId::parse(name)
                    .ok_or_else(|| ServeError::Config(format!("unknown strategy {name:?}")))?;
            }
            "vxor" => {
                if v.as_bool()
                    .ok_or_else(|| ServeError::Config("vxor must be a bool".to_owned()))?
                {
                    config.capture = CaptureTransform::VerticalXor;
                }
            }
            "hxor" => {
                let taps = v
                    .as_u64()
                    .ok_or_else(|| ServeError::Config("hxor must be a u64".to_owned()))?;
                config.observe = ObserveTransform::HorizontalXor(taps as usize);
            }
            "budget" => {
                config.budget = Some(
                    v.as_u64()
                        .ok_or_else(|| ServeError::Config("budget must be a u64".to_owned()))?,
                );
            }
            "threads" => {
                let threads = v
                    .as_u64()
                    .ok_or_else(|| ServeError::Config("threads must be a u64".to_owned()))?;
                config.threads = (threads as usize).max(1);
            }
            other => {
                return Err(ServeError::Config(format!("unknown config key {other:?}")));
            }
        }
    }
    Ok(config)
}
