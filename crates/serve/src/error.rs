//! The serve layer's error taxonomy and its wire representation.

use std::fmt;
use std::io;

use tvs_core::CoreError;

use crate::json::Value;
use crate::proto::{ProtoError, PROTO_VERSION};

/// Everything that can go wrong between a request arriving and a response
/// leaving. Each variant maps to a stable wire code (see
/// [`ServeError::wire_code`]) so clients can branch without parsing prose.
#[derive(Debug)]
pub enum ServeError {
    /// The job queue is at capacity; the client should back off and retry.
    Busy {
        /// Jobs admitted and not yet finished.
        open: usize,
        /// The queue's admission bound.
        capacity: usize,
    },
    /// The submitting client is at its in-flight job quota; it should wait
    /// for one of its open jobs to finish before submitting again.
    QuotaExceeded {
        /// The client identity that hit its quota.
        client: String,
        /// The client's jobs currently in flight.
        open: usize,
        /// The per-client admission limit.
        limit: usize,
    },
    /// The server is draining after a `shutdown` request; no new work.
    Draining,
    /// The peer speaks a different protocol version. Mixed-version fleets
    /// must fail loudly instead of misparsing each other's frames.
    Version {
        /// The version the peer announced (`None` if the request had no
        /// `v` field at all — a pre-versioning peer).
        got: Option<u64>,
        /// The version this side speaks ([`PROTO_VERSION`]).
        want: u64,
    },
    /// The peer violated the framing or request grammar.
    Protocol(String),
    /// A job id that the server never issued (or has no record of).
    UnknownJob(String),
    /// The job ran and failed; the message is the engine's error.
    JobFailed(String),
    /// The submitted netlist failed to parse.
    Netlist(String),
    /// The submitted netlist parsed but was rejected by deny-level lint
    /// rules at admission; no engine run was started.
    Rejected {
        /// The lint findings as a rendered JSON document
        /// (`{"diagnostics":[...],"counts":{...}}`).
        diagnostics: String,
        /// `true` when the verdict came from the server's rejection cache
        /// rather than a fresh analysis.
        cached: bool,
    },
    /// The submitted stitch configuration is invalid.
    Config(String),
    /// A filesystem or socket operation failed.
    Io {
        /// What was being attempted (usually a path).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl ServeError {
    /// Convenience constructor for I/O failures.
    pub fn io(context: impl Into<String>, source: io::Error) -> ServeError {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }

    /// The stable machine-readable code carried in error responses.
    pub fn wire_code(&self) -> &'static str {
        match self {
            ServeError::Busy { .. } => "busy",
            ServeError::QuotaExceeded { .. } => "quota",
            ServeError::Draining => "draining",
            ServeError::Version { .. } => "version",
            ServeError::Protocol(_) => "protocol",
            ServeError::UnknownJob(_) => "unknown-job",
            ServeError::JobFailed(_) => "job-failed",
            ServeError::Netlist(_) => "netlist",
            ServeError::Rejected { .. } => "rejected",
            ServeError::Config(_) => "config",
            ServeError::Io { .. } => "io",
        }
    }

    /// Renders the error as the protocol's `{"ok":false,...}` response.
    pub fn to_wire(&self) -> Value {
        let mut pairs = vec![
            ("ok".to_owned(), Value::Bool(false)),
            ("error".to_owned(), Value::str(self.wire_code())),
            ("message".to_owned(), Value::str(self.to_string())),
        ];
        match self {
            ServeError::Busy { open, capacity } => {
                pairs.push(("open".to_owned(), Value::num_u64(*open as u64)));
                pairs.push(("capacity".to_owned(), Value::num_u64(*capacity as u64)));
            }
            ServeError::QuotaExceeded {
                client,
                open,
                limit,
            } => {
                pairs.push(("client".to_owned(), Value::str(client.clone())));
                pairs.push(("open".to_owned(), Value::num_u64(*open as u64)));
                pairs.push(("limit".to_owned(), Value::num_u64(*limit as u64)));
            }
            ServeError::Version { got, want } => {
                if let Some(got) = got {
                    pairs.push(("got".to_owned(), Value::num_u64(*got)));
                }
                pairs.push(("want".to_owned(), Value::num_u64(*want)));
            }
            ServeError::UnknownJob(job) => {
                pairs.push(("job".to_owned(), Value::str(job.clone())));
            }
            ServeError::Rejected {
                diagnostics,
                cached,
            } => {
                // Embed the findings as a structured document when they
                // parse (they always should — the server rendered them),
                // falling back to the raw text so nothing is ever dropped.
                let doc = crate::json::parse(diagnostics)
                    .unwrap_or_else(|_| Value::str(diagnostics.clone()));
                pairs.push(("diagnostics".to_owned(), doc));
                pairs.push(("cached".to_owned(), Value::Bool(*cached)));
            }
            _ => {}
        }
        Value::Obj(pairs)
    }

    /// Reconstructs a `ServeError` from a wire error response, for clients.
    pub fn from_wire(response: &Value) -> ServeError {
        let message = response
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("(no message)")
            .to_owned();
        match response.get("error").and_then(Value::as_str) {
            Some("busy") => ServeError::Busy {
                open: response.get("open").and_then(Value::as_u64).unwrap_or(0) as usize,
                capacity: response
                    .get("capacity")
                    .and_then(Value::as_u64)
                    .unwrap_or(0) as usize,
            },
            Some("quota") => ServeError::QuotaExceeded {
                client: response
                    .get("client")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_owned(),
                open: response.get("open").and_then(Value::as_u64).unwrap_or(0) as usize,
                limit: response.get("limit").and_then(Value::as_u64).unwrap_or(0) as usize,
            },
            Some("draining") => ServeError::Draining,
            Some("version") => ServeError::Version {
                got: response.get("got").and_then(Value::as_u64),
                want: response
                    .get("want")
                    .and_then(Value::as_u64)
                    .unwrap_or(PROTO_VERSION),
            },
            Some("unknown-job") => ServeError::UnknownJob(
                // Prefer the structured job id; older peers only sent prose.
                response
                    .get("job")
                    .and_then(Value::as_str)
                    .map(str::to_owned)
                    .unwrap_or(message),
            ),
            Some("job-failed") => ServeError::JobFailed(message),
            Some("netlist") => ServeError::Netlist(message),
            Some("rejected") => ServeError::Rejected {
                diagnostics: response
                    .get("diagnostics")
                    .map(Value::to_text)
                    .unwrap_or(message),
                cached: response
                    .get("cached")
                    .and_then(Value::as_bool)
                    .unwrap_or(false),
            },
            Some("config") => ServeError::Config(message),
            Some("io") => ServeError::io("remote", io::Error::other(message)),
            _ => ServeError::Protocol(message),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { open, capacity } => {
                write!(f, "server busy: {open} of {capacity} job slots in flight")
            }
            ServeError::QuotaExceeded {
                client,
                open,
                limit,
            } => {
                write!(
                    f,
                    "client {client:?} at its admission quota: {open} of {limit} jobs in flight"
                )
            }
            ServeError::Draining => write!(f, "server is draining; submissions are closed"),
            ServeError::Version {
                got: Some(got),
                want,
            } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this side v{want}"
                )
            }
            ServeError::Version { got: None, want } => {
                write!(f, "protocol version mismatch: request carries no version, this side requires v{want}")
            }
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            ServeError::JobFailed(m) => write!(f, "job failed: {m}"),
            ServeError::Netlist(m) => write!(f, "netlist rejected: {m}"),
            ServeError::Rejected { diagnostics, .. } => {
                write!(
                    f,
                    "netlist rejected by lint admission: {}",
                    diagnostics.trim_end()
                )
            }
            ServeError::Config(m) => write!(f, "configuration rejected: {m}"),
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ServeError::io("socket", io),
            other => ServeError::Protocol(other.to_string()),
        }
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        match e {
            CoreError::Busy { open, capacity } => ServeError::Busy { open, capacity },
            CoreError::QuotaExceeded {
                client,
                open,
                limit,
            } => ServeError::QuotaExceeded {
                client,
                open,
                limit,
            },
            CoreError::UnknownJob(id) => ServeError::UnknownJob(id),
            CoreError::JobFailed(m) => ServeError::JobFailed(m),
            CoreError::Netlist(m) => ServeError::Netlist(m),
            CoreError::Rejected {
                diagnostics,
                cached,
            } => ServeError::Rejected {
                diagnostics,
                cached,
            },
            CoreError::Config(m) => ServeError::Config(m),
            CoreError::Io { context, source } => ServeError::Io { context, source },
        }
    }
}
