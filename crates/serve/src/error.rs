//! The serve layer's error taxonomy and its wire representation.

use std::fmt;
use std::io;

use crate::json::Value;
use crate::proto::ProtoError;

/// Everything that can go wrong between a request arriving and a response
/// leaving. Each variant maps to a stable wire code (see
/// [`ServeError::wire_code`]) so clients can branch without parsing prose.
#[derive(Debug)]
pub enum ServeError {
    /// The job queue is at capacity; the client should back off and retry.
    Busy {
        /// Jobs admitted and not yet finished.
        open: usize,
        /// The queue's admission bound.
        capacity: usize,
    },
    /// The server is draining after a `shutdown` request; no new work.
    Draining,
    /// The peer violated the framing or request grammar.
    Protocol(String),
    /// A job id that the server never issued (or has no record of).
    UnknownJob(String),
    /// The job ran and failed; the message is the engine's error.
    JobFailed(String),
    /// The submitted netlist failed to parse.
    Netlist(String),
    /// The submitted stitch configuration is invalid.
    Config(String),
    /// A filesystem or socket operation failed.
    Io {
        /// What was being attempted (usually a path).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl ServeError {
    /// Convenience constructor for I/O failures.
    pub fn io(context: impl Into<String>, source: io::Error) -> ServeError {
        ServeError::Io {
            context: context.into(),
            source,
        }
    }

    /// The stable machine-readable code carried in error responses.
    pub fn wire_code(&self) -> &'static str {
        match self {
            ServeError::Busy { .. } => "busy",
            ServeError::Draining => "draining",
            ServeError::Protocol(_) => "protocol",
            ServeError::UnknownJob(_) => "unknown-job",
            ServeError::JobFailed(_) => "job-failed",
            ServeError::Netlist(_) => "netlist",
            ServeError::Config(_) => "config",
            ServeError::Io { .. } => "io",
        }
    }

    /// Renders the error as the protocol's `{"ok":false,...}` response.
    pub fn to_wire(&self) -> Value {
        let mut pairs = vec![
            ("ok".to_owned(), Value::Bool(false)),
            ("error".to_owned(), Value::str(self.wire_code())),
            ("message".to_owned(), Value::str(self.to_string())),
        ];
        if let ServeError::Busy { open, capacity } = self {
            pairs.push(("open".to_owned(), Value::num_u64(*open as u64)));
            pairs.push(("capacity".to_owned(), Value::num_u64(*capacity as u64)));
        }
        Value::Obj(pairs)
    }

    /// Reconstructs a `ServeError` from a wire error response, for clients.
    pub fn from_wire(response: &Value) -> ServeError {
        let message = response
            .get("message")
            .and_then(Value::as_str)
            .unwrap_or("(no message)")
            .to_owned();
        match response.get("error").and_then(Value::as_str) {
            Some("busy") => ServeError::Busy {
                open: response.get("open").and_then(Value::as_u64).unwrap_or(0) as usize,
                capacity: response
                    .get("capacity")
                    .and_then(Value::as_u64)
                    .unwrap_or(0) as usize,
            },
            Some("draining") => ServeError::Draining,
            Some("unknown-job") => ServeError::UnknownJob(message),
            Some("job-failed") => ServeError::JobFailed(message),
            Some("netlist") => ServeError::Netlist(message),
            Some("config") => ServeError::Config(message),
            Some("io") => ServeError::io("remote", io::Error::other(message)),
            _ => ServeError::Protocol(message),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { open, capacity } => {
                write!(f, "server busy: {open} of {capacity} job slots in flight")
            }
            ServeError::Draining => write!(f, "server is draining; submissions are closed"),
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id:?}"),
            ServeError::JobFailed(m) => write!(f, "job failed: {m}"),
            ServeError::Netlist(m) => write!(f, "netlist rejected: {m}"),
            ServeError::Config(m) => write!(f, "configuration rejected: {m}"),
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ServeError::io("socket", io),
            other => ServeError::Protocol(other.to_string()),
        }
    }
}
