//! A blocking client for the serve protocol, shared by the `tvs-client`
//! binary and the integration tests.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use crate::error::ServeError;
use crate::json::{self, Value};
use crate::proto::{read_frame, write_frame, PROTO_VERSION};

/// One connection to a `tvs serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7077"`).
    ///
    /// # Errors
    ///
    /// Connection failures surface as [`ServeError::Io`].
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServeError::io(format!("connect {addr}"), e))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::io("clone stream", e))?,
        );
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request document and returns the (already `ok`-checked)
    /// response document. A `"v"` protocol-version field is stamped onto
    /// the request unless the caller already set one.
    ///
    /// # Errors
    ///
    /// Transport failures, protocol violations, and any error response from
    /// the server (decoded back into the matching [`ServeError`] variant).
    pub fn request(&mut self, request: &Value) -> Result<Value, ServeError> {
        let mut request = request.clone();
        if let Value::Obj(pairs) = &mut request {
            if !pairs.iter().any(|(k, _)| k == "v") {
                pairs.push(("v".into(), Value::num_u64(PROTO_VERSION)));
            }
        }
        write_frame(&mut self.writer, &request.to_text())?;
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ServeError::Protocol("server hung up".to_owned()))?;
        let response = json::parse(&frame).map_err(|e| ServeError::Protocol(e.to_string()))?;
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(response),
            _ => Err(ServeError::from_wire(&response)),
        }
    }

    /// Submits `.bench` source; returns `(job id, admission)` where
    /// admission is `"miss"`, `"cache-hit"` or `"dedup-hit"`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; notably [`ServeError::Busy`] under load.
    pub fn submit(
        &mut self,
        name: &str,
        bench: &str,
        config: Value,
    ) -> Result<(String, String), ServeError> {
        let response = self.request(&Value::Obj(vec![
            ("op".into(), Value::str("submit")),
            ("name".into(), Value::str(name)),
            ("bench".into(), Value::str(bench)),
            ("config".into(), config),
        ]))?;
        let job = wire_str(&response, "job")?;
        let admission = wire_str(&response, "admission")?;
        Ok((job, admission))
    }

    /// Runs the server's admission analysis over `.bench` source without
    /// submitting a job; returns `(admitted, lint document)` where the
    /// document is the `{"diagnostics":[...],"counts":{...}}` rendering.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; syntax errors (as opposed to design-rule
    /// findings) surface as [`ServeError::Netlist`].
    pub fn lint(&mut self, name: &str, bench: &str) -> Result<(bool, Value), ServeError> {
        let response = self.request(&Value::Obj(vec![
            ("op".into(), Value::str("lint")),
            ("name".into(), Value::str(name)),
            ("bench".into(), Value::str(bench)),
        ]))?;
        let admitted = response
            .get("admitted")
            .and_then(Value::as_bool)
            .ok_or_else(|| ServeError::Protocol("lint response lacks admitted".to_owned()))?;
        let lint = response
            .get("lint")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("lint response lacks lint".to_owned()))?;
        Ok((admitted, lint))
    }

    /// A point-in-time job status document.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn status(&mut self, job: &str) -> Result<Value, ServeError> {
        self.request(&job_op("status", job))
    }

    /// Blocks until the job finishes; returns its final status document.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn wait(&mut self, job: &str) -> Result<Value, ServeError> {
        self.request(&job_op("wait", job))
    }

    /// Blocks until the job finishes; returns the artifact document.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; [`ServeError::JobFailed`] if the run failed.
    pub fn fetch(&mut self, job: &str) -> Result<Value, ServeError> {
        let response = self.request(&job_op("fetch", job))?;
        response
            .get("artifact")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("fetch response lacks artifact".to_owned()))
    }

    /// The server's counter/timer report plus its own gauges.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<Value, ServeError> {
        self.request(&Value::Obj(vec![("op".into(), Value::str("stats"))]))
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.request(&Value::Obj(vec![("op".into(), Value::str("shutdown"))]))?;
        Ok(())
    }
}

fn job_op(op: &str, job: &str) -> Value {
    Value::Obj(vec![
        ("op".into(), Value::str(op)),
        ("job".into(), Value::str(job)),
    ])
}

fn wire_str(response: &Value, key: &str) -> Result<String, ServeError> {
    response
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| ServeError::Protocol(format!("response lacks {key:?}")))
}
