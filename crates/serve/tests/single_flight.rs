//! The single-flight guarantee, end to end over TCP: N concurrent identical
//! submissions → exactly one engine run, every client fetches a
//! byte-identical artifact.

use std::sync::{Arc, Barrier};

use tvs_serve::json::Value;
use tvs_serve::{Client, Server, ServerConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn s444_bench() -> String {
    let netlist = tvs_circuits::profile("s444").expect("s444 profile").build();
    tvs_netlist::bench::to_string(&netlist)
}

#[test]
fn eight_concurrent_identical_submissions_share_one_engine_run() {
    const CLIENTS: usize = 8;
    let cache = temp_dir("single-flight");
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".into(),
        cache_dir: cache.clone(),
        workers: 2,
        queue_capacity: 16,
        checkpoint_every: 4,
        cache_cap_bytes: 0,
        client_quota: 0,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let bench = Arc::new(s444_bench());
    let runs_before = tvs_exec::counter("serve.engine_runs").get();

    // All clients release their submits together to maximize overlap.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = addr.clone();
            let bench = Arc::clone(&bench);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                barrier.wait();
                let (job, admission) = client
                    .submit("s444", &bench, Value::Obj(vec![]))
                    .expect("submit");
                let artifact = client.fetch(&job).expect("fetch");
                (admission, artifact.to_text())
            })
        })
        .collect();
    let results: Vec<(String, String)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    let runs_after = tvs_exec::counter("serve.engine_runs").get();
    assert_eq!(
        runs_after - runs_before,
        1,
        "eight identical submissions must coalesce onto one engine run"
    );

    // Exactly one submission was the cold miss; the others attached to the
    // in-flight run or (if they arrived after it finished) hit the cache.
    let misses = results.iter().filter(|(a, _)| a == "miss").count();
    assert_eq!(
        misses,
        1,
        "admissions: {:?}",
        results.iter().map(|(a, _)| a).collect::<Vec<_>>()
    );
    for (admission, _) in &results {
        assert!(
            matches!(admission.as_str(), "miss" | "dedup-hit" | "cache-hit"),
            "unexpected admission {admission:?}"
        );
    }

    // Every client got the same bytes.
    let first = &results[0].1;
    for (_, artifact) in &results {
        assert_eq!(artifact, first, "artifacts must be byte-identical");
    }
    assert!(
        first.contains("\"program\""),
        "artifact carries the program"
    );

    // Drain cleanly.
    let mut client = Client::connect(&addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    let _ = std::fs::remove_dir_all(&cache);
}
