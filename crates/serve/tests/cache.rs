//! Artifact cache correctness at the JobTable layer: warm hits are
//! byte-identical and free (no engine run), survive a table restart on the
//! same directory, and any semantic config change misses.

use tvs_serve::{Admission, ArtifactStore, JobTable};
use tvs_stitch::StitchConfig;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn table(dir: &std::path::Path) -> JobTable {
    JobTable::new(2, 16, 4, ArtifactStore::open(dir).expect("store"))
}

fn s444_bench() -> String {
    let netlist = tvs_circuits::profile("s444").expect("s444 profile").build();
    tvs_netlist::bench::to_string(&netlist)
}

fn config(seed: u64) -> StitchConfig {
    StitchConfig {
        seed,
        ..StitchConfig::default()
    }
}

#[test]
fn warm_hits_are_byte_identical_and_config_changes_miss() {
    let dir = temp_dir("cache");
    let bench = s444_bench();
    let engine_runs = tvs_exec::counter("serve.engine_runs");

    // Cold run.
    let table1 = table(&dir);
    let (job, admission) = table1
        .submit("s444", &bench, config(7), None)
        .expect("submit");
    assert_eq!(admission, Admission::Miss);
    let cold = table1.fetch(&job).expect("fetch");
    let runs_after_cold = engine_runs.get();

    // Warm hit in the same table: identical bytes, no engine run. (The
    // live-job entry has retired by now — fetch blocked until completion —
    // so this exercises the store path, not single-flight.)
    let (job, admission) = table1
        .submit("s444", &bench, config(7), None)
        .expect("resubmit");
    assert_eq!(admission, Admission::CacheHit);
    assert_eq!(*table1.fetch(&job).expect("fetch"), *cold);
    assert_eq!(engine_runs.get(), runs_after_cold, "hit must not re-run");

    // A formatting-only change to the source still hits: the key is over
    // the canonicalized netlist.
    let reformatted = format!("# a comment\n\n{}", bench.replace('\n', "\n\n"));
    let (job, admission) = table1
        .submit("s444", &reformatted, config(7), None)
        .expect("reformatted submit");
    assert_eq!(admission, Admission::CacheHit, "canonicalization failed");
    assert_eq!(*table1.fetch(&job).expect("fetch"), *cold);

    // Restart: a fresh table over the same directory still hits.
    drop(table1);
    let table2 = table(&dir);
    let (job, admission) = table2
        .submit("s444", &bench, config(7), None)
        .expect("post-restart submit");
    assert_eq!(admission, Admission::CacheHit, "cache must survive restart");
    assert_eq!(*table2.fetch(&job).expect("fetch"), *cold);
    assert_eq!(engine_runs.get(), runs_after_cold);

    // Any semantic config change must miss: seed…
    let (job, admission) = table2
        .submit("s444", &bench, config(8), None)
        .expect("seed-change submit");
    assert_eq!(admission, Admission::Miss, "seed change must miss");
    let reseeded = table2.fetch(&job).expect("fetch");
    assert_ne!(*reseeded, *cold, "different seed, different artifact");

    // …and budget, even though the snapshot fingerprint excludes it (an
    // exhausted budget changes the emitted artifact).
    let mut budgeted = config(7);
    budgeted.budget = Some(50_000);
    let (_, admission) = table2
        .submit("s444", &bench, budgeted, None)
        .expect("budget submit");
    assert_eq!(admission, Admission::Miss, "budget change must miss");

    // Thread count is NOT semantic: it must hit the seed-7 artifact.
    let mut threaded = config(7);
    threaded.threads = 3;
    let (job, admission) = table2
        .submit("s444", &bench, threaded, None)
        .expect("threaded submit");
    assert_eq!(
        admission,
        Admission::CacheHit,
        "threads must not split the cache"
    );
    assert_eq!(*table2.fetch(&job).expect("fetch"), *cold);

    table2.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
