//! Serve-layer delta and admission-quota behavior: resubmitting an edited
//! netlist reuses the cached ancestor's prescreen work while staying
//! byte-identical to a cold run; a corrupt manifest sidecar degrades to a
//! cold run (never wrong reuse); per-client quotas are typed rejections;
//! and a size-capped store evicts deterministically under pressure.

use tvs_netlist::bench;
use tvs_serve::{Admission, ArtifactStore, CoreError, JobTable, ServeError};
use tvs_stitch::StitchConfig;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-serve-delta-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The bench text of `name`'s profile netlist, plus the same text with one
/// combinational gate's kind flipped to its same-arity dual.
fn base_and_edited(name: &str) -> (String, String) {
    let netlist = tvs_circuits::profile(name).expect("profile").build();
    let base = bench::to_string(&netlist);
    let gate_id = netlist
        .gate_ids()
        .find(|&id| {
            let kind = netlist.gate(id).kind();
            kind.is_combinational()
                && !matches!(
                    kind,
                    tvs_netlist::GateKind::Not | tvs_netlist::GateKind::Buf
                )
        })
        .expect("a flippable gate");
    let gate = netlist.gate(gate_id);
    let dual = match gate.kind() {
        tvs_netlist::GateKind::And => tvs_netlist::GateKind::Or,
        tvs_netlist::GateKind::Or => tvs_netlist::GateKind::And,
        tvs_netlist::GateKind::Nand => tvs_netlist::GateKind::Nor,
        tvs_netlist::GateKind::Nor => tvs_netlist::GateKind::Nand,
        tvs_netlist::GateKind::Xor => tvs_netlist::GateKind::Xnor,
        _ => tvs_netlist::GateKind::Xor,
    };
    let from = format!(
        "{} = {}(",
        netlist.gate_name(gate_id),
        gate.kind().keyword()
    );
    let to = format!("{} = {}(", netlist.gate_name(gate_id), dual.keyword());
    let edited = base.replacen(&from, &to, 1);
    assert_ne!(base, edited, "edit did not take");
    (base, edited)
}

fn run_to_artifact(table: &JobTable, name: &str, bench: &str, config: StitchConfig) -> String {
    let (job, _) = table.submit(name, bench, config, None).expect("submit");
    table.fetch(&job).expect("fetch").to_string()
}

#[test]
fn resubmitting_an_edited_netlist_reuses_work_byte_identically() {
    let (base, edited) = base_and_edited("s526");
    let config = StitchConfig {
        seed: 5,
        ..StitchConfig::default()
    };

    // Warm path: base first (writes its manifest sidecar), then the edit.
    let warm_dir = temp_dir("warm");
    let warm = JobTable::new(1, 4, 0, ArtifactStore::open(&warm_dir).expect("store"));
    run_to_artifact(&warm, "s526", &base, config.clone());
    let reused_before = tvs_exec::counter("delta.faults_reused").get();
    let plans_before = tvs_exec::counter("delta.plans").get();
    let delta_artifact = run_to_artifact(&warm, "s526", &edited, config.clone());
    assert!(
        tvs_exec::counter("delta.plans").get() > plans_before,
        "edited resubmission should have found the base manifest"
    );
    assert!(
        tvs_exec::counter("delta.faults_reused").get() > reused_before,
        "a one-gate edit must reuse at least one cached classification"
    );

    // Cold reference: the edited netlist on a fresh cache.
    let cold_dir = temp_dir("cold");
    let cold = JobTable::new(1, 4, 0, ArtifactStore::open(&cold_dir).expect("store"));
    let cold_artifact = run_to_artifact(&cold, "s526", &edited, config);
    assert_eq!(
        delta_artifact, cold_artifact,
        "delta run diverged from the cold run of the edited netlist"
    );

    warm.drain();
    cold.drain();
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
}

#[test]
fn a_corrupt_manifest_sidecar_falls_back_to_a_cold_run() {
    let (base, edited) = base_and_edited("s444");
    let config = StitchConfig {
        seed: 9,
        ..StitchConfig::default()
    };

    let warm_dir = temp_dir("corrupt");
    let warm = JobTable::new(1, 4, 0, ArtifactStore::open(&warm_dir).expect("store"));
    run_to_artifact(&warm, "s444", &base, config.clone());

    // Corrupt every manifest sidecar in the cache directory.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&warm_dir).expect("read cache dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "manifest") {
            let mut bytes = std::fs::read(&path).expect("read manifest");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&path, bytes).expect("write corrupted manifest");
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "the base run should have written a manifest");

    let rejected_before = tvs_exec::counter("delta.manifest_rejected").get();
    let delta_artifact = run_to_artifact(&warm, "s444", &edited, config.clone());
    assert!(
        tvs_exec::counter("delta.manifest_rejected").get() > rejected_before,
        "the forged sidecar should have been rejected at parse"
    );

    let cold_dir = temp_dir("corrupt-cold");
    let cold = JobTable::new(1, 4, 0, ArtifactStore::open(&cold_dir).expect("store"));
    let cold_artifact = run_to_artifact(&cold, "s444", &edited, config);
    assert_eq!(
        delta_artifact, cold_artifact,
        "fallback after manifest corruption must still match the cold run"
    );

    warm.drain();
    cold.drain();
    let _ = std::fs::remove_dir_all(&warm_dir);
    let _ = std::fs::remove_dir_all(&cold_dir);
}

#[test]
fn a_client_at_its_quota_gets_a_typed_rejection() {
    let dir = temp_dir("quota");
    let netlist = tvs_circuits::profile("s526").expect("profile").build();
    let bench = bench::to_string(&netlist);
    let config = |seed: u64| StitchConfig {
        seed,
        ..StitchConfig::default()
    };

    // One worker, generous queue, one in-flight job per client.
    let table =
        JobTable::new(1, 8, 0, ArtifactStore::open(&dir).expect("store")).with_client_quota(1);
    let (job1, admission) = table
        .submit("s526", &bench, config(1), Some("alice"))
        .expect("first");
    assert_eq!(admission, Admission::Miss);

    // Same client, distinct key, first job still in flight: quota trips.
    let over = table.submit("s526", &bench, config(2), Some("alice"));
    match over {
        Err(CoreError::QuotaExceeded {
            ref client,
            open,
            limit,
        }) => {
            assert_eq!(client, "alice");
            assert_eq!(open, 1);
            assert_eq!(limit, 1);
            // The serve-layer wire form carries the same gauges under the
            // stable "quota" code.
            let wire = ServeError::from(over.unwrap_err()).to_wire().to_text();
            assert!(wire.contains("\"error\":\"quota\""), "{wire}");
            assert!(wire.contains("\"client\":\"alice\""), "{wire}");
            assert!(wire.contains("\"limit\":1"), "{wire}");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }

    // Anonymous submissions and other clients are not throttled by alice.
    let (_, admission) = table
        .submit("s526", &bench, config(3), None)
        .expect("anonymous");
    assert_eq!(admission, Admission::Miss);
    let (_, admission) = table
        .submit("s526", &bench, config(4), Some("bob"))
        .expect("other client");
    assert_eq!(admission, Admission::Miss);

    // Once the first job retires, alice may submit again.
    table.fetch(&job1).expect("first result");
    table.drain();
    let (_, admission) = table
        .submit("s526", &bench, config(5), Some("alice"))
        .expect("after drain");
    assert_eq!(admission, Admission::Miss);
    table.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_size_capped_store_evicts_old_artifacts_under_pressure() {
    let dir = temp_dir("evict");
    let netlist = tvs_circuits::profile("s444").expect("profile").build();
    let bench = bench::to_string(&netlist);

    // A cap far below one artifact's size: each new job evicts its
    // predecessor, and the newest entry is always spared.
    let table = JobTable::new(1, 4, 0, {
        ArtifactStore::open(&dir).expect("store").with_cap(1024)
    });
    let evictions_before = tvs_exec::counter("cache.evictions").get();
    for seed in 1..=3u64 {
        let config = StitchConfig {
            seed,
            ..StitchConfig::default()
        };
        run_to_artifact(&table, "s444", &bench, config);
    }
    assert!(
        tvs_exec::counter("cache.evictions").get() > evictions_before,
        "three over-cap artifacts must have triggered evictions"
    );
    let survivors = std::fs::read_dir(&dir)
        .expect("read cache dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert!(
        survivors >= 1,
        "the newest artifact is always spared by the evictor"
    );
    table.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
