//! Bounded admission: past the queue capacity, submissions get a typed
//! `busy` rejection instead of an unbounded backlog — and distinct configs
//! never coalesce.

use tvs_serve::{Admission, ArtifactStore, CoreError, JobTable, ServeError};
use tvs_stitch::StitchConfig;

#[test]
fn overflowing_the_queue_is_a_typed_busy_rejection() {
    let dir = std::env::temp_dir().join(format!("tvs-serve-busy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let netlist = tvs_circuits::profile("s444").expect("s444 profile").build();
    let bench = tvs_netlist::bench::to_string(&netlist);

    // One worker, one admission slot: the second *distinct* job overflows.
    let table = JobTable::new(1, 1, 0, ArtifactStore::open(&dir).expect("store"));
    let config = |seed: u64| StitchConfig {
        seed,
        ..StitchConfig::default()
    };
    let (job1, admission) = table
        .submit("s444", &bench, config(1), None)
        .expect("first");
    assert_eq!(admission, Admission::Miss);

    // Same key while in flight: single-flight attaches, never queues — so
    // it succeeds even though the queue is full.
    let (dup, admission) = table.submit("s444", &bench, config(1), None).expect("dup");
    assert_eq!(dup, job1);
    assert_eq!(admission, Admission::DedupHit);

    // Distinct key: the bounded queue pushes back.
    let overflow = table.submit("s444", &bench, config(2), None);
    match overflow {
        Err(CoreError::Busy { open, capacity }) => {
            assert_eq!(capacity, 1);
            assert!(open >= 1);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    // The busy error's wire form carries the gauges.
    let wire = ServeError::Busy {
        open: 1,
        capacity: 1,
    }
    .to_wire()
    .to_text();
    assert!(wire.contains("\"error\":\"busy\""), "{wire}");
    assert!(wire.contains("\"capacity\":1"), "{wire}");

    // After the backlog clears, the same submission is admitted.
    let first = table.fetch(&job1).expect("first result");
    table.drain();
    let (job2, admission) = table
        .submit("s444", &bench, config(2), None)
        .expect("retry");
    assert_eq!(admission, Admission::Miss);
    let second = table.fetch(&job2).expect("second result");
    assert_ne!(*first, *second, "different seeds, different artifacts");
    table.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
