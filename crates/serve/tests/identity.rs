//! Served artifacts are bit-identical to what a direct `tvs run`-style
//! engine invocation produces, at any worker thread count.

use tvs_serve::jobs::render_artifact;
use tvs_serve::{Admission, ArtifactStore, JobTable};
use tvs_stitch::{StitchConfig, StitchEngine};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn served_artifact_matches_direct_engine_run_at_any_thread_count() {
    let netlist = tvs_circuits::profile("s444").expect("s444 profile").build();
    let bench = tvs_netlist::bench::to_string(&netlist);

    // The reference: a direct, single-threaded engine run rendered through
    // the same artifact serializer.
    let reference_config = StitchConfig {
        seed: 11,
        threads: 1,
        ..StitchConfig::default()
    };
    let report = StitchEngine::new(&netlist)
        .expect("engine")
        .run(&reference_config)
        .expect("direct run");
    let key = tvs_serve::cache::SubmissionIdentity::of(&netlist, &bench, &reference_config).key;
    let reference = render_artifact(&netlist, &report, &reference_config, key).to_text();

    // Serve the same job at several thread counts, each on a cold cache so
    // every run actually executes.
    for threads in [1usize, 3] {
        let dir = temp_dir(&format!("identity-{threads}"));
        let table = JobTable::new(2, 8, 3, ArtifactStore::open(&dir).expect("store"));
        let config = StitchConfig {
            seed: 11,
            threads,
            ..StitchConfig::default()
        };
        let (job, admission) = table.submit("s444", &bench, config, None).expect("submit");
        assert_eq!(admission, Admission::Miss);
        let served = table.fetch(&job).expect("fetch");
        assert_eq!(
            *served, reference,
            "served artifact at {threads} threads diverged from the direct run"
        );
        table.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn artifact_embeds_a_replayable_program_and_honest_metrics() {
    let netlist = tvs_circuits::profile("s444").expect("s444 profile").build();
    let bench = tvs_netlist::bench::to_string(&netlist);
    let dir = temp_dir("artifact-shape");
    let table = JobTable::new(1, 4, 0, ArtifactStore::open(&dir).expect("store"));
    let (job, _) = table
        .submit("s444", &bench, StitchConfig::default(), None)
        .expect("submit");
    let artifact_text = table.fetch(&job).expect("fetch");
    let artifact = tvs_serve::json::parse(&artifact_text).expect("artifact parses");

    // The program round-trips through the ATE parser.
    let program_text = artifact
        .get("program")
        .and_then(tvs_serve::json::Value::as_str)
        .expect("program field");
    let program = tvs_ate::TestProgram::parse(program_text).expect("program parses");
    assert!(program.cycles.len() > 1);

    // Metrics agree with the program they describe.
    let metrics = artifact.get("metrics").expect("metrics field");
    let tv = metrics.get("tv").and_then(tvs_serve::json::Value::as_u64);
    assert!(tv.is_some_and(|tv| tv > 0));
    assert_eq!(
        artifact
            .get("circuit")
            .and_then(tvs_serve::json::Value::as_str),
        Some("s444")
    );
    table.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
