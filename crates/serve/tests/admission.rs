//! Lint-gated admission over the wire: a deny-level netlist is rejected
//! with the typed `rejected` error (structured diagnostics, no engine run),
//! the verdict is cached per artifact key, and the `lint` op reports the
//! same findings without touching the job table.

use tvs_serve::json::Value;
use tvs_serve::{Client, ServeError, Server, ServerConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A netlist whose builder trips on the `b <-> c` combinational cycle.
const CYCLIC: &str = "INPUT(a)\nOUTPUT(y)\nb = AND(a, c)\nc = NOT(b)\ny = AND(a, b)\n";

fn counter(stats: &Value, name: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_u64)
        .unwrap_or(0)
}

#[test]
fn deny_level_netlists_are_rejected_without_an_engine_run() {
    let cache = temp_dir("admission");
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".into(),
        cache_dir: cache.clone(),
        workers: 1,
        queue_capacity: 4,
        checkpoint_every: 0,
        cache_cap_bytes: 0,
        client_quota: 0,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).expect("connect");
    let runs_before = counter(&client.stats().expect("stats"), "serve.engine_runs");

    // The lint op reports the finding without creating a job.
    let (admitted, lint) = client.lint("cyclic", CYCLIC).expect("lint op");
    assert!(!admitted, "cyclic netlist must not be admitted");
    let rendered = lint.to_text();
    assert!(rendered.contains("IR004"), "missing IR004 in {rendered}");

    // Submitting it gets the typed wire error carrying the same document.
    let err = client
        .submit("cyclic", CYCLIC, Value::Obj(vec![]))
        .expect_err("cyclic submit must fail");
    match &err {
        ServeError::Rejected {
            diagnostics,
            cached,
        } => {
            assert!(!cached, "first verdict must be fresh");
            assert!(
                diagnostics.contains("IR004"),
                "missing IR004: {diagnostics}"
            );
        }
        other => panic!("expected Rejected, got {other:?}"),
    }
    assert_eq!(err.wire_code(), "rejected");

    // Resubmission is served from the rejection cache.
    let err = client
        .submit("cyclic", CYCLIC, Value::Obj(vec![]))
        .expect_err("cached cyclic submit must fail");
    match &err {
        ServeError::Rejected { cached, .. } => {
            assert!(cached, "second verdict must come from the rejection cache");
        }
        other => panic!("expected cached Rejected, got {other:?}"),
    }

    // No engine ever ran; the counters saw both rejections.
    let stats = client.stats().expect("stats");
    assert_eq!(
        counter(&stats, "serve.engine_runs"),
        runs_before,
        "rejection must not start an engine run"
    );
    assert!(counter(&stats, "serve.rejected") >= 1);
    assert!(counter(&stats, "serve.rejected_cache_hits") >= 1);

    // A clean netlist on the same connection still sails through.
    let clean = "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, q)\n";
    let (admitted, _) = client.lint("clean", clean).expect("clean lint");
    assert!(admitted, "clean netlist must be admitted");
    let (job, _) = client
        .submit("clean", clean, Value::Obj(vec![]))
        .expect("clean submit");
    let status = client.wait(&job).expect("wait");
    assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));

    client.shutdown().expect("shutdown");
    server_thread.join().expect("join").expect("server run");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn syntax_errors_keep_the_plain_netlist_wire_code() {
    let cache = temp_dir("admission-syntax");
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".into(),
        cache_dir: cache.clone(),
        workers: 1,
        queue_capacity: 4,
        checkpoint_every: 0,
        cache_cap_bytes: 0,
        client_quota: 0,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .submit("garbage", "this is not bench\n", Value::Obj(vec![]))
        .expect_err("garbage must fail");
    assert_eq!(err.wire_code(), "netlist");
    let err = client
        .lint("garbage", "this is not bench\n")
        .expect_err("garbage lint must fail");
    assert_eq!(err.wire_code(), "netlist");

    client.shutdown().expect("shutdown");
    server_thread.join().expect("join").expect("server run");
    let _ = std::fs::remove_dir_all(&cache);
}
