//! The protocol-version handshake: every frame carries `"v"`, mismatches
//! are rejected with the typed `version` error, and typed error payloads
//! survive a wire round trip without degrading into prose.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use tvs_serve::json::{self, Value};
use tvs_serve::proto::{read_frame, write_frame, PROTO_VERSION};
use tvs_serve::{Client, ServeError, Server, ServerConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Sends one raw frame (no client-side version stamping) and returns the
/// parsed response.
fn raw_request(addr: &str, request: &Value) -> Value {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &request.to_text()).expect("write");
    let frame = read_frame(&mut reader).expect("read").expect("response");
    json::parse(&frame).expect("response parses")
}

#[test]
fn mismatched_and_missing_versions_get_the_typed_error() {
    let cache = temp_dir("version");
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".into(),
        cache_dir: cache.clone(),
        workers: 1,
        queue_capacity: 4,
        checkpoint_every: 0,
        cache_cap_bytes: 0,
        client_quota: 0,
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Wrong version: typed rejection carrying both sides' numbers.
    let wrong = raw_request(
        &addr,
        &Value::Obj(vec![
            ("op".into(), Value::str("stats")),
            ("v".into(), Value::num_u64(PROTO_VERSION + 41)),
        ]),
    );
    assert_eq!(wrong.get("ok").and_then(Value::as_bool), Some(false));
    assert_eq!(wrong.get("error").and_then(Value::as_str), Some("version"));
    assert_eq!(
        wrong.get("got").and_then(Value::as_u64),
        Some(PROTO_VERSION + 41)
    );
    assert_eq!(
        wrong.get("want").and_then(Value::as_u64),
        Some(PROTO_VERSION)
    );

    // No version at all (a pre-versioning peer): same rejection, no `got`.
    let missing = raw_request(&addr, &Value::Obj(vec![("op".into(), Value::str("stats"))]));
    assert_eq!(
        missing.get("error").and_then(Value::as_str),
        Some("version")
    );
    assert!(missing.get("got").is_none());
    assert_eq!(
        missing.get("want").and_then(Value::as_u64),
        Some(PROTO_VERSION)
    );

    // The stock client stamps the current version and sails through.
    let mut client = Client::connect(&addr).expect("client connect");
    let stats = client.stats().expect("versioned stats succeeds");
    assert_eq!(stats.get("ok").and_then(Value::as_bool), Some(true));

    client.shutdown().expect("shutdown");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn typed_error_payloads_survive_the_wire_round_trip() {
    let busy = ServeError::Busy {
        open: 7,
        capacity: 8,
    };
    match ServeError::from_wire(&busy.to_wire()) {
        ServeError::Busy { open, capacity } => {
            assert_eq!((open, capacity), (7, 8));
        }
        other => panic!("busy degraded to {other:?}"),
    }

    let version = ServeError::Version {
        got: Some(3),
        want: PROTO_VERSION,
    };
    match ServeError::from_wire(&version.to_wire()) {
        ServeError::Version { got, want } => {
            assert_eq!(got, Some(3));
            assert_eq!(want, PROTO_VERSION);
        }
        other => panic!("version degraded to {other:?}"),
    }

    // The regression this guards: unknown-job used to re-wrap the prose
    // message, so clients printed `unknown job "unknown job \"j9\""`.
    let unknown = ServeError::UnknownJob("j9".to_owned());
    match ServeError::from_wire(&unknown.to_wire()) {
        ServeError::UnknownJob(job) => assert_eq!(job, "j9"),
        other => panic!("unknown-job degraded to {other:?}"),
    }
    assert_eq!(
        ServeError::from_wire(&unknown.to_wire()).to_string(),
        unknown.to_string(),
        "round-tripped display must not double-wrap"
    );
}
