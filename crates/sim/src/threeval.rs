//! Three-valued levelized simulation.

use tvs_logic::{Cube, Logic};
use tvs_netlist::{GateId, Netlist, ScanView};

/// Three-valued (0/1/X) simulator over a full-scan combinational view.
///
/// Evaluates the whole core in one levelized sweep, preserving don't-cares.
/// ATPG uses this for implication and cube validation; the stitching engine
/// uses it to check that partially specified vectors already guarantee a
/// detection.
///
/// # Examples
///
/// ```
/// use tvs_logic::{Cube, Logic};
/// use tvs_netlist::{GateKind, NetlistBuilder};
/// use tvs_sim::ThreeValSim;
///
/// let mut b = NetlistBuilder::new("and");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let netlist = b.build()?;
/// let view = netlist.scan_view()?;
/// let mut sim = ThreeValSim::new(&netlist, &view);
///
/// let out = sim.run(&"0X".parse::<Cube>()?);
/// assert_eq!(out[0], Logic::Zero); // 0 AND X = 0
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThreeValSim<'a> {
    netlist: &'a Netlist,
    view: &'a ScanView,
    values: Vec<Logic>,
    scratch: Vec<Logic>,
}

impl<'a> ThreeValSim<'a> {
    /// Creates a simulator bound to a netlist and its scan view.
    pub fn new(netlist: &'a Netlist, view: &'a ScanView) -> Self {
        ThreeValSim {
            netlist,
            view,
            values: vec![Logic::X; netlist.gate_count()],
            scratch: Vec::new(),
        }
    }

    /// Runs one sweep: sets combinational inputs from `inputs` (indexed by
    /// the view's input convention, PIs then PPIs) and returns the
    /// combinational outputs (POs then PPOs).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != view.input_count()`.
    pub fn run(&mut self, inputs: &Cube) -> Cube {
        assert_eq!(
            inputs.len(),
            self.view.input_count(),
            "input cube length must match the scan view"
        );
        for (i, v) in inputs.iter().enumerate() {
            self.values[self.view.input_gate(i).index()] = v;
        }
        for &id in self.view.order() {
            let gate = self.netlist.gate(id);
            self.scratch.clear();
            self.scratch
                .extend(gate.fanin().iter().map(|&f| self.values[f.index()]));
            self.values[id.index()] = gate.kind().eval(&self.scratch);
        }
        (0..self.view.output_count())
            .map(|o| self.values[self.view.output_gate(o).index()])
            .collect()
    }

    /// The value of any signal after the last [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from the same netlist.
    pub fn value(&self, id: GateId) -> Logic {
        self.values[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fig1_fault_free_responses_match_paper() {
        // The paper's Figure 1 lists four test vectors (a, b, c) and their
        // fault-free responses. PPO order is (F, E, D) = next (a, b, c).
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ThreeValSim::new(&n, &v);
        let cases = [
            ("110", "111"),
            ("001", "010"),
            ("100", "000"),
            ("010", "010"),
        ];
        for (tv, resp) in cases {
            let out = sim.run(&tv.parse().unwrap());
            assert_eq!(out.to_string(), resp, "TV {tv}");
        }
    }

    #[test]
    fn x_propagates_conservatively() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ThreeValSim::new(&n, &v);
        // a = X makes D = AND(a,b) = X; E = OR(1,0) = 1; F = AND(X,1) = X.
        let out = sim.run(&"X10".parse().unwrap());
        assert_eq!(out.to_string(), "X1X");
    }

    #[test]
    fn value_exposes_internal_nets() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ThreeValSim::new(&n, &v);
        sim.run(&"110".parse().unwrap());
        assert_eq!(sim.value(n.find("D").unwrap()), Logic::One);
        assert_eq!(sim.value(n.find("E").unwrap()), Logic::One);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn wrong_input_length_panics() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        ThreeValSim::new(&n, &v).run(&"11".parse().unwrap());
    }
}
