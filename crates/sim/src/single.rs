//! Single-pattern fault-free evaluation convenience.

use tvs_logic::BitVec;
use tvs_netlist::{Netlist, ScanView};

use crate::ParallelSim;

/// Evaluates the combinational core on one fully specified input pattern.
///
/// `inputs` follows the view's PI-then-PPI convention; the result is the
/// PO-then-PPO output bits. This is the reference semantics of conventional
/// full-shift scan testing: shift `inputs[pi_count()..]` into the chain,
/// apply `inputs[..pi_count()]` at the pins, pulse the clock, and the PPO
/// part of the result is what lands back in the chain.
///
/// For repeated evaluation construct a [`ParallelSim`] once instead.
///
/// # Panics
///
/// Panics if `inputs.len() != view.input_count()`.
///
/// # Examples
///
/// ```
/// use tvs_logic::BitVec;
/// use tvs_netlist::{GateKind, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("xor");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::Xor, &["a", "b"])?;
/// b.mark_output("y")?;
/// let netlist = b.build()?;
/// let view = netlist.scan_view()?;
/// let out = tvs_sim::eval_single(&netlist, &view, &BitVec::from_bools([true, false]));
/// assert!(out.get(0));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn eval_single(netlist: &Netlist, view: &ScanView, inputs: &BitVec) -> BitVec {
    assert_eq!(
        inputs.len(),
        view.input_count(),
        "input bit count must match the scan view"
    );
    let words: Vec<u64> = inputs.iter().map(|b| if b { 1 } else { 0 }).collect();
    let mut sim = ParallelSim::new(netlist, view);
    sim.eval(&words, &[]);
    sim.output_slot(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn matches_hand_computation() {
        let mut b = NetlistBuilder::new("c");
        b.add_input("a").unwrap();
        b.add_dff("q", "d").unwrap();
        b.add_gate("d", GateKind::Nand, &["a", "q"]).unwrap();
        b.mark_output("d").unwrap();
        let n = b.build().unwrap();
        let v = n.scan_view().unwrap();
        // inputs: [a, q]; outputs: [d (PO), d (PPO)]
        let out = eval_single(&n, &v, &BitVec::from_bools([true, true]));
        assert_eq!(out.to_string(), "00");
        let out = eval_single(&n, &v, &BitVec::from_bools([true, false]));
        assert_eq!(out.to_string(), "11");
    }
}
