//! Logic-simulation substrate for the TVS DFT toolkit.
//!
//! Two engines over the full-scan combinational view
//! ([`ScanView`](tvs_netlist::ScanView)):
//!
//! * [`ThreeValSim`] — three-valued (0/1/X) levelized simulation of a single
//!   test cube. Used by ATPG (X-path reasoning, cube validation) and anywhere
//!   don't-cares must be preserved.
//! * [`ParallelSim`] — 64-slot bit-parallel two-valued simulation. Each bit
//!   position ("slot") of a `u64` word is an independent machine with its own
//!   stimulus, and [`Injection`]s force a gate output or a single gate input
//!   pin to a constant in selected slots. This is the engine under both the
//!   PPSFP-style fault simulator and the stitching engine's hidden-fault
//!   bookkeeping, where each slot simulates a *different* faulty machine
//!   under a *different* mutated stimulus.
//!
//! [`eval_single`] wraps [`ParallelSim`] for the common one-pattern,
//! fault-free case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parallel;
mod single;
mod threeval;

pub use parallel::{Injection, ParallelSim};
pub use single::eval_single;
pub use threeval::ThreeValSim;
