//! 64-slot bit-parallel two-valued simulation with per-slot injections,
//! with an event-driven incremental mode over a seeded baseline.

use tvs_exec::Counter;
use tvs_logic::BitVec;
use tvs_netlist::{GateId, GateKind, Netlist, ScanView};

/// Forces a signal to a constant in selected slots during one sweep.
///
/// * `pin: None` — the gate's *output* (stem) is forced; for source gates
///   (PIs / scan cells) this overrides the stimulus.
/// * `pin: Some(p)` — only the value seen by this gate's input pin `p`
///   (a fanout branch) is forced; the driving signal itself is unaffected.
///   For `Dff` gates, pin 0 is the value captured by the flip-flop
///   (a pseudo-primary output of the scan view).
///
/// `slots` is a bit mask selecting which of the 64 machines the injection
/// applies to — the mechanism by which 64 *different* faulty machines share
/// one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// The gate whose output or input pin is forced.
    pub gate: GateId,
    /// `None` = output stem; `Some(p)` = input pin `p`.
    pub pin: Option<u32>,
    /// The forced value.
    pub stuck: bool,
    /// Mask of slots the injection applies to.
    pub slots: u64,
}

/// 64-slot bit-parallel two-valued simulator.
///
/// Each bit position of every `u64` word is an independent machine with its
/// own stimulus. One [`eval`](ParallelSim::eval) call performs a full
/// levelized sweep; [`Injection`]s implement stuck-at faults.
///
/// # Examples
///
/// Simulate two patterns of an AND gate at once:
///
/// ```
/// use tvs_netlist::{GateKind, NetlistBuilder};
/// use tvs_sim::ParallelSim;
///
/// let mut b = NetlistBuilder::new("and");
/// b.add_input("a")?;
/// b.add_input("b")?;
/// b.add_gate("y", GateKind::And, &["a", "b"])?;
/// b.mark_output("y")?;
/// let netlist = b.build()?;
/// let view = netlist.scan_view()?;
/// let mut sim = ParallelSim::new(&netlist, &view);
///
/// // slot 0: a=1,b=1; slot 1: a=1,b=0
/// sim.eval(&[0b11, 0b01], &[]);
/// assert_eq!(sim.output_word(0) & 0b11, 0b01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSim<'a> {
    netlist: &'a Netlist,
    view: &'a ScanView,
    words: Vec<u64>,
    outputs: Vec<u64>,
    /// Dense flag per gate: index+1 into `inj_by_gate` when the gate carries
    /// injections in the current sweep (0 = none). Rebuilt per eval call but
    /// cleared lazily to stay O(#injections).
    inj_flag: Vec<u32>,
    inj_by_gate: Vec<Vec<Injection>>,
    touched: Vec<GateId>,
    /// Signal words of the seeded baseline sweep (valid iff `base_valid`).
    base_words: Vec<u64>,
    base_valid: bool,
    /// Combinational gates carrying injections in the baseline sweep; they
    /// must be re-evaluated by every incremental sweep (removing an
    /// injection changes a gate's function just like adding one).
    base_inj_gates: Vec<GateId>,
    /// Gates whose `words` entry diverged from `base_words` in the last
    /// incremental sweep — the set to restore before the next one.
    base_dirty: Vec<GateId>,
    /// Dense per-gate "already enqueued" flag for the event worklist.
    queued: Vec<bool>,
    /// Level-indexed worklist buckets (index = topological level).
    buckets: Vec<Vec<GateId>>,
    gates_evaluated: Counter,
    events_saved: Counter,
}

impl<'a> ParallelSim<'a> {
    /// Creates a simulator bound to a netlist and its scan view.
    pub fn new(netlist: &'a Netlist, view: &'a ScanView) -> Self {
        ParallelSim {
            netlist,
            view,
            words: vec![0; netlist.gate_count()],
            outputs: vec![0; view.output_count()],
            inj_flag: vec![0; netlist.gate_count()],
            inj_by_gate: Vec::new(),
            touched: Vec::new(),
            base_words: Vec::new(),
            base_valid: false,
            base_inj_gates: Vec::new(),
            base_dirty: Vec::new(),
            queued: vec![false; netlist.gate_count()],
            buckets: vec![Vec::new(); view.depth() as usize + 1],
            gates_evaluated: tvs_exec::counter("sim.gates_evaluated"),
            events_saved: tvs_exec::counter("sim.events_saved"),
        }
    }

    /// Runs one sweep.
    ///
    /// `input_words[i]` is the 64-slot stimulus of combinational input `i`
    /// (the view's PI-then-PPI convention). Injections force values per the
    /// [`Injection`] semantics. Results are read back with
    /// [`word`](Self::word) / [`output_word`](Self::output_word).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != view.input_count()`, or if an
    /// injection names an out-of-range pin.
    pub fn eval(&mut self, input_words: &[u64], injections: &[Injection]) {
        assert_eq!(
            input_words.len(),
            self.view.input_count(),
            "input word count must match the scan view"
        );
        self.base_valid = false;
        self.index_injections(injections);

        // Load sources, applying output-stem injections on PIs / scan cells.
        for (i, &w) in input_words.iter().enumerate() {
            let gate = self.view.input_gate(i);
            self.words[gate.index()] = self.source_word(gate, w);
        }

        // Levelized sweep.
        for &id in self.view.order() {
            self.words[id.index()] = self.gate_word(id);
        }
        self.gates_evaluated.add(self.view.order().len() as u64);

        self.read_outputs();
    }

    /// Runs one full sweep and records it as the **baseline** for subsequent
    /// [`eval_incremental`](Self::eval_incremental) calls.
    pub fn seed_baseline(&mut self, input_words: &[u64], injections: &[Injection]) {
        self.eval(input_words, injections);
        self.base_words.clone_from(&self.words);
        self.base_inj_gates.clear();
        for inj in injections {
            if self.netlist.gate(inj.gate).kind().is_combinational() {
                self.base_inj_gates.push(inj.gate);
            }
        }
        self.base_dirty.clear();
        self.base_valid = true;
    }

    /// Whether a baseline sweep is currently seeded.
    pub fn has_baseline(&self) -> bool {
        self.base_valid
    }

    /// Runs one sweep **incrementally** against the seeded baseline: only
    /// the fanout cones of sources whose stimulus words changed and of gates
    /// whose injection set changed (in this call or the baseline) are
    /// re-evaluated; exact value equality stops propagation early.
    ///
    /// The results (readable through [`word`](Self::word) /
    /// [`output_word`](Self::output_word)) are bit-identical to a full
    /// [`eval`](Self::eval) with the same arguments — the sweep is a pure
    /// function of sources and injections, so skipping provably unchanged
    /// gates cannot alter any value. When the changed inputs' precomputed
    /// [`ScanView::input_cone`]s already cover the whole core, the kernel
    /// falls back to a plain full sweep (the worklist would only add
    /// overhead). The `sim.gates_evaluated` / `sim.events_saved` counter
    /// pair records how much work each mode performed and avoided.
    ///
    /// Falls back to a full (non-baseline) [`eval`](Self::eval) when no
    /// baseline is seeded.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != view.input_count()`, or if an
    /// injection names an out-of-range pin.
    pub fn eval_incremental(&mut self, input_words: &[u64], injections: &[Injection]) {
        if !self.base_valid {
            self.eval(input_words, injections);
            return;
        }
        assert_eq!(
            input_words.len(),
            self.view.input_count(),
            "input word count must match the scan view"
        );

        // Restore the signals the previous incremental sweep diverged on:
        // afterwards `words == base_words` exactly.
        for i in std::mem::take(&mut self.base_dirty) {
            self.words[i.index()] = self.base_words[i.index()];
        }
        self.index_injections(injections);

        // Pass 1: find changed sources and bound the event-path work by
        // their precomputed fanout cones. (Injection-induced work is not in
        // the estimate; injection cones are small and the bound stays a
        // heuristic for choosing the cheaper mode, never a correctness
        // input.)
        let mut changed: Vec<(GateId, u64)> = Vec::new();
        let mut cone_bound = 0usize;
        for (i, &w) in input_words.iter().enumerate() {
            let gate = self.view.input_gate(i);
            let eff = self.source_word(gate, w);
            if eff != self.words[gate.index()] {
                cone_bound += self.view.input_cone(i).len();
                changed.push((gate, eff));
            }
        }

        let total = self.view.order().len();
        if cone_bound >= total {
            // Full-sweep fallback, still tracking divergence from the
            // baseline so the next incremental call can restore it.
            for (gate, eff) in changed {
                self.words[gate.index()] = eff;
                self.base_dirty.push(gate);
            }
            for &id in self.view.order() {
                let out = self.gate_word(id);
                if out != self.base_words[id.index()] {
                    self.base_dirty.push(id);
                }
                self.words[id.index()] = out;
            }
            self.gates_evaluated.add(total as u64);
            self.read_outputs();
            return;
        }

        // Seed the worklist: fanout of changed sources, plus every
        // combinational gate whose injection set differs from the baseline.
        for &(gate, eff) in &changed {
            self.words[gate.index()] = eff;
            self.base_dirty.push(gate);
            self.enqueue_fanout(gate);
        }
        for inj in injections {
            if self.netlist.gate(inj.gate).kind().is_combinational() {
                self.enqueue(inj.gate);
            }
        }
        let base_inj = std::mem::take(&mut self.base_inj_gates);
        for &g in &base_inj {
            self.enqueue(g);
        }
        self.base_inj_gates = base_inj;

        // Drain buckets in increasing level order: every fanin of a level-n
        // gate is final once levels < n are drained, so one visit per gate
        // suffices and exact equality suppresses further propagation.
        let mut evaluated = 0u64;
        for lvl in 1..self.buckets.len() {
            let mut bucket = std::mem::take(&mut self.buckets[lvl]);
            for &id in &bucket {
                self.queued[id.index()] = false;
                let out = self.gate_word(id);
                evaluated += 1;
                if out != self.words[id.index()] {
                    self.words[id.index()] = out;
                    if out != self.base_words[id.index()] {
                        self.base_dirty.push(id);
                    }
                    self.enqueue_fanout(id);
                }
            }
            bucket.clear();
            self.buckets[lvl] = bucket;
        }
        self.gates_evaluated.add(evaluated);
        self.events_saved.add(total as u64 - evaluated);

        self.read_outputs();
    }

    /// Indexes `injections` by gate into `inj_flag` / `inj_by_gate`,
    /// lazily clearing the previous call's flags.
    fn index_injections(&mut self, injections: &[Injection]) {
        for &id in &self.touched {
            self.inj_flag[id.index()] = 0;
        }
        self.touched.clear();
        self.inj_by_gate.clear();
        for &inj in injections {
            let gi = inj.gate.index();
            if self.inj_flag[gi] == 0 {
                self.inj_by_gate.push(Vec::new());
                self.inj_flag[gi] = self.inj_by_gate.len() as u32;
                self.touched.push(inj.gate);
            }
            self.inj_by_gate[(self.inj_flag[gi] - 1) as usize].push(inj);
        }
    }

    /// A source gate's effective word: the stimulus with any output-stem
    /// injections of the current call applied.
    fn source_word(&self, gate: GateId, stimulus: u64) -> u64 {
        let mut w = stimulus;
        if self.inj_flag[gate.index()] != 0 {
            for inj in &self.inj_by_gate[(self.inj_flag[gate.index()] - 1) as usize] {
                if inj.pin.is_none() {
                    w = apply(w, inj.stuck, inj.slots);
                }
            }
        }
        w
    }

    /// Evaluates one combinational gate from the current `words`, honouring
    /// the current call's injections.
    fn gate_word(&self, id: GateId) -> u64 {
        let gate = self.netlist.gate(id);
        let flag = self.inj_flag[id.index()];
        if flag == 0 {
            eval_plain(gate.kind(), gate.fanin(), &self.words)
        } else {
            let injs = &self.inj_by_gate[(flag - 1) as usize];
            let mut out = eval_injected(gate.kind(), gate.fanin(), &self.words, injs);
            for inj in injs {
                if inj.pin.is_none() {
                    out = apply(out, inj.stuck, inj.slots);
                }
            }
            out
        }
    }

    #[inline]
    fn enqueue(&mut self, id: GateId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            self.buckets[self.view.level(id) as usize].push(id);
        }
    }

    fn enqueue_fanout(&mut self, id: GateId) {
        let view = self.view;
        for &c in view.comb_fanout(id) {
            self.enqueue(c);
        }
    }

    /// Reads outputs; DFF input-pin injections hit the captured PPO value.
    fn read_outputs(&mut self) {
        for o in 0..self.view.output_count() {
            let driver = self.view.output_gate(o);
            let mut w = self.words[driver.index()];
            if o >= self.view.po_count() {
                let ff = self.view.ppis()[o - self.view.po_count()];
                if self.inj_flag[ff.index()] != 0 {
                    for inj in &self.inj_by_gate[(self.inj_flag[ff.index()] - 1) as usize] {
                        if inj.pin == Some(0) {
                            w = apply(w, inj.stuck, inj.slots);
                        }
                    }
                }
            }
            self.outputs[o] = w;
        }
    }

    /// The 64-slot value of any signal after the last sweep.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from the same netlist.
    pub fn word(&self, id: GateId) -> u64 {
        self.words[id.index()]
    }

    /// The 64-slot value of combinational output `o` (POs then PPOs),
    /// including any `Dff` input-pin injections.
    ///
    /// # Panics
    ///
    /// Panics if `o >= view.output_count()`.
    pub fn output_word(&self, o: usize) -> u64 {
        self.outputs[o]
    }

    /// Extracts one slot of the outputs as a [`BitVec`] (POs then PPOs).
    pub fn output_slot(&self, slot: u32) -> BitVec {
        self.outputs.iter().map(|w| (w >> slot) & 1 == 1).collect()
    }
}

#[inline]
fn apply(word: u64, stuck: bool, slots: u64) -> u64 {
    if stuck {
        word | slots
    } else {
        word & !slots
    }
}

#[inline]
fn fanin_word(words: &[u64], fanin: &[GateId], pin: usize, injs: &[Injection]) -> u64 {
    let mut w = words[fanin[pin].index()];
    for inj in injs {
        if inj.pin == Some(pin as u32) {
            w = apply(w, inj.stuck, inj.slots);
        }
    }
    w
}

fn eval_plain(kind: GateKind, fanin: &[GateId], words: &[u64]) -> u64 {
    let f = |p: usize| words[fanin[p].index()];
    eval_words(kind, fanin.len(), f)
}

fn eval_injected(kind: GateKind, fanin: &[GateId], words: &[u64], injs: &[Injection]) -> u64 {
    let f = |p: usize| fanin_word(words, fanin, p, injs);
    eval_words(kind, fanin.len(), f)
}

#[inline]
fn eval_words(kind: GateKind, arity: usize, f: impl Fn(usize) -> u64) -> u64 {
    match kind {
        GateKind::Buf => f(0),
        GateKind::Not => !f(0),
        GateKind::And => (0..arity).fold(!0u64, |a, p| a & f(p)),
        GateKind::Nand => !(0..arity).fold(!0u64, |a, p| a & f(p)),
        GateKind::Or => (0..arity).fold(0u64, |a, p| a | f(p)),
        GateKind::Nor => !(0..arity).fold(0u64, |a, p| a | f(p)),
        GateKind::Xor => (0..arity).fold(0u64, |a, p| a ^ f(p)),
        GateKind::Xnor => !(0..arity).fold(0u64, |a, p| a ^ f(p)),
        GateKind::Input | GateKind::Dff => unreachable!("sources are not swept"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::NetlistBuilder;

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn four_paper_vectors_in_four_slots() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        // slots 0..3 carry TVs 110, 001, 100, 010 (inputs a, b, c).
        let a = 0b0101u64; // slot0=1, slot1=0, slot2=1, slot3=0  -> LSB is slot 0
        let b = 0b1001u64;
        let c = 0b0010u64;
        sim.eval(&[a, b, c], &[]);
        // expected responses (F, E, D): 111, 010, 000, 010
        let expect = ["111", "010", "000", "010"];
        for slot in 0..4 {
            assert_eq!(sim.output_slot(slot).to_string(), expect[slot as usize]);
        }
    }

    #[test]
    fn output_stem_injection_on_internal_gate() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        // TV 110 in both slots; slot 1 has F stuck-at-0 -> response 011.
        let f = n.find("F").unwrap();
        sim.eval(
            &[0b11, 0b11, 0b00],
            &[Injection {
                gate: f,
                pin: None,
                stuck: false,
                slots: 0b10,
            }],
        );
        assert_eq!(sim.output_slot(0).to_string(), "111");
        assert_eq!(sim.output_slot(1).to_string(), "011");
    }

    #[test]
    fn input_pin_injection_affects_only_that_branch() {
        // y = AND(a, a) with pin-1 stuck-at-0: output is a & 0 = 0, but the
        // signal a itself (observed directly) is unchanged.
        let mut b = NetlistBuilder::new("branch");
        b.add_input("a").unwrap();
        b.add_gate("y", GateKind::And, &["a", "a"]).unwrap();
        b.mark_output("a").unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        let y = n.find("y").unwrap();
        sim.eval(
            &[!0u64],
            &[Injection {
                gate: y,
                pin: Some(1),
                stuck: false,
                slots: 0b1,
            }],
        );
        assert_eq!(sim.output_word(0) & 1, 1, "signal a unaffected");
        assert_eq!(sim.output_word(1) & 1, 0, "gate y sees stuck branch");
        assert_eq!(sim.output_word(1) & 2, 2, "slot 1 fault-free");
    }

    #[test]
    fn source_stem_injection_overrides_stimulus() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        let a = n.find("a").unwrap();
        // stimulus a=0 but stuck-at-1 in slot 0.
        sim.eval(
            &[0, !0, 0],
            &[Injection {
                gate: a,
                pin: None,
                stuck: true,
                slots: 0b1,
            }],
        );
        // D = AND(a, b): slot 0 sees a=1 -> D=1; slot 1 sees a=0 -> D=0.
        assert_eq!(sim.word(n.find("D").unwrap()) & 0b11, 0b01);
    }

    #[test]
    fn dff_input_pin_injection_hits_captured_ppo() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        let ff_a = n.find("a").unwrap(); // captures F
        sim.eval(
            &[!0, !0, 0],
            &[Injection {
                gate: ff_a,
                pin: Some(0),
                stuck: false,
                slots: 0b1,
            }],
        );
        // F itself is 1 (D=1 or E=1); PPO 0 (into cell a) forced 0 in slot 0.
        assert_eq!(sim.word(n.find("F").unwrap()) & 1, 1);
        assert_eq!(sim.output_word(0) & 1, 0);
        assert_eq!(sim.output_word(0) & 2, 2);
    }

    #[test]
    fn consecutive_evals_reset_injections() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        let f = n.find("F").unwrap();
        sim.eval(
            &[0b1, 0b1, 0b0],
            &[Injection {
                gate: f,
                pin: None,
                stuck: false,
                slots: 0b1,
            }],
        );
        assert_eq!(sim.output_slot(0).to_string(), "011");
        sim.eval(&[0b1, 0b1, 0b0], &[]);
        assert_eq!(sim.output_slot(0).to_string(), "111");
    }

    #[test]
    fn incremental_matches_full_eval_on_random_deltas() {
        use tvs_logic::Prng;

        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut inc = ParallelSim::new(&n, &v);
        let mut full = ParallelSim::new(&n, &v);
        let mut rng = Prng::seed_from_u64(0x17C0);
        let base = [0x5555u64, 0x00FF, 0xF0F0];
        inc.seed_baseline(&base, &[]);
        let all: Vec<GateId> = n.gate_ids().collect();
        for round in 0..64 {
            // Mutate a random subset of inputs and inject a random fault.
            let mut words = base;
            for w in &mut words {
                if rng.next_bool() {
                    *w ^= 1u64 << rng.gen_range(0..64);
                }
            }
            let injections = if round % 3 == 0 {
                vec![]
            } else {
                vec![Injection {
                    gate: all[rng.gen_range(0..all.len())],
                    pin: None,
                    stuck: rng.next_bool(),
                    slots: rng.next_u64(),
                }]
            };
            inc.eval_incremental(&words, &injections);
            full.eval(&words, &injections);
            for &id in &all {
                assert_eq!(inc.word(id), full.word(id), "round {round}");
            }
            for o in 0..v.output_count() {
                assert_eq!(inc.output_word(o), full.output_word(o), "round {round}");
            }
        }
    }

    #[test]
    fn incremental_reverts_removed_injections() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        let f = n.find("F").unwrap();
        let inj = Injection {
            gate: f,
            pin: None,
            stuck: false,
            slots: !0,
        };
        // Baseline carries the injection; the incremental sweep removes it.
        sim.seed_baseline(&[!0, !0, 0], &[inj]);
        assert_eq!(sim.output_word(0), 0);
        sim.eval_incremental(&[!0, !0, 0], &[]);
        assert_eq!(sim.output_word(0), !0, "removed injection must revert");
        sim.eval_incremental(&[!0, !0, 0], &[inj]);
        assert_eq!(sim.output_word(0), 0, "re-added injection must apply");
    }

    #[test]
    fn identical_incremental_call_changes_nothing_and_saves_events() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        sim.seed_baseline(&[0b01, 0b11, 0b10], &[]);
        let before: Vec<u64> = (0..v.output_count()).map(|o| sim.output_word(o)).collect();
        sim.eval_incremental(&[0b01, 0b11, 0b10], &[]);
        let after: Vec<u64> = (0..v.output_count()).map(|o| sim.output_word(o)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn incremental_without_baseline_falls_back_to_full() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut sim = ParallelSim::new(&n, &v);
        assert!(!sim.has_baseline());
        sim.eval_incremental(&[!0, !0, 0], &[]);
        assert_eq!(sim.output_word(0), !0);
        sim.seed_baseline(&[!0, !0, 0], &[]);
        assert!(sim.has_baseline());
        // A plain eval invalidates the baseline.
        sim.eval(&[0, 0, 0], &[]);
        assert!(!sim.has_baseline());
    }

    #[test]
    fn agrees_with_three_valued_sim_on_random_patterns() {
        use tvs_logic::{Cube, Logic, Prng};

        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut psim = ParallelSim::new(&n, &v);
        let mut tsim = crate::ThreeValSim::new(&n, &v);
        let mut rng = Prng::seed_from_u64(11);
        for _ in 0..32 {
            let bits: Vec<bool> = (0..3).map(|_| rng.next_bool()).collect();
            let words: Vec<u64> = bits.iter().map(|&b| if b { 1 } else { 0 }).collect();
            psim.eval(&words, &[]);
            let cube: Cube = bits.iter().map(|&b| Logic::from(b)).collect();
            let expect = tsim.run(&cube);
            assert_eq!(psim.output_slot(0).to_string(), expect.to_string());
        }
    }
}
