//! The two simulation engines must agree wherever their domains overlap:
//! on fully specified inputs, 64-slot bit-parallel simulation and
//! three-valued simulation compute identical outputs, on arbitrary
//! generated circuits.
//!
//! Seeded randomized invariants (formerly proptest-based; rewritten as
//! deterministic loops so the workspace has no external test deps).

use tvs_circuits::{synthesize, SynthConfig};
use tvs_logic::{BitVec, Cube, Logic, Prng};
use tvs_sim::{eval_single, ParallelSim, ThreeValSim};

#[test]
fn engines_agree_on_specified_inputs() {
    let mut meta = Prng::seed_from_u64(0xA62E);
    for _ in 0..24 {
        let seed = meta.next_u64() % 500;
        let pattern_seed = meta.next_u64() % 500;
        let netlist = synthesize(
            "agree",
            &SynthConfig {
                inputs: 4,
                outputs: 3,
                flip_flops: 9,
                gates: 70,
                seed,
                depth_hint: None,
            },
        );
        let view = netlist.scan_view().expect("valid");
        let mut tsim = ThreeValSim::new(&netlist, &view);
        let mut psim = ParallelSim::new(&netlist, &view);
        let mut rng = Prng::seed_from_u64(pattern_seed);

        // 64 random patterns at once in the parallel engine.
        let patterns: Vec<BitVec> = (0..64)
            .map(|_| (0..view.input_count()).map(|_| rng.next_bool()).collect())
            .collect();
        let mut words = vec![0u64; view.input_count()];
        for (s, p) in patterns.iter().enumerate() {
            for (i, bit) in p.iter().enumerate() {
                if bit {
                    words[i] |= 1 << s;
                }
            }
        }
        psim.eval(&words, &[]);

        for (s, p) in patterns.iter().enumerate().step_by(7) {
            let cube: Cube = p.iter().map(Logic::from).collect();
            let expect = tsim.run(&cube);
            let got = psim.output_slot(s as u32);
            assert_eq!(got.to_string(), expect.to_string(), "slot {s}");
        }
    }
}

#[test]
fn three_valued_sim_is_monotone_under_refinement() {
    let mut meta = Prng::seed_from_u64(0xA62F);
    for _ in 0..24 {
        // Replacing an X input by a constant must never change an output
        // that was already specified (Kleene monotonicity, circuit level).
        let seed = meta.next_u64() % 300;
        let netlist = synthesize(
            "mono",
            &SynthConfig {
                inputs: 3,
                outputs: 3,
                flip_flops: 6,
                gates: 40,
                seed,
                depth_hint: None,
            },
        );
        let view = netlist.scan_view().expect("valid");
        let mut sim = ThreeValSim::new(&netlist, &view);
        let mut rng = Prng::seed_from_u64(seed ^ 0x55);
        let cube: Cube = (0..view.input_count())
            .map(|_| match rng.gen_range(0..3) {
                0 => Logic::Zero,
                1 => Logic::One,
                _ => Logic::X,
            })
            .collect();
        let base = sim.run(&cube);
        let mut refined = cube.clone();
        for i in 0..refined.len() {
            if refined[i] == Logic::X {
                refined.set(i, Logic::from(rng.next_bool()));
            }
        }
        let out = sim.run(&refined);
        for o in 0..base.len() {
            if base[o].is_specified() {
                assert_eq!(out[o], base[o], "output {o} changed under refinement");
            }
        }
    }
}

#[test]
fn eval_single_matches_slot_zero() {
    let netlist = synthesize(
        "single",
        &SynthConfig {
            inputs: 5,
            outputs: 4,
            flip_flops: 8,
            gates: 60,
            seed: 42,
            depth_hint: None,
        },
    );
    let view = netlist.scan_view().expect("valid");
    let mut rng = Prng::seed_from_u64(1);
    let mut psim = ParallelSim::new(&netlist, &view);
    for _ in 0..10 {
        let bits: BitVec = (0..view.input_count()).map(|_| rng.next_bool()).collect();
        let words: Vec<u64> = bits.iter().map(u64::from).collect();
        psim.eval(&words, &[]);
        assert_eq!(eval_single(&netlist, &view, &bits), psim.output_slot(0));
    }
}
