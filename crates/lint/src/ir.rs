//! Engine 1: design-rule checks over IR graphs and stitch-program shapes.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning                                              |
//! |-------|----------|------------------------------------------------------|
//! | IR001 | deny     | undriven net                                         |
//! | IR002 | deny     | multiply-driven net                                  |
//! | IR003 | deny     | dangling net reference (index out of range)          |
//! | IR004 | deny     | combinational cycle                                  |
//! | IR005 | deny     | bad arity for node kind                              |
//! | IR006 | warn     | dead combinational gate (unobservable via CO dataflow)|
//! | IR007 | info     | structure statistics                                 |
//! | IR008 | warn     | net marked as primary output more than once          |
//! | CH001 | deny     | flop missing from the scan chain                     |
//! | CH002 | deny     | flop chained more than once                          |
//! | CH003 | deny     | chain length differs from the declared scan length   |
//! | CH004 | deny     | chain entry is not a flop                            |
//! | SP001 | deny     | empty stitch program                                 |
//! | SP002 | deny     | first cycle is not a full shift-in                   |
//! | SP003 | deny     | shift count out of the `0 < k <= L` window           |
//! | SP004 | deny     | final flush longer than the chain                    |
//! | SP005 | deny     | ex-vectors emitted before constrained-ATPG exhaustion|
//! | SP008 | deny     | stitched shift schedule shrinks after the opening    |
//! |       |          | full shift (breaks eager caught-classification)      |

use crate::diag::{has_deny, render_text, Diagnostic, Severity, Site};
use crate::graph::{IrGraph, IrKind, ProgramSpec};
use crate::testability::{Testability, UNREACHED};
use tvs_netlist::Netlist;

/// Runs every structural and scan-chain rule over an [`IrGraph`].
///
/// Diagnostics come out in deterministic order: node/net rules in index
/// order, then cycle findings, then chain rules, then statistics.
pub fn analyze_graph(graph: &IrGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n_nets = graph.net_count;

    // Driver census per net; out-of-range references are IR003.
    let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); n_nets];
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.drives >= n_nets {
            diags.push(Diagnostic::new(
                "IR003",
                Severity::Deny,
                Site::Global,
                format!("node {i} drives out-of-range net index {}", node.drives),
            ));
        } else {
            drivers[node.drives].push(i);
        }
        for &f in &node.fanin {
            if f >= n_nets {
                diags.push(Diagnostic::new(
                    "IR003",
                    Severity::Deny,
                    Site::Net(graph.net_name(node.drives.min(n_nets.saturating_sub(1)))),
                    format!("node {i} reads out-of-range net index {f}"),
                ));
            }
        }
    }
    for &o in &graph.outputs {
        if o >= n_nets {
            diags.push(Diagnostic::new(
                "IR003",
                Severity::Deny,
                Site::Global,
                format!("primary output references out-of-range net index {o}"),
            ));
        }
    }

    // IR001 / IR002: every net driven exactly once.
    for (net, drv) in drivers.iter().enumerate() {
        match drv.len() {
            0 => diags.push(Diagnostic::new(
                "IR001",
                Severity::Deny,
                Site::Net(graph.net_name(net)),
                "net has no driver",
            )),
            1 => {}
            n => diags.push(Diagnostic::new(
                "IR002",
                Severity::Deny,
                Site::Net(graph.net_name(net)),
                format!("net has {n} drivers"),
            )),
        }
    }

    // IR005: arity per node kind.
    for node in &graph.nodes {
        let site = || Site::Net(graph.net_name(node.drives.min(n_nets.saturating_sub(1))));
        match node.kind {
            IrKind::Input if !node.fanin.is_empty() => diags.push(Diagnostic::new(
                "IR005",
                Severity::Deny,
                site(),
                format!(
                    "primary input has {} fanin nets, expected 0",
                    node.fanin.len()
                ),
            )),
            IrKind::Flop if node.fanin.len() != 1 => diags.push(Diagnostic::new(
                "IR005",
                Severity::Deny,
                site(),
                format!(
                    "flop has {} fanin nets, expected exactly 1 (its D net)",
                    node.fanin.len()
                ),
            )),
            IrKind::Comb if node.fanin.is_empty() => diags.push(Diagnostic::new(
                "IR005",
                Severity::Deny,
                site(),
                "combinational gate has no fanin (floating inputs)",
            )),
            _ => {}
        }
    }

    // Consumer census (fanin references only; scan/output observation is
    // tracked separately).
    let mut consumers = vec![0usize; n_nets];
    for node in &graph.nodes {
        for &f in &node.fanin {
            if f < n_nets {
                consumers[f] += 1;
            }
        }
    }

    // IR008: duplicate primary-output markers.
    let mut output_marks = vec![0usize; n_nets];
    for &o in &graph.outputs {
        if o < n_nets {
            output_marks[o] += 1;
        }
    }
    for (net, &marks) in output_marks.iter().enumerate() {
        if marks > 1 {
            diags.push(Diagnostic::new(
                "IR008",
                Severity::Warn,
                Site::Net(graph.net_name(net)),
                format!("net is marked as a primary output {marks} times"),
            ));
        }
    }

    // IR006: dead combinational gates. On a well-formed graph this is the
    // observability dataflow's verdict — no structural path from the gate's
    // output to a primary output or scan-cell D pin — which also catches
    // transitively-dead cones (a gate read only by dead gates). Gates whose
    // only readers are flop D pins are observable and never flagged.
    // Malformed graphs fall back to the direct consumer census.
    let testability = Testability::compute(graph);
    for node in &graph.nodes {
        if node.kind != IrKind::Comb || node.drives >= n_nets {
            continue;
        }
        let dead = match &testability {
            Some(t) => t.co(node.drives) == UNREACHED,
            None => consumers[node.drives] == 0 && output_marks[node.drives] == 0,
        };
        if dead {
            diags.push(Diagnostic::new(
                "IR006",
                Severity::Warn,
                Site::Net(graph.net_name(node.drives)),
                "combinational gate output cannot reach any output or scan cell",
            ));
        }
    }

    // IR004: combinational cycles via iterative Tarjan SCC. Edges run
    // driver -> reader between combinational nodes; inputs and flops break
    // the graph into the acyclic core the simulator levelizes.
    let driver_of: Vec<Option<usize>> = drivers.iter().map(|d| d.first().copied()).collect();
    let cyclic = comb_cycles(graph, &driver_of);
    let has_cycles = !cyclic.is_empty();
    for scc in &cyclic {
        let names: Vec<String> = scc
            .iter()
            .take(8)
            .map(|&n| graph.net_name(graph.nodes[n].drives))
            .collect();
        let suffix = if scc.len() > 8 { ", ..." } else { "" };
        diags.push(Diagnostic::new(
            "IR004",
            Severity::Deny,
            Site::Net(graph.net_name(graph.nodes[scc[0]].drives)),
            format!(
                "combinational cycle through {} gate(s): {}{suffix}",
                scc.len(),
                names.join(", ")
            ),
        ));
    }

    // Chain rules.
    let mut chained = vec![0usize; graph.nodes.len()];
    for (pos, &node) in graph.chain.iter().enumerate() {
        match graph.nodes.get(node) {
            None => diags.push(Diagnostic::new(
                "CH004",
                Severity::Deny,
                Site::Chain(pos),
                format!("chain entry references out-of-range node index {node}"),
            )),
            Some(n) if n.kind != IrKind::Flop => diags.push(Diagnostic::new(
                "CH004",
                Severity::Deny,
                Site::Chain(pos),
                format!("chain entry {} is not a flop", graph.net_name(n.drives)),
            )),
            Some(_) => {
                chained[node] += 1;
                if chained[node] > 1 {
                    diags.push(Diagnostic::new(
                        "CH002",
                        Severity::Deny,
                        Site::Chain(pos),
                        format!(
                            "flop {} appears in the chain more than once",
                            graph.net_name(graph.nodes[node].drives)
                        ),
                    ));
                }
            }
        }
    }
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.kind == IrKind::Flop && chained[i] == 0 {
            diags.push(Diagnostic::new(
                "CH001",
                Severity::Deny,
                Site::Net(graph.net_name(node.drives)),
                "flop is not part of the scan chain",
            ));
        }
    }
    if let Some(l) = graph.declared_scan_len {
        if l != graph.chain.len() {
            diags.push(Diagnostic::new(
                "CH003",
                Severity::Deny,
                Site::Global,
                format!(
                    "chain has {} flops but the declared scan length is {l}",
                    graph.chain.len()
                ),
            ));
        }
    }

    // IR007: structure statistics (depth only defined on an acyclic core).
    let max_fanout = consumers.iter().copied().max().unwrap_or(0);
    let stats = if has_cycles {
        format!(
            "{} nodes, {} nets, {} flops, max fanout {max_fanout}, depth undefined (cyclic)",
            graph.nodes.len(),
            n_nets,
            graph.chain.len(),
        )
    } else {
        format!(
            "{} nodes, {} nets, {} flops, max fanout {max_fanout}, comb depth {}",
            graph.nodes.len(),
            n_nets,
            graph.chain.len(),
            comb_depth(graph, &driver_of),
        )
    };
    diags.push(Diagnostic::new(
        "IR007",
        Severity::Info,
        Site::Global,
        stats,
    ));

    diags
}

/// Strongly connected components of the combinational subgraph with more
/// than one node, plus single nodes with a self-loop — i.e. the
/// combinational cycles. Iterative Tarjan; safe on deep graphs.
fn comb_cycles(graph: &IrGraph, driver_of: &[Option<usize>]) -> Vec<Vec<usize>> {
    let n = graph.nodes.len();
    // Successors: driver -> reader edges between combinational nodes.
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.kind != IrKind::Comb {
            continue;
        }
        for &f in &node.fanin {
            let Some(&Some(d)) = driver_of.get(f) else {
                continue;
            };
            if graph.nodes[d].kind == IrKind::Comb {
                if d == i {
                    self_loop[i] = true;
                } else {
                    succ[d].push(i);
                }
            }
        }
    }

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if graph.nodes[root].kind != IrKind::Comb || index[root] != UNVISITED {
            continue;
        }
        // Work item: (node, next successor position to visit).
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = succ[v].get(*pos) {
                *pos += 1;
                if index[w] == UNVISITED {
                    work.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        // Tarjan invariant: v is on the stack when its SCC
                        // is popped. lint:allow(SRC005)
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    if scc.len() > 1 || self_loop[scc[0]] {
                        out.push(scc);
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Longest combinational path length; assumes the comb subgraph is acyclic.
fn comb_depth(graph: &IrGraph, driver_of: &[Option<usize>]) -> usize {
    let n = graph.nodes.len();
    let mut level = vec![0usize; n];
    let mut indeg = vec![0usize; n];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.kind != IrKind::Comb {
            continue;
        }
        for &f in &node.fanin {
            if let Some(&Some(d)) = driver_of.get(f) {
                if graph.nodes[d].kind == IrKind::Comb && d != i {
                    succ[d].push(i);
                    indeg[i] += 1;
                }
            }
        }
    }
    let mut ready: Vec<usize> = (0..n)
        .filter(|&i| graph.nodes[i].kind == IrKind::Comb && indeg[i] == 0)
        .collect();
    let mut depth = 0;
    while let Some(v) = ready.pop() {
        level[v] += 1;
        depth = depth.max(level[v]);
        for &w in &succ[v] {
            level[w] = level[w].max(level[v]);
            indeg[w] -= 1;
            if indeg[w] == 0 {
                ready.push(w);
            }
        }
    }
    depth
}

/// Converts a built [`Netlist`] and runs [`analyze_graph`] on it.
pub fn analyze_netlist(netlist: &Netlist) -> Vec<Diagnostic> {
    analyze_graph(&IrGraph::from(netlist))
}

/// Runs the stitch-program consistency rules over a [`ProgramSpec`].
pub fn analyze_program(spec: &ProgramSpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let l = spec.scan_len;
    if spec.shifts.is_empty() {
        diags.push(Diagnostic::new(
            "SP001",
            Severity::Deny,
            Site::Global,
            "stitch program has no cycles",
        ));
    } else if spec.shifts[0] != l {
        diags.push(Diagnostic::new(
            "SP002",
            Severity::Deny,
            Site::Cycle(0),
            format!(
                "first cycle shifts {} bits; the initial load must be a full {l}-bit shift",
                spec.shifts[0]
            ),
        ));
    }
    for (i, &k) in spec.shifts.iter().enumerate() {
        if k == 0 || k > l {
            diags.push(Diagnostic::new(
                "SP003",
                Severity::Deny,
                Site::Cycle(i),
                format!("shift count k={k} outside the valid window 0 < k <= L={l}"),
            ));
        }
    }
    if spec.final_flush > l {
        diags.push(Diagnostic::new(
            "SP004",
            Severity::Deny,
            Site::Global,
            format!(
                "final flush of {} bits exceeds the chain length L={l}",
                spec.final_flush
            ),
        ));
    }
    // SP008: after the opening full shift, the stitched shift sizes must
    // be non-decreasing. Monotone growth is what makes the engine's eager
    // caught-classification sound — a later cycle always exposes at least
    // as much of the retained response window — so a strategy-emitted
    // schedule that shrinks is a soundness defect, not a style choice.
    for i in 2..spec.shifts.len() {
        if spec.shifts[i] < spec.shifts[i - 1] {
            diags.push(Diagnostic::new(
                "SP008",
                Severity::Deny,
                Site::Cycle(i),
                format!(
                    "shift count k={} shrinks below the previous cycle's k={}",
                    spec.shifts[i],
                    spec.shifts[i - 1]
                ),
            ));
        }
    }
    if spec.extra_vectors > 0 && spec.uncaught_at_fallback == 0 {
        diags.push(Diagnostic::new(
            "SP005",
            Severity::Deny,
            Site::Global,
            format!(
                "{} ex-vectors emitted although constrained ATPG left no uncaught faults",
                spec.extra_vectors
            ),
        ));
    }
    diags
}

/// Debug-build guard: panics with the rendered deny-level findings if the
/// netlist violates a structural rule. Compiles to nothing in release.
pub fn debug_assert_netlist_clean(netlist: &Netlist, context: &str) {
    if cfg!(debug_assertions) {
        let diags = analyze_netlist(netlist);
        if has_deny(&diags) {
            let denies: Vec<_> = diags
                .into_iter()
                .filter(|d| d.severity == Severity::Deny)
                .collect();
            // Debug-build guard: aborting on a deny-level IR defect IS the
            // contract of this function. lint:allow(SRC005)
            panic!(
                "tvs-lint: netlist {:?} failed IR checks at {context}:\n{}",
                netlist.name(),
                render_text(&denies)
            );
        }
    }
}

/// Debug-build guard for stitch-program shapes; see
/// [`debug_assert_netlist_clean`].
pub fn debug_assert_program_clean(spec: &ProgramSpec, context: &str) {
    if cfg!(debug_assertions) {
        let diags = analyze_program(spec);
        if has_deny(&diags) {
            // Debug-build guard: aborting on an inconsistent program shape
            // IS the contract of this function. lint:allow(SRC005)
            panic!(
                "tvs-lint: stitch program failed consistency checks at {context}:\n{}",
                render_text(&diags)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{IrKind, IrNode};

    fn graph(nodes: Vec<IrNode>, outputs: Vec<usize>, chain: Vec<usize>) -> IrGraph {
        let net_count = nodes.len();
        IrGraph {
            name: "t".into(),
            net_count,
            net_names: (0..net_count).map(|i| format!("n{i}")).collect(),
            nodes,
            outputs,
            chain,
            declared_scan_len: None,
        }
    }

    fn comb(drives: usize, fanin: &[usize]) -> IrNode {
        IrNode {
            kind: IrKind::Comb,
            op: tvs_netlist::GateKind::And,
            drives,
            fanin: fanin.to_vec(),
        }
    }

    fn input(drives: usize) -> IrNode {
        IrNode {
            kind: IrKind::Input,
            op: tvs_netlist::GateKind::Input,
            drives,
            fanin: Vec::new(),
        }
    }

    fn flop(drives: usize, d: usize) -> IrNode {
        IrNode {
            kind: IrKind::Flop,
            op: tvs_netlist::GateKind::Dff,
            drives,
            fanin: vec![d],
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn gate_read_only_by_a_flop_is_never_dead() {
        // The comb gate feeds only a scan cell's D pin: captured and
        // shifted out, so it is observable and IR006 must not fire.
        let g = graph(vec![flop(0, 1), comb(1, &[2]), input(2)], vec![], vec![0]);
        let d = analyze_graph(&g);
        assert_eq!(codes(&d), vec!["IR007"], "{d:?}");
    }

    #[test]
    fn transitively_dead_cone_is_flagged_whole() {
        // input -> a -> b with b unread: the census alone would only flag
        // b, but the CO dataflow sees that a's only reader is dead too.
        let g = graph(vec![input(0), comb(1, &[0]), comb(2, &[1])], vec![], vec![]);
        let d = analyze_graph(&g);
        let dead = d.iter().filter(|d| d.code == "IR006").count();
        assert_eq!(dead, 2, "{d:?}");
    }

    #[test]
    fn clean_dag_yields_only_stats() {
        let g = graph(vec![input(0), input(1), comb(2, &[0, 1])], vec![2], vec![]);
        let d = analyze_graph(&g);
        assert_eq!(codes(&d), vec!["IR007"]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = graph(vec![input(0), comb(1, &[0, 1])], vec![1], vec![]);
        let d = analyze_graph(&g);
        assert!(codes(&d).contains(&"IR004"), "{d:?}");
    }

    #[test]
    fn depth_counts_longest_path() {
        // input -> a -> b -> c, plus a shortcut input -> c.
        let g = graph(
            vec![input(0), comb(1, &[0]), comb(2, &[1]), comb(3, &[2, 0])],
            vec![3],
            vec![],
        );
        let d = analyze_graph(&g);
        let stats = d.iter().find(|d| d.code == "IR007").unwrap();
        assert!(stats.message.contains("comb depth 3"), "{}", stats.message);
    }

    #[test]
    fn program_rules_fire() {
        let bad = ProgramSpec {
            scan_len: 4,
            shifts: vec![4, 0, 9],
            final_flush: 9,
            extra_vectors: 2,
            uncaught_at_fallback: 0,
        };
        let d = analyze_program(&bad);
        let c = codes(&d);
        assert!(c.contains(&"SP003"));
        assert!(c.contains(&"SP004"));
        assert!(c.contains(&"SP005"));
        assert!(!c.contains(&"SP002"));

        let good = ProgramSpec {
            scan_len: 4,
            shifts: vec![4, 2, 2],
            final_flush: 4,
            extra_vectors: 1,
            uncaught_at_fallback: 3,
        };
        assert!(analyze_program(&good).is_empty());
    }

    #[test]
    fn sp008_rejects_a_shrinking_shift_schedule() {
        let shrinking = ProgramSpec {
            scan_len: 8,
            shifts: vec![8, 2, 4, 3, 5],
            final_flush: 8,
            extra_vectors: 0,
            uncaught_at_fallback: 0,
        };
        let d = analyze_program(&shrinking);
        let sp008: Vec<_> = d.iter().filter(|d| d.code == "SP008").collect();
        assert_eq!(sp008.len(), 1);
        assert_eq!(sp008[0].site, Site::Cycle(3));
        assert!(sp008[0].message.contains("k=3"));

        // The drop from the opening full shift down to the first stitched
        // k is the whole point of stitching, never a finding.
        let opening_drop = ProgramSpec {
            scan_len: 8,
            shifts: vec![8, 1, 1, 2, 4, 8],
            final_flush: 8,
            extra_vectors: 0,
            uncaught_at_fallback: 0,
        };
        assert!(analyze_program(&opening_drop).is_empty());
    }
}
