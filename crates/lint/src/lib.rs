//! Static analysis for the TVS toolkit: IR design-rule checks, a
//! source-level determinism lint, and a semantic dataflow layer.
//!
//! Three engines share one diagnostic model ([`Diagnostic`], rendered as
//! text or JSON):
//!
//! * **IR analyzer** ([`analyze_graph`] / [`analyze_netlist`] /
//!   [`analyze_program`]) — structural design rules over netlists and
//!   stitch-program shapes: every net driven exactly once, no combinational
//!   cycles (iterative Tarjan SCC), sane arities, no dead logic, scan-chain
//!   integrity (each flop chained exactly once, chain length = `L`), and
//!   program consistency (`0 < k <= L` shift windows, full initial load,
//!   `ex` fallback vectors only after constrained-ATPG exhaustion). The
//!   `debug_assert_*` wrappers let producing code assert cleanliness in
//!   debug builds for free in release.
//! * **Source determinism lint** ([`lint_source`] / [`lint_workspace`]) — a
//!   token-level scanner over the workspace's `.rs` files denying
//!   nondeterminism primitives (hash collections, clock reads, raw thread
//!   spawns, environment reads, `unwrap` in library code) outside
//!   allowlisted sites, with `// lint:allow(CODE)` escapes. It protects the
//!   bit-identical-at-any-thread-count guarantee from regressing through an
//!   accidental hash-order iteration or wall-clock dependence.
//! * **Semantic layer** — a levelized SCOAP testability dataflow
//!   ([`analyze_testability`] / [`Testability::compute`], saturating
//!   CC0/CC1/CO scores, TB001–TB003, per-net JSON via
//!   [`testability_json`]) and a 3-valued abstract interpreter for lowered
//!   stitch programs ([`evaluate_trace`] / [`analyze_trace`]: SP006 denies
//!   captures that depend on unknown power-up state, SP007 flags
//!   provably-dead shift cycles). [`admission_diagnostics`] bundles the
//!   deny-capable subset for the engine entry points (core job table,
//!   serve, fleet) to gate submissions before any engine run.
//!
//! Run all three from the CLI via `tvs lint` (`--testability`, `--scores`,
//! `--program`) or the standalone `tvs-lint` binary; CI fails on any
//! deny-level finding.
//!
//! # Examples
//!
//! ```
//! use tvs_lint::{analyze_program, has_deny, ProgramSpec};
//!
//! let spec = ProgramSpec {
//!     scan_len: 8,
//!     shifts: vec![8, 3, 3],
//!     final_flush: 8,
//!     extra_vectors: 0,
//!     uncaught_at_fallback: 0,
//! };
//! assert!(!has_deny(&analyze_program(&spec)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admit;
mod dataflow;
mod diag;
mod graph;
mod interp;
mod ir;
mod source;
mod testability;

pub use admit::{admission_diagnostics, netlist_error_diagnostics};
pub use diag::{counts, has_deny, render_json, render_text, Diagnostic, Severity, Site};
pub use graph::{IrGraph, IrKind, IrNode, ProgramSpec};
pub use interp::{analyze_trace, evaluate_trace, ProgramTrace, TraceCycle, TraceEval};
pub use ir::{
    analyze_graph, analyze_netlist, analyze_program, debug_assert_netlist_clean,
    debug_assert_program_clean,
};
pub use source::{lint_source, lint_workspace};
pub use testability::{
    analyze_testability, testability_json, Testability, TestabilityConfig, UntestableSite,
    UNREACHED,
};
