//! Static analysis for the TVS toolkit: IR design-rule checks and a
//! source-level determinism lint.
//!
//! Two engines share one diagnostic model ([`Diagnostic`], rendered as text
//! or JSON):
//!
//! * **IR analyzer** ([`analyze_graph`] / [`analyze_netlist`] /
//!   [`analyze_program`]) — structural design rules over netlists and
//!   stitch-program shapes: every net driven exactly once, no combinational
//!   cycles (iterative Tarjan SCC), sane arities, no dead logic, scan-chain
//!   integrity (each flop chained exactly once, chain length = `L`), and
//!   program consistency (`0 < k <= L` shift windows, full initial load,
//!   `ex` fallback vectors only after constrained-ATPG exhaustion). The
//!   `debug_assert_*` wrappers let producing code assert cleanliness in
//!   debug builds for free in release.
//! * **Source determinism lint** ([`lint_source`] / [`lint_workspace`]) — a
//!   token-level scanner over the workspace's `.rs` files denying
//!   nondeterminism primitives (hash collections, clock reads, raw thread
//!   spawns, `unwrap` in library code) outside allowlisted sites, with
//!   `// lint:allow(CODE)` escapes. It protects the bit-identical-at-any-
//!   thread-count guarantee from regressing through an accidental
//!   hash-order iteration or wall-clock dependence.
//!
//! Run both from the CLI via `tvs lint` or the standalone `tvs-lint` binary;
//! CI fails on any deny-level finding.
//!
//! # Examples
//!
//! ```
//! use tvs_lint::{analyze_program, has_deny, ProgramSpec};
//!
//! let spec = ProgramSpec {
//!     scan_len: 8,
//!     shifts: vec![8, 3, 3],
//!     final_flush: 8,
//!     extra_vectors: 0,
//!     uncaught_at_fallback: 0,
//! };
//! assert!(!has_deny(&analyze_program(&spec)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diag;
mod graph;
mod ir;
mod source;

pub use diag::{counts, has_deny, render_json, render_text, Diagnostic, Severity, Site};
pub use graph::{IrGraph, IrKind, IrNode, ProgramSpec};
pub use ir::{
    analyze_graph, analyze_netlist, analyze_program, debug_assert_netlist_clean,
    debug_assert_program_clean,
};
pub use source::{lint_source, lint_workspace};
