//! Engine 3: a three-valued (0/1/X) abstract interpreter for stitch
//! programs, upgrading the SP rules from shape to semantics.
//!
//! The interpreter executes a [`ProgramTrace`] — the lowered form of a
//! tester program — against the scan chain and combinational core of an
//! [`IrGraph`], over the Kleene domain `{0, 1, X}` where `X` means
//! *unspecified*. The chain powers up all-`X`: a program may only rely on
//! chain state it has itself established. The shift-out stream of the
//! power-up state (conventionally masked by the tester) is exempt; what a
//! program must never do is let `X` reach a **capture** or a primary-output
//! expectation.
//!
//! Diagnostic codes:
//!
//! | code  | severity | meaning                                              |
//! |-------|----------|------------------------------------------------------|
//! | SP006 | deny     | a cycle's capture or PO expectation depends on an    |
//! |       |          | `X`-valued flop (unspecified chain state)            |
//! | SP007 | warn     | provably-dead shift cycle: its scan-in bits cannot   |
//! |       |          | influence any later observation                      |

use tvs_logic::Logic;
use tvs_scan::{CaptureTransform, ObserveTransform};

use crate::dataflow::CombOrder;
use crate::diag::{Diagnostic, Severity, Site};
use crate::graph::{IrGraph, IrKind};

/// One tester cycle of a lowered program: stimulus only (expectations are
/// the concrete replay's business; the interpreter derives its own).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceCycle {
    /// Primary-input values applied during this cycle.
    pub pi: Vec<Logic>,
    /// Scan-in bits in entry order (first bit enters first, ends deepest).
    pub scan_in: Vec<Logic>,
}

/// A lowered stitch program, ready for abstract interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramTrace {
    /// Capture transform the DUT applies (plain or vertical XOR).
    pub capture: CaptureTransform,
    /// Observation transform at the scan-out pin (direct or horizontal XOR).
    pub observe: ObserveTransform,
    /// The tester cycles, in application order.
    pub cycles: Vec<TraceCycle>,
    /// Closing flush length (zero-fill shifts, no capture).
    pub final_flush: usize,
}

/// The interpreter's derived streams, for equivalence testing against a
/// concrete DUT replay: every *specified* bit must match the replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEval {
    /// Per cycle: `(observed stream, primary outputs)`.
    pub cycles: Vec<(Vec<Logic>, Vec<Logic>)>,
    /// Observed stream of the closing flush.
    pub flush: Vec<Logic>,
    /// Chain image after the flush.
    pub final_image: Vec<Logic>,
}

struct Interp<'a> {
    graph: &'a IrGraph,
    order: &'a CombOrder,
    taps: Vec<usize>,
    capture: CaptureTransform,
    /// Input node indices, in node order (== primary-input order).
    pi_nodes: Vec<usize>,
}

struct CycleOut {
    observed: Vec<Logic>,
    po: Vec<Logic>,
    capture_has_x: bool,
}

impl<'a> Interp<'a> {
    fn new(graph: &'a IrGraph, order: &'a CombOrder, trace: &ProgramTrace) -> Option<Interp<'a>> {
        if graph.chain.is_empty() {
            return None;
        }
        let pi_nodes = (0..graph.nodes.len())
            .filter(|&i| graph.nodes[i].kind == IrKind::Input)
            .collect();
        Some(Interp {
            graph,
            order,
            taps: trace.observe.taps(graph.chain.len()),
            capture: trace.capture,
            pi_nodes,
        })
    }

    fn power_up(&self) -> Vec<Logic> {
        vec![Logic::X; self.graph.chain.len()]
    }

    /// Shifts `incoming` into the chain, emitting one observed bit per tick
    /// (the XOR of the tapped cells *before* the tick, mirroring the
    /// concrete `ScanChain::shift`).
    fn shift(&self, image: &mut [Logic], incoming: &[Logic]) -> Vec<Logic> {
        let mut observed = Vec::with_capacity(incoming.len());
        for &bit in incoming {
            let mut o = Logic::Zero;
            for &t in &self.taps {
                o = o ^ image[t];
            }
            observed.push(o);
            for pos in (1..image.len()).rev() {
                image[pos] = image[pos - 1];
            }
            image[0] = bit;
        }
        observed
    }

    /// One tester cycle: shift, apply PIs + chain, evaluate the core,
    /// capture the (possibly transformed) response.
    fn cycle(&self, image: &mut Vec<Logic>, pi: &[Logic], scan_in: &[Logic]) -> CycleOut {
        let observed = self.shift(image, scan_in);
        let mut value = vec![Logic::X; self.graph.net_count];
        for (k, &node) in self.pi_nodes.iter().enumerate() {
            value[self.graph.nodes[node].drives] = pi.get(k).copied().unwrap_or(Logic::X);
        }
        for (pos, &flop) in self.graph.chain.iter().enumerate() {
            value[self.graph.nodes[flop].drives] = image[pos];
        }
        for &i in &self.order.order {
            let node = &self.graph.nodes[i];
            let ins: Vec<Logic> = node.fanin.iter().map(|&f| value[f]).collect();
            value[node.drives] = node.op.eval(&ins);
        }
        let po: Vec<Logic> = self.graph.outputs.iter().map(|&o| value[o]).collect();
        let resp: Vec<Logic> = self
            .graph
            .chain
            .iter()
            .map(|&flop| value[self.graph.nodes[flop].fanin[0]])
            .collect();
        let captured: Vec<Logic> = match self.capture {
            CaptureTransform::Plain => resp,
            CaptureTransform::VerticalXor => resp
                .iter()
                .zip(image.iter())
                .map(|(&r, &t)| r ^ t)
                .collect(),
        };
        let capture_has_x = captured.iter().chain(po.iter()).any(|&v| v == Logic::X);
        *image = captured;
        CycleOut {
            observed,
            po,
            capture_has_x,
        }
    }

    fn flush(&self, image: &mut [Logic], len: usize) -> Vec<Logic> {
        self.shift(image, &vec![Logic::Zero; len])
    }
}

/// Runs the abstract interpretation and returns the derived streams, or
/// `None` when the graph cannot be interpreted (malformed, or no chain).
///
/// Soundness contract (pinned by the ate-side equivalence test): every bit
/// this returns as `0`/`1` equals what a concrete fault-free replay with a
/// zeroed power-up chain produces; `X` makes no claim.
pub fn evaluate_trace(graph: &IrGraph, trace: &ProgramTrace) -> Option<TraceEval> {
    let order = CombOrder::build(graph)?;
    let interp = Interp::new(graph, &order, trace)?;
    let l = graph.chain.len();
    if trace.cycles.iter().any(|c| c.scan_in.len() > l) || trace.final_flush > l {
        return None; // shape rules (SP003/SP004) own these defects
    }
    let mut image = interp.power_up();
    // Concrete DUTs power up zeroed; seed the *evaluation* with that so its
    // specified bits line up with a replay. (The rule checker instead keeps
    // the power-up X to find programs that rely on it.)
    image.fill(Logic::Zero);
    let mut cycles = Vec::with_capacity(trace.cycles.len());
    for cycle in &trace.cycles {
        let out = interp.cycle(&mut image, &cycle.pi, &cycle.scan_in);
        cycles.push((out.observed, out.po));
    }
    let flush = interp.flush(&mut image, trace.final_flush);
    Some(TraceEval {
        cycles,
        flush,
        final_image: image,
    })
}

/// Per-rule cap on individually reported cycles; the rest is summarized.
const MAX_CYCLES: usize = 8;

/// Runs the semantic program rules (SP006, SP007) over a lowered program.
///
/// Returns an empty list when the graph cannot be interpreted — the
/// structural and shape rules carry the denies in that case.
pub fn analyze_trace(graph: &IrGraph, trace: &ProgramTrace) -> Vec<Diagnostic> {
    let Some(order) = CombOrder::build(graph) else {
        return Vec::new();
    };
    let Some(interp) = Interp::new(graph, &order, trace) else {
        return Vec::new();
    };
    let l = graph.chain.len();
    if trace.cycles.iter().any(|c| c.scan_in.len() > l) || trace.final_flush > l {
        return Vec::new();
    }

    let mut diags = Vec::new();

    // SP006: run with an all-X power-up image; any cycle whose capture or
    // PO expectation evaluates to X relies on chain state the program never
    // established.
    let mut unspecified: Vec<usize> = Vec::new();
    let mut image = interp.power_up();
    let mut states = Vec::with_capacity(trace.cycles.len());
    for (i, cycle) in trace.cycles.iter().enumerate() {
        states.push(image.clone());
        let out = interp.cycle(&mut image, &cycle.pi, &cycle.scan_in);
        if out.capture_has_x {
            unspecified.push(i);
        }
    }
    for &i in unspecified.iter().take(MAX_CYCLES) {
        diags.push(Diagnostic::new(
            "SP006",
            Severity::Deny,
            Site::Cycle(i),
            "capture depends on an X-valued flop: the program uses chain state \
             it never shifted in or captured",
        ));
    }
    if unspecified.len() > MAX_CYCLES {
        diags.push(Diagnostic::new(
            "SP006",
            Severity::Deny,
            Site::Global,
            format!(
                "{} more cycles capture unspecified chain state",
                unspecified.len() - MAX_CYCLES
            ),
        ));
    }

    // SP007: taint analysis per cycle. Fork the SP006 baseline at cycle i,
    // replace its scan-in with X, and re-run to the end: if no later
    // observation (observed stream, PO, or flush) ever goes X *that was
    // specified in the baseline*, the shifted data provably cannot matter.
    // Only sound to attribute taint when the baseline is X-free from the
    // fork onward, so skip programs with SP006 findings.
    let mut dead: Vec<usize> = Vec::new();
    if unspecified.is_empty() {
        let baseline = evaluate_with(&interp, trace, interp.power_up());
        for (i, cycle) in trace.cycles.iter().enumerate() {
            if cycle.scan_in.is_empty() {
                continue;
            }
            if is_dead_cycle(&interp, trace, &states[i], i, &baseline) {
                dead.push(i);
            }
        }
    }
    for &i in dead.iter().take(MAX_CYCLES) {
        diags.push(Diagnostic::new(
            "SP007",
            Severity::Warn,
            Site::Cycle(i),
            format!(
                "dead shift cycle: none of its {} scan-in bits can reach any \
                 observation point",
                trace.cycles[i].scan_in.len()
            ),
        ));
    }
    if dead.len() > MAX_CYCLES {
        diags.push(Diagnostic::new(
            "SP007",
            Severity::Warn,
            Site::Global,
            format!(
                "{} more provably-dead shift cycles",
                dead.len() - MAX_CYCLES
            ),
        ));
    }
    diags
}

fn evaluate_with(interp: &Interp<'_>, trace: &ProgramTrace, start: Vec<Logic>) -> TraceEval {
    let mut image = start;
    let mut cycles = Vec::with_capacity(trace.cycles.len());
    for cycle in &trace.cycles {
        let out = interp.cycle(&mut image, &cycle.pi, &cycle.scan_in);
        cycles.push((out.observed, out.po));
    }
    let flush = interp.flush(&mut image, trace.final_flush);
    TraceEval {
        cycles,
        flush,
        final_image: image,
    }
}

/// `true` if replacing cycle `i`'s scan-in with all-X provably cannot
/// change any observation from cycle `i` onward. `baseline` is the
/// unperturbed run; a bit only counts as influenced when the baseline had
/// it specified and the tainted run turns it X.
fn is_dead_cycle(
    interp: &Interp<'_>,
    trace: &ProgramTrace,
    state_before: &[Logic],
    i: usize,
    baseline: &TraceEval,
) -> bool {
    let tainted = |bits: &[Logic], base: &[Logic]| {
        bits.iter()
            .zip(base.iter())
            .any(|(&b, &orig)| b == Logic::X && orig != Logic::X)
    };
    let mut image = state_before.to_vec();
    for (j, cycle) in trace.cycles.iter().enumerate().skip(i) {
        let scan_in: Vec<Logic> = if j == i {
            vec![Logic::X; cycle.scan_in.len()]
        } else {
            cycle.scan_in.clone()
        };
        let out = interp.cycle(&mut image, &cycle.pi, &scan_in);
        let (base_obs, base_po) = &baseline.cycles[j];
        if tainted(&out.observed, base_obs) || tainted(&out.po, base_po) {
            return false;
        }
        if j > i && !image.contains(&Logic::X) {
            return true; // taint died out before reaching anything
        }
    }
    let flush = interp.flush(&mut image, trace.final_flush);
    !tainted(&flush, &baseline.flush)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    /// The paper's Fig. 1 circuit: three flops a, b, c feeding AND/OR
    /// gates, no PIs, no POs.
    fn fig1() -> IrGraph {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        IrGraph::from(&b.build().unwrap())
    }

    fn bits(s: &str) -> Vec<Logic> {
        s.chars().map(|c| Logic::from_char(c).unwrap()).collect()
    }

    fn trace(cycles: Vec<TraceCycle>, final_flush: usize) -> ProgramTrace {
        ProgramTrace {
            capture: CaptureTransform::Plain,
            observe: ObserveTransform::Direct,
            cycles,
            final_flush,
        }
    }

    #[test]
    fn replays_the_fig1_walkthrough() {
        // Matches the concrete Dut test: shift 011 (entry order), capture
        // 111; then shift 00, observe "11", capture 010.
        let g = fig1();
        let t = trace(
            vec![
                TraceCycle {
                    pi: vec![],
                    scan_in: bits("011"),
                },
                TraceCycle {
                    pi: vec![],
                    scan_in: bits("00"),
                },
            ],
            3,
        );
        let eval = evaluate_trace(&g, &t).unwrap();
        assert_eq!(eval.cycles[1].0, bits("11"));
        assert_eq!(eval.final_image, bits("000"));
        assert!(
            analyze_trace(&g, &t).iter().all(|d| d.code != "SP006"),
            "full initial shift is clean"
        );
    }

    #[test]
    fn partial_first_shift_captures_x_and_is_sp006() {
        let g = fig1();
        let t = trace(
            vec![TraceCycle {
                pi: vec![],
                scan_in: bits("01"),
            }],
            3,
        );
        let d = analyze_trace(&g, &t);
        assert!(
            d.iter()
                .any(|d| d.code == "SP006" && d.site == Site::Cycle(0)),
            "{d:?}"
        );
    }

    #[test]
    fn dead_shift_cycle_is_sp007() {
        // A circuit whose core ignores the chain: q captures the PI. Any
        // mid-program shift of fresh data into q is dead once nothing
        // observes the shifted-out bits... here every shifted bit *is*
        // observed directly, so instead build the dead case via a second,
        // unread flop? Single-chain model: make the observation blind by
        // HXor-tapping only the far cell and keeping the shift short.
        let mut b = NetlistBuilder::new("dead");
        b.add_input("p").unwrap();
        b.add_dff("q", "d").unwrap();
        b.add_dff("r", "e").unwrap();
        b.add_gate("d", GateKind::Buf, &["p"]).unwrap();
        b.add_gate("e", GateKind::Buf, &["p"]).unwrap();
        let g = IrGraph::from(&b.build().unwrap());
        // Cycle 0: full 2-bit shift. Cycle 1: shift 1 bit into the chain;
        // the captured response only depends on the PI, and the single
        // observed bit during cycle 1's shift is cycle 0's captured
        // response, not the fresh bit. Nothing flushes afterwards, so the
        // fresh bit never reaches the scan-out tap: provably dead.
        let t = trace(
            vec![
                TraceCycle {
                    pi: bits("1"),
                    scan_in: bits("10"),
                },
                TraceCycle {
                    pi: bits("0"),
                    scan_in: bits("1"),
                },
            ],
            0,
        );
        let d = analyze_trace(&g, &t);
        assert!(
            d.iter()
                .any(|d| d.code == "SP007" && d.site == Site::Cycle(1)),
            "{d:?}"
        );
        // The core is chain-blind (both D nets read only the PI), so the
        // fresh bits can never matter: even a closing flush only observes
        // the captured PI values. Every shift cycle but the opening load
        // is dead here.
        let t2 = trace(
            vec![
                TraceCycle {
                    pi: bits("1"),
                    scan_in: bits("10"),
                },
                TraceCycle {
                    pi: bits("0"),
                    scan_in: bits("1"),
                },
            ],
            2,
        );
        let d = analyze_trace(&g, &t2);
        assert!(
            d.iter()
                .any(|d| d.code == "SP007" && d.site == Site::Cycle(1)),
            "{d:?}"
        );
    }

    #[test]
    fn chain_reading_core_keeps_shift_cycles_live() {
        // r captures Buf(q): a bit shifted into q lands in r at capture
        // and the closing flush observes it — not dead.
        let mut b = NetlistBuilder::new("live");
        b.add_input("p").unwrap();
        b.add_dff("q", "d").unwrap();
        b.add_dff("r", "e").unwrap();
        b.add_gate("d", GateKind::Buf, &["p"]).unwrap();
        b.add_gate("e", GateKind::Buf, &["q"]).unwrap();
        let g = IrGraph::from(&b.build().unwrap());
        let t = trace(
            vec![
                TraceCycle {
                    pi: bits("1"),
                    scan_in: bits("10"),
                },
                TraceCycle {
                    pi: bits("0"),
                    scan_in: bits("1"),
                },
            ],
            2,
        );
        let d = analyze_trace(&g, &t);
        assert!(
            !d.iter()
                .any(|d| d.code == "SP007" && d.site == Site::Cycle(1)),
            "{d:?}"
        );
    }

    #[test]
    fn oversized_shapes_decline_to_interpret() {
        let g = fig1();
        let t = trace(
            vec![TraceCycle {
                pi: vec![],
                scan_in: bits("0101"),
            }],
            3,
        );
        assert!(evaluate_trace(&g, &t).is_none());
        assert!(analyze_trace(&g, &t).is_empty());
    }
}
