//! Engine 2: token-level determinism lint over the workspace's Rust sources.
//!
//! The scanner strips comments and string literals, masks `#[cfg(test)]` /
//! `#[test]` item bodies, then denies identifiers whose behaviour can vary
//! run-to-run or machine-to-machine:
//!
//! | code   | pattern                              | allowed at                    |
//! |--------|--------------------------------------|-------------------------------|
//! | SRC001 | hash-map / hash-set types            | `crates/exec/src/stats.rs`    |
//! | SRC002 | monotonic / wall-clock reads         | `crates/exec/src/stats.rs`    |
//! | SRC003 | raw thread spawning                  | `crates/exec/`, `crates/serve/src/server.rs`, `crates/fleet/src/coordinator.rs` |
//! | SRC004 | `.unwrap()` in library code          | nowhere                       |
//! | SRC005 | `panic!` / `.expect()` in libraries  | `inject.rs`, `crates/circuits/src/` |
//! | SRC006 | environment reads (`env::var` & co.) | `crates/exec/src/pool.rs`     |
//!
//! Individual sites can opt out with a `// lint:allow(CODE)` comment on the
//! same line or the line directly above.
//!
//! The per-file allowlist is a data table ([`ALLOWS`]); [`lint_workspace`]
//! cross-checks it against the tree and emits a warn-level `SRC000` for any
//! entry whose path no longer exists, so a rename cannot silently leave a
//! dead hole in the lint.

use crate::diag::{Diagnostic, Severity, Site};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One deny rule of the determinism lint.
struct Rule {
    code: &'static str,
    /// Needles searched in cleaned source; identifier-like needles are
    /// matched with word boundaries, path-like ones as plain substrings.
    needles: &'static [&'static str],
    what: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        code: "SRC001",
        needles: &["HashMap", "HashSet"],
        what: "iteration order depends on the hasher seed; use BTreeMap/BTreeSet or sorted vectors",
    },
    Rule {
        code: "SRC002",
        needles: &["Instant", "SystemTime"],
        what: "clock reads are nondeterministic; route timing through tvs-exec's stats layer",
    },
    Rule {
        code: "SRC003",
        needles: &["thread::spawn", "thread::Builder"],
        what: "raw threads escape the deterministic pool; use tvs-exec",
    },
    Rule {
        code: "SRC004",
        needles: &[".unwrap("],
        what: "library code must surface errors, not panic; use expect with an invariant message or propagate",
    },
    Rule {
        code: "SRC005",
        needles: &["panic!", ".expect("],
        what: "library code must degrade through typed errors, not abort; return an error or justify the invariant with lint:allow(SRC005)",
    },
    Rule {
        code: "SRC006",
        needles: &["env::var", "env::var_os", "env::vars", "env::vars_os"],
        what: "environment reads make a run's identity depend on ambient state; route configuration through explicit config structs",
    },
];

/// One per-file allowlist entry. A `path` ending in `/` allows the whole
/// subtree; otherwise it names one file. Paths are `/`-separated and
/// workspace-relative.
struct Allow {
    code: &'static str,
    path: &'static str,
    /// Why the exemption is sound — rendered nowhere, kept next to the data
    /// so the table stays reviewable.
    #[allow(dead_code)]
    why: &'static str,
}

/// The whole per-file allowlist. [`lint_workspace`] warns (`SRC000`) for
/// entries whose path has drifted away from the tree.
const ALLOWS: &[Allow] = &[
    Allow {
        code: "SRC001",
        path: "crates/exec/src/stats.rs",
        why: "the stats registry hashes only for lookup and sorts before rendering",
    },
    Allow {
        code: "SRC002",
        path: "crates/exec/src/stats.rs",
        why: "the one sanctioned clock: span timers live behind the stats layer",
    },
    Allow {
        code: "SRC003",
        path: "crates/exec/",
        why: "tvs-exec owns the deterministic pool; its internals must spawn",
    },
    Allow {
        code: "SRC003",
        path: "crates/serve/src/server.rs",
        why: "one I/O-waiter thread per connection; compute stays in the job queue",
    },
    Allow {
        code: "SRC003",
        path: "crates/fleet/src/coordinator.rs",
        why: "connection and health-monitor threads only wait on sockets",
    },
    Allow {
        code: "SRC005",
        path: "crates/exec/src/inject.rs",
        why: "the chaos injector exists to raise controlled panics",
    },
    Allow {
        code: "SRC005",
        path: "crates/circuits/src/",
        why: "an infallible literal builder: every expect is a generator bug, not input",
    },
    Allow {
        code: "SRC006",
        path: "crates/exec/src/pool.rs",
        why: "TVS_THREADS is the documented thread-count default; it never changes results",
    },
];

/// Per-file allowlist for a rule code; `file` is a `/`-separated
/// workspace-relative path.
fn file_allows(file: &str, code: &str) -> bool {
    ALLOWS.iter().any(|a| {
        a.code == code
            && if a.path.ends_with('/') {
                file.starts_with(a.path)
            } else {
                file == a.path
            }
    })
}

/// Checks every [`ALLOWS`] entry against the tree under `root`: an entry
/// whose path no longer exists is dead weight that would silently exempt a
/// future file at that name, so it warns (`SRC000`).
fn allowlist_drift(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for allow in ALLOWS {
        let target = root.join(allow.path.trim_end_matches('/'));
        let ok = if allow.path.ends_with('/') {
            target.is_dir()
        } else {
            target.is_file()
        };
        if !ok {
            diags.push(Diagnostic::new(
                "SRC000",
                Severity::Warn,
                Site::Global,
                format!(
                    "allowlist drift: {} entry {:?} no longer exists; remove or update the entry",
                    allow.code, allow.path
                ),
            ));
        }
    }
    diags
}

/// The comment/string stripper's output: source with the same line structure
/// but literal and comment bytes blanked, plus `lint:allow` codes per line.
struct Cleaned {
    text: String,
    /// `allow[i]` holds the codes allowed on 1-based line `i + 1`.
    allow: Vec<Vec<String>>,
}

/// Strips comments (line, nested block), string literals (plain, raw, byte)
/// and char literals, preserving newlines so line numbers survive. Comment
/// text is searched for `lint:allow(CODE, ...)` markers.
fn clean(text: &str) -> Cleaned {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut allow: Vec<Vec<String>> = vec![Vec::new()];
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut line = 0usize;
    let mut i = 0usize;

    let flush_comment = |comment: &mut String, allow: &mut Vec<Vec<String>>, line: usize| {
        for codes in parse_allows(comment) {
            allow[line].push(codes);
        }
        comment.clear();
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::Line | Mode::Block(_)) {
                flush_comment(&mut comment, &mut allow, line);
            }
            if mode == Mode::Line {
                mode = Mode::Code;
            }
            out.push('\n');
            allow.push(Vec::new());
            line += 1;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == '/' {
                    mode = Mode::Line;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    out.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Raw / byte string openers: r", r#", br", b"...
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + (c == 'b') as usize) {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        out.push_str("  ");
                        mode = Mode::Str;
                        i += 2;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Lifetime ('a not followed by a closing quote) vs char
                    // literal ('x' or '\n').
                    let n1 = chars.get(i + 1).copied().unwrap_or('\0');
                    let n2 = chars.get(i + 2).copied().unwrap_or('\0');
                    if (n1.is_alphabetic() || n1 == '_') && n2 != '\'' {
                        out.push(c);
                        i += 1;
                    } else {
                        mode = Mode::CharLit;
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            Mode::Line => {
                comment.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '*' && next == '/' {
                    if depth == 1 {
                        flush_comment(&mut comment, &mut allow, line);
                        mode = Mode::Code;
                    } else {
                        mode = Mode::Block(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Consume the escaped char unless it is a newline, which
                    // the top of the loop must see to keep line numbers true.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if matches!(mode, Mode::Line | Mode::Block(_)) {
        flush_comment(&mut comment, &mut allow, line);
    }
    Cleaned { text: out, allow }
}

/// Pulls `CODE` names out of every `lint:allow(A, B)` marker in a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut codes = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else {
            break;
        };
        for code in rest[..end].split(',') {
            let code = code.trim();
            if !code.is_empty() {
                codes.push(code.to_owned());
            }
        }
        rest = &rest[end + 1..];
    }
    codes
}

/// Blanks the bodies of `#[cfg(test)]` / `#[test]` items so test-only code
/// is exempt from the rules. Tracks brace depth; an attribute arms the mask,
/// the next top-level-of-item `{` opens it, a `;` first disarms it (e.g.
/// `#[cfg(test)] use x;`).
fn mask_tests(cleaned: &str) -> String {
    let chars: Vec<char> = cleaned.chars().collect();
    let mut out = String::with_capacity(cleaned.len());
    let mut depth = 0i32;
    let mut armed = false;
    let mut mask_floor: Option<i32> = None;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '#' && chars.get(i + 1) == Some(&'[') && mask_floor.is_none() {
            // Capture the attribute to see if it is test-related.
            let mut j = i + 2;
            let mut brackets = 1;
            let mut attr = String::new();
            while j < chars.len() && brackets > 0 {
                match chars[j] {
                    '[' => brackets += 1,
                    ']' => brackets -= 1,
                    c => attr.push(c),
                }
                j += 1;
            }
            let attr: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            if attr == "test" || attr.starts_with("cfg(test") {
                armed = true;
            }
            for &a in &chars[i..j] {
                out.push(a);
            }
            i = j;
            continue;
        }
        match c {
            '{' => {
                depth += 1;
                if armed {
                    armed = false;
                    mask_floor = Some(depth);
                }
            }
            '}' => {
                if mask_floor == Some(depth) {
                    mask_floor = None;
                }
                depth -= 1;
            }
            ';' if armed && mask_floor.is_none() => armed = false,
            _ => {}
        }
        let masked = mask_floor.is_some() && c != '\n';
        out.push(if masked { ' ' } else { c });
        i += 1;
    }
    out
}

/// True if `needle` occurs in `line` bounded by non-identifier characters
/// (needles that already contain punctuation match as substrings at their
/// punctuation edges).
fn matches_needle(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !needle.starts_with(|c: char| c.is_alphanumeric() || c == '_')
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= line.len()
            || !needle.ends_with(|c: char| c.is_alphanumeric() || c == '_')
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// Lints one source file. `file` is the `/`-separated workspace-relative
/// path used for allowlisting and diagnostic sites.
pub fn lint_source(file: &str, text: &str) -> Vec<Diagnostic> {
    let cleaned = clean(text);
    let masked = mask_tests(&cleaned.text);
    let mut diags = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        for rule in RULES {
            if file_allows(file, rule.code) {
                continue;
            }
            let hit = rule.needles.iter().find(|n| matches_needle(line, n));
            let Some(needle) = hit else {
                continue;
            };
            let allowed = cleaned
                .allow
                .get(idx)
                .is_some_and(|a| a.iter().any(|c| c == rule.code))
                || (idx > 0
                    && cleaned
                        .allow
                        .get(idx - 1)
                        .is_some_and(|a| a.iter().any(|c| c == rule.code)));
            if !allowed {
                diags.push(Diagnostic::new(
                    rule.code,
                    Severity::Deny,
                    Site::Source {
                        file: file.to_owned(),
                        line: idx + 1,
                    },
                    format!("{needle:?} here: {}", rule.what),
                ));
            }
        }
    }
    diags
}

/// Lints every library source file of the workspace rooted at `root`:
/// `src/` plus each `crates/*/src/`, recursively, skipping `bin/`
/// directories (binaries may panic and time freely). Files are visited in
/// sorted path order so output is deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        collect_rs(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut diags = allowlist_drift(root);
    for file in files {
        let text = fs::read_to_string(&file)?;
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(lint_source(&rel, &text));
    }
    Ok(diags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_at(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
        diags
            .iter()
            .map(|d| match &d.site {
                Site::Source { line, .. } => (d.code, *line),
                _ => (d.code, 0),
            })
            .collect()
    }

    #[test]
    fn flags_hash_collections_and_clocks() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let d = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC001", 1), ("SRC002", 2)]);
    }

    #[test]
    fn respects_file_allowlists() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        assert!(lint_source("crates/exec/src/stats.rs", src).is_empty());
        let spawn = "std::thread::spawn(|| {});\n";
        assert!(lint_source("crates/exec/src/pool.rs", spawn).is_empty());
        assert!(lint_source("crates/serve/src/server.rs", spawn).is_empty());
        assert!(lint_source("crates/fleet/src/coordinator.rs", spawn).is_empty());
        assert_eq!(lint_source("crates/core/src/jobs.rs", spawn).len(), 1);
        assert_eq!(lint_source("crates/fleet/src/ring.rs", spawn).len(), 1);
        assert_eq!(lint_source("crates/sim/src/lib.rs", spawn).len(), 1);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "let m = HashMap::new(); // lint:allow(SRC001)\n";
        assert!(lint_source("crates/x/src/a.rs", same).is_empty());
        let above = "// lint:allow(SRC001)\nlet m = HashMap::new();\n";
        assert!(lint_source("crates/x/src/a.rs", above).is_empty());
        let wrong_code = "// lint:allow(SRC002)\nlet m = HashMap::new();\n";
        assert_eq!(lint_source("crates/x/src/a.rs", wrong_code).len(), 1);
    }

    #[test]
    fn ignores_strings_comments_and_test_items() {
        let src = concat!(
            "// a HashMap in a comment\n",
            "let s = \"HashMap\";\n",
            "let r = r#\"Instant::now()\"#;\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashMap;\n",
            "    fn f() { x.unwrap(); }\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_on_use_item_does_not_mask_rest_of_file() {
        let src = concat!(
            "#[cfg(test)]\n",
            "use std::fmt;\n",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() + 1 }\n",
        );
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC004", 3)]);
    }

    #[test]
    fn unwrap_matches_call_not_unwrap_or() {
        let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap();\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC004", 2)]);
    }

    #[test]
    fn panic_and_expect_deny_in_library_code() {
        let src = "let v = x.expect(\"msg\");\npanic!(\"boom\");\nlet w = y.expect_err(\"e\");\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC005", 1), ("SRC005", 2)]);
    }

    #[test]
    fn panic_family_allowlists_and_escapes() {
        let src = "panic!(\"injected\");\n";
        assert!(lint_source("crates/exec/src/inject.rs", src).is_empty());
        assert!(lint_source("crates/circuits/src/example.rs", src).is_empty());
        let escaped =
            "// lint:allow(SRC005) -- contract violation, not an input error\npanic!(\"bad\");\n";
        assert!(lint_source("crates/x/src/a.rs", escaped).is_empty());
        let test_only = "#[test]\nfn t() { x.expect(\"fine in tests\"); }\n";
        assert!(lint_source("crates/x/src/a.rs", test_only).is_empty());
    }

    #[test]
    fn environment_reads_deny_outside_the_config_site() {
        let src =
            "let t = std::env::var(\"TVS_THREADS\");\nlet d = std::env::var_os(\"TVS_DEBUG\");\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC006", 1), ("SRC006", 2)]);
        assert!(lint_source("crates/exec/src/pool.rs", src).is_empty());
        let escaped = "// lint:allow(SRC006)\nlet d = std::env::var_os(\"TVS_DEBUG\");\n";
        assert!(lint_source("crates/x/src/a.rs", escaped).is_empty());
        // `env::vars()` iteration is just as ambient.
        let iter = "for (k, v) in std::env::vars() {}\n";
        assert_eq!(
            codes_at(&lint_source("crates/x/src/a.rs", iter)),
            vec![("SRC006", 1)]
        );
    }

    #[test]
    fn allowlist_entries_all_point_at_real_paths() {
        // The crate sits at crates/lint, so the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let drift = allowlist_drift(root);
        assert!(drift.is_empty(), "{drift:?}");
    }

    #[test]
    fn missing_allowlist_path_warns_src000() {
        let root = std::env::temp_dir().join(format!("tvs-lint-drift-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("mkdir");
        let drift = allowlist_drift(&root);
        assert_eq!(
            drift.len(),
            ALLOWS.len(),
            "every entry should drift in an empty tree"
        );
        assert!(drift
            .iter()
            .all(|d| d.code == "SRC000" && d.severity == Severity::Warn));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lifetimes_do_not_confuse_the_char_scanner() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet m = HashMap::new();\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC001", 2)]);
    }
}
