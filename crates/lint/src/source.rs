//! Engine 2: token-level determinism lint over the workspace's Rust sources.
//!
//! The scanner strips comments and string literals, masks `#[cfg(test)]` /
//! `#[test]` item bodies, then denies identifiers whose behaviour can vary
//! run-to-run or machine-to-machine:
//!
//! | code   | pattern                              | allowed at                    |
//! |--------|--------------------------------------|-------------------------------|
//! | SRC001 | hash-map / hash-set types            | `crates/exec/src/stats.rs`    |
//! | SRC002 | monotonic / wall-clock reads         | `crates/exec/src/stats.rs`    |
//! | SRC003 | raw thread spawning                  | `crates/exec/`, `crates/serve/src/server.rs`, `crates/fleet/src/coordinator.rs` |
//! | SRC004 | `.unwrap()` in library code          | nowhere                       |
//! | SRC005 | `panic!` / `.expect()` in libraries  | `inject.rs`, `crates/circuits/src/` |
//!
//! Individual sites can opt out with a `// lint:allow(CODE)` comment on the
//! same line or the line directly above.

use crate::diag::{Diagnostic, Severity, Site};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One deny rule of the determinism lint.
struct Rule {
    code: &'static str,
    /// Needles searched in cleaned source; identifier-like needles are
    /// matched with word boundaries, path-like ones as plain substrings.
    needles: &'static [&'static str],
    what: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        code: "SRC001",
        needles: &["HashMap", "HashSet"],
        what: "iteration order depends on the hasher seed; use BTreeMap/BTreeSet or sorted vectors",
    },
    Rule {
        code: "SRC002",
        needles: &["Instant", "SystemTime"],
        what: "clock reads are nondeterministic; route timing through tvs-exec's stats layer",
    },
    Rule {
        code: "SRC003",
        needles: &["thread::spawn", "thread::Builder"],
        what: "raw threads escape the deterministic pool; use tvs-exec",
    },
    Rule {
        code: "SRC004",
        needles: &[".unwrap("],
        what: "library code must surface errors, not panic; use expect with an invariant message or propagate",
    },
    Rule {
        code: "SRC005",
        needles: &["panic!", ".expect("],
        what: "library code must degrade through typed errors, not abort; return an error or justify the invariant with lint:allow(SRC005)",
    },
];

/// Per-file allowlist for a rule code; `file` is a `/`-separated
/// workspace-relative path.
fn file_allows(file: &str, code: &str) -> bool {
    match code {
        "SRC001" | "SRC002" => file == "crates/exec/src/stats.rs",
        // The serve daemon's accept loop spawns one I/O-waiter thread per
        // connection, and the fleet coordinator adds a health-monitor
        // thread; compute still flows through tvs-exec's job queue on the
        // workers.
        "SRC003" => {
            file.starts_with("crates/exec/")
                || file == "crates/serve/src/server.rs"
                || file == "crates/fleet/src/coordinator.rs"
        }
        // The chaos injector exists to raise controlled panics, and the
        // circuit construction crate is an infallible literal builder whose
        // every expect is a generator bug, not a runtime input.
        "SRC005" => file == "crates/exec/src/inject.rs" || file.starts_with("crates/circuits/src/"),
        _ => false,
    }
}

/// The comment/string stripper's output: source with the same line structure
/// but literal and comment bytes blanked, plus `lint:allow` codes per line.
struct Cleaned {
    text: String,
    /// `allow[i]` holds the codes allowed on 1-based line `i + 1`.
    allow: Vec<Vec<String>>,
}

/// Strips comments (line, nested block), string literals (plain, raw, byte)
/// and char literals, preserving newlines so line numbers survive. Comment
/// text is searched for `lint:allow(CODE, ...)` markers.
fn clean(text: &str) -> Cleaned {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut allow: Vec<Vec<String>> = vec![Vec::new()];
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut line = 0usize;
    let mut i = 0usize;

    let flush_comment = |comment: &mut String, allow: &mut Vec<Vec<String>>, line: usize| {
        for codes in parse_allows(comment) {
            allow[line].push(codes);
        }
        comment.clear();
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::Line | Mode::Block(_)) {
                flush_comment(&mut comment, &mut allow, line);
            }
            if mode == Mode::Line {
                mode = Mode::Code;
            }
            out.push('\n');
            allow.push(Vec::new());
            line += 1;
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == '/' {
                    mode = Mode::Line;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    mode = Mode::Str;
                    out.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Raw / byte string openers: r", r#", br", b"...
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (hashes > 0 || j > i + (c == 'b') as usize) {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        mode = Mode::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        out.push_str("  ");
                        mode = Mode::Str;
                        i += 2;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' && !prev_ident {
                    // Lifetime ('a not followed by a closing quote) vs char
                    // literal ('x' or '\n').
                    let n1 = chars.get(i + 1).copied().unwrap_or('\0');
                    let n2 = chars.get(i + 2).copied().unwrap_or('\0');
                    if (n1.is_alphabetic() || n1 == '_') && n2 != '\'' {
                        out.push(c);
                        i += 1;
                    } else {
                        mode = Mode::CharLit;
                        out.push(' ');
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            Mode::Line => {
                comment.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied().unwrap_or('\0');
                if c == '*' && next == '/' {
                    if depth == 1 {
                        flush_comment(&mut comment, &mut allow, line);
                        mode = Mode::Code;
                    } else {
                        mode = Mode::Block(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == '*' {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Consume the escaped char unless it is a newline, which
                    // the top of the loop must see to keep line numbers true.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        mode = Mode::Code;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            Mode::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    mode = Mode::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if matches!(mode, Mode::Line | Mode::Block(_)) {
        flush_comment(&mut comment, &mut allow, line);
    }
    Cleaned { text: out, allow }
}

/// Pulls `CODE` names out of every `lint:allow(A, B)` marker in a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut codes = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(end) = rest.find(')') else {
            break;
        };
        for code in rest[..end].split(',') {
            let code = code.trim();
            if !code.is_empty() {
                codes.push(code.to_owned());
            }
        }
        rest = &rest[end + 1..];
    }
    codes
}

/// Blanks the bodies of `#[cfg(test)]` / `#[test]` items so test-only code
/// is exempt from the rules. Tracks brace depth; an attribute arms the mask,
/// the next top-level-of-item `{` opens it, a `;` first disarms it (e.g.
/// `#[cfg(test)] use x;`).
fn mask_tests(cleaned: &str) -> String {
    let chars: Vec<char> = cleaned.chars().collect();
    let mut out = String::with_capacity(cleaned.len());
    let mut depth = 0i32;
    let mut armed = false;
    let mut mask_floor: Option<i32> = None;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '#' && chars.get(i + 1) == Some(&'[') && mask_floor.is_none() {
            // Capture the attribute to see if it is test-related.
            let mut j = i + 2;
            let mut brackets = 1;
            let mut attr = String::new();
            while j < chars.len() && brackets > 0 {
                match chars[j] {
                    '[' => brackets += 1,
                    ']' => brackets -= 1,
                    c => attr.push(c),
                }
                j += 1;
            }
            let attr: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            if attr == "test" || attr.starts_with("cfg(test") {
                armed = true;
            }
            for &a in &chars[i..j] {
                out.push(a);
            }
            i = j;
            continue;
        }
        match c {
            '{' => {
                depth += 1;
                if armed {
                    armed = false;
                    mask_floor = Some(depth);
                }
            }
            '}' => {
                if mask_floor == Some(depth) {
                    mask_floor = None;
                }
                depth -= 1;
            }
            ';' if armed && mask_floor.is_none() => armed = false,
            _ => {}
        }
        let masked = mask_floor.is_some() && c != '\n';
        out.push(if masked { ' ' } else { c });
        i += 1;
    }
    out
}

/// True if `needle` occurs in `line` bounded by non-identifier characters
/// (needles that already contain punctuation match as substrings at their
/// punctuation edges).
fn matches_needle(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !needle.starts_with(|c: char| c.is_alphanumeric() || c == '_')
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= line.len()
            || !needle.ends_with(|c: char| c.is_alphanumeric() || c == '_')
            || !line[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

/// Lints one source file. `file` is the `/`-separated workspace-relative
/// path used for allowlisting and diagnostic sites.
pub fn lint_source(file: &str, text: &str) -> Vec<Diagnostic> {
    let cleaned = clean(text);
    let masked = mask_tests(&cleaned.text);
    let mut diags = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        for rule in RULES {
            if file_allows(file, rule.code) {
                continue;
            }
            let hit = rule.needles.iter().find(|n| matches_needle(line, n));
            let Some(needle) = hit else {
                continue;
            };
            let allowed = cleaned
                .allow
                .get(idx)
                .is_some_and(|a| a.iter().any(|c| c == rule.code))
                || (idx > 0
                    && cleaned
                        .allow
                        .get(idx - 1)
                        .is_some_and(|a| a.iter().any(|c| c == rule.code)));
            if !allowed {
                diags.push(Diagnostic::new(
                    rule.code,
                    Severity::Deny,
                    Site::Source {
                        file: file.to_owned(),
                        line: idx + 1,
                    },
                    format!("{needle:?} here: {}", rule.what),
                ));
            }
        }
    }
    diags
}

/// Lints every library source file of the workspace rooted at `root`:
/// `src/` plus each `crates/*/src/`, recursively, skipping `bin/`
/// directories (binaries may panic and time freely). Files are visited in
/// sorted path order so output is deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let top = root.join("src");
    if top.is_dir() {
        collect_rs(&top, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let text = fs::read_to_string(&file)?;
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(lint_source(&rel, &text));
    }
    Ok(diags)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_at(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
        diags
            .iter()
            .map(|d| match &d.site {
                Site::Source { line, .. } => (d.code, *line),
                _ => (d.code, 0),
            })
            .collect()
    }

    #[test]
    fn flags_hash_collections_and_clocks() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let d = lint_source("crates/x/src/lib.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC001", 1), ("SRC002", 2)]);
    }

    #[test]
    fn respects_file_allowlists() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        assert!(lint_source("crates/exec/src/stats.rs", src).is_empty());
        let spawn = "std::thread::spawn(|| {});\n";
        assert!(lint_source("crates/exec/src/pool.rs", spawn).is_empty());
        assert!(lint_source("crates/serve/src/server.rs", spawn).is_empty());
        assert!(lint_source("crates/fleet/src/coordinator.rs", spawn).is_empty());
        assert_eq!(lint_source("crates/core/src/jobs.rs", spawn).len(), 1);
        assert_eq!(lint_source("crates/fleet/src/ring.rs", spawn).len(), 1);
        assert_eq!(lint_source("crates/sim/src/lib.rs", spawn).len(), 1);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "let m = HashMap::new(); // lint:allow(SRC001)\n";
        assert!(lint_source("crates/x/src/a.rs", same).is_empty());
        let above = "// lint:allow(SRC001)\nlet m = HashMap::new();\n";
        assert!(lint_source("crates/x/src/a.rs", above).is_empty());
        let wrong_code = "// lint:allow(SRC002)\nlet m = HashMap::new();\n";
        assert_eq!(lint_source("crates/x/src/a.rs", wrong_code).len(), 1);
    }

    #[test]
    fn ignores_strings_comments_and_test_items() {
        let src = concat!(
            "// a HashMap in a comment\n",
            "let s = \"HashMap\";\n",
            "let r = r#\"Instant::now()\"#;\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::collections::HashMap;\n",
            "    fn f() { x.unwrap(); }\n",
            "}\n",
        );
        assert!(lint_source("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_on_use_item_does_not_mask_rest_of_file() {
        let src = concat!(
            "#[cfg(test)]\n",
            "use std::fmt;\n",
            "fn f(x: Option<u32>) -> u32 { x.unwrap() + 1 }\n",
        );
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC004", 3)]);
    }

    #[test]
    fn unwrap_matches_call_not_unwrap_or() {
        let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap();\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC004", 2)]);
    }

    #[test]
    fn panic_and_expect_deny_in_library_code() {
        let src = "let v = x.expect(\"msg\");\npanic!(\"boom\");\nlet w = y.expect_err(\"e\");\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC005", 1), ("SRC005", 2)]);
    }

    #[test]
    fn panic_family_allowlists_and_escapes() {
        let src = "panic!(\"injected\");\n";
        assert!(lint_source("crates/exec/src/inject.rs", src).is_empty());
        assert!(lint_source("crates/circuits/src/example.rs", src).is_empty());
        let escaped =
            "// lint:allow(SRC005) -- contract violation, not an input error\npanic!(\"bad\");\n";
        assert!(lint_source("crates/x/src/a.rs", escaped).is_empty());
        let test_only = "#[test]\nfn t() { x.expect(\"fine in tests\"); }\n";
        assert!(lint_source("crates/x/src/a.rs", test_only).is_empty());
    }

    #[test]
    fn lifetimes_do_not_confuse_the_char_scanner() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet m = HashMap::new();\n";
        let d = lint_source("crates/x/src/a.rs", src);
        assert_eq!(codes_at(&d), vec![("SRC001", 2)]);
    }
}
