//! Standalone lint driver.
//!
//! ```text
//! tvs-lint [--workspace] [--root DIR] [--format text|json] [FILE.bench ...]
//! ```
//!
//! Runs the source determinism lint over the workspace rooted at `--root`
//! (default `.`) when `--workspace` is given, and the IR analyzer over each
//! `.bench` netlist named on the command line. Exits 1 if any deny-level
//! diagnostic is found, 2 on usage or I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tvs_lint::{analyze_netlist, has_deny, render_json, render_text, Diagnostic, Severity, Site};

const USAGE: &str =
    "usage: tvs-lint [--workspace] [--root DIR] [--format text|json] [FILE.bench ...]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("{USAGE}");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => json = false,
                    Some("json") => json = true,
                    _ => {
                        eprintln!("{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    if !workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        diags.extend(lint_bench_file(file));
    }
    if workspace {
        match tvs_lint::lint_workspace(&root) {
            Ok(d) => diags.extend(d),
            Err(e) => {
                eprintln!("tvs-lint: cannot scan workspace at {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    let rendered = if json {
        render_json(&diags)
    } else {
        render_text(&diags)
    };
    print!("{rendered}");
    if has_deny(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses and analyzes one `.bench` netlist; parse failures surface as a
/// deny-level `IR000` diagnostic rather than aborting the whole run.
fn lint_bench_file(path: &Path) -> Vec<Diagnostic> {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            return vec![Diagnostic::new(
                "IR000",
                Severity::Deny,
                Site::Source {
                    file: path.display().to_string(),
                    line: 0,
                },
                format!("cannot read file: {e}"),
            )]
        }
    };
    match tvs_netlist::bench::parse(&name, &text) {
        Ok(netlist) => analyze_netlist(&netlist),
        Err(e) => vec![Diagnostic::new(
            "IR000",
            Severity::Deny,
            Site::Source {
                file: path.display().to_string(),
                line: 0,
            },
            format!("parse error: {e}"),
        )],
    }
}
