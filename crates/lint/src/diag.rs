//! The shared diagnostic model: severities, sites, rendering.

use std::fmt;

/// How serious a finding is.
///
/// `Deny` findings fail CI and trip the `debug_assert`-gated IR checks;
/// `Warn` findings are reported but non-fatal; `Info` carries statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (structure statistics, counts).
    Info,
    /// Suspicious but tolerated (e.g. dead gates in synthetic profiles).
    Warn,
    /// A violated invariant; the artifact must not be used as-is.
    Deny,
}

impl Severity {
    /// The lowercase keyword used in text and JSON output.
    pub const fn keyword(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Site {
    /// The artifact as a whole.
    Global,
    /// A net (signal) of an IR graph.
    Net(String),
    /// A scan-chain position (0 = scan-in side).
    Chain(usize),
    /// A cycle index of a stitch program (0-based).
    Cycle(usize),
    /// A line of a source file.
    Source {
        /// Workspace-relative path.
        file: String,
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Global => write!(f, "(global)"),
            Site::Net(name) => write!(f, "net {name:?}"),
            Site::Chain(pos) => write!(f, "chain position {pos}"),
            Site::Cycle(i) => write!(f, "cycle {i}"),
            Site::Source { file, line } => write!(f, "{file}:{line}"),
        }
    }
}

/// One finding of either analysis engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`IR004`, `SRC001`, …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// What the finding points at.
    pub site: Site,
}

impl Diagnostic {
    /// Convenience constructor.
    pub fn new(
        code: &'static str,
        severity: Severity,
        site: Site,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            site,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.site, self.message
        )
    }
}

/// Returns `true` if any diagnostic is deny-level.
pub fn has_deny(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Deny)
}

/// Counts `(deny, warn, info)` diagnostics.
pub fn counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Deny => c.0 += 1,
            Severity::Warn => c.1 += 1,
            Severity::Info => c.2 += 1,
        }
    }
    c
}

/// Renders diagnostics as human-readable text, one per line, with a closing
/// summary line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let (deny, warn, info) = counts(diags);
    out.push_str(&format!("{deny} deny, {warn} warn, {info} info\n"));
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn site_json(site: &Site) -> String {
    match site {
        Site::Global => r#"{"kind":"global"}"#.to_owned(),
        Site::Net(name) => format!(r#"{{"kind":"net","name":"{}"}}"#, json_escape(name)),
        Site::Chain(pos) => format!(r#"{{"kind":"chain","position":{pos}}}"#),
        Site::Cycle(i) => format!(r#"{{"kind":"cycle","index":{i}}}"#),
        Site::Source { file, line } => format!(
            r#"{{"kind":"source","file":"{}","line":{line}}}"#,
            json_escape(file)
        ),
    }
}

/// Renders diagnostics as a machine-readable JSON document
/// (`{"diagnostics": [...], "counts": {...}}`).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            r#"{{"code":"{}","severity":"{}","site":{},"message":"{}"}}"#,
            d.code,
            d.severity.keyword(),
            site_json(&d.site),
            json_escape(&d.message)
        ));
    }
    let (deny, warn, info) = counts(diags);
    out.push_str(&format!(
        "],\"counts\":{{\"deny\":{deny},\"warn\":{warn},\"info\":{info}}}}}"
    ));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_counts() {
        let d = Diagnostic::new("IR001", Severity::Deny, Site::Net("x".into()), "undriven");
        assert_eq!(d.to_string(), "deny[IR001] net \"x\": undriven");
        let w = Diagnostic::new("IR006", Severity::Warn, Site::Global, "dead");
        assert_eq!(counts(&[d.clone(), w]), (1, 1, 0));
        assert!(has_deny(&[d]));
    }

    #[test]
    fn json_is_escaped_and_structured() {
        let d = Diagnostic::new(
            "SRC001",
            Severity::Deny,
            Site::Source {
                file: "a\\b.rs".into(),
                line: 3,
            },
            "say \"no\"",
        );
        let json = render_json(&[d]);
        assert!(json.contains(r#""file":"a\\b.rs""#), "{json}");
        assert!(json.contains(r#"say \"no\""#), "{json}");
        assert!(
            json.contains(r#""counts":{"deny":1,"warn":0,"info":0}"#),
            "{json}"
        );
    }

    #[test]
    fn severity_orders_info_warn_deny() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Deny);
    }
}
