//! The analyzer-facing IR: a net/driver graph plus program shape.
//!
//! [`IrGraph`] is deliberately lower-level than [`tvs_netlist::Netlist`]:
//! it separates *nets* from the *nodes* driving them, so malformed
//! structures that the netlist builder rejects by construction (undriven or
//! multiply-driven nets, dangling fanin references, broken chains) are
//! representable and testable. `analyze_netlist` goes through the lossless
//! [`From<&Netlist>`] conversion, under which every gate drives the
//! same-indexed net.

use tvs_netlist::{GateKind, Netlist};

/// What a node is, as far as the structural rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrKind {
    /// Primary input: a source, no fanin.
    Input,
    /// Flip-flop: a source of the combinational core; exactly one (sequential)
    /// fanin, its D net.
    Flop,
    /// Combinational gate: at least one fanin.
    Comb,
}

/// One driving element: a gate, input or flop, and the net it drives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrNode {
    /// Node kind.
    pub kind: IrKind,
    /// The gate operator, for semantic passes (testability costing and the
    /// 3-valued interpreter). Structural rules ignore it; `Input`/`Flop`
    /// nodes carry `GateKind::Input`/`GateKind::Dff`.
    pub op: GateKind,
    /// The net this node drives.
    pub drives: usize,
    /// Input nets, in pin order (sequential for `Flop`).
    pub fanin: Vec<usize>,
}

/// A netlist-shaped graph for structural analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrGraph {
    /// Artifact name (circuit name), used in messages only.
    pub name: String,
    /// Number of nets; fanin/drives/output indices must be `< net_count`.
    pub net_count: usize,
    /// Net names for diagnostics; missing entries fall back to `net#<i>`.
    pub net_names: Vec<String>,
    /// The driving elements.
    pub nodes: Vec<IrNode>,
    /// Primary-output nets.
    pub outputs: Vec<usize>,
    /// Scan chain: node indices of the flops in chain order
    /// (position 0 = scan-in side).
    pub chain: Vec<usize>,
    /// The scan length the rest of the system assumes (`L`), if declared;
    /// checked against `chain.len()`.
    pub declared_scan_len: Option<usize>,
}

impl IrGraph {
    /// The display name of a net.
    pub fn net_name(&self, net: usize) -> String {
        self.net_names
            .get(net)
            .cloned()
            .unwrap_or_else(|| format!("net#{net}"))
    }
}

impl From<&Netlist> for IrGraph {
    fn from(netlist: &Netlist) -> IrGraph {
        let nodes = netlist
            .gate_ids()
            .map(|id| {
                let gate = netlist.gate(id);
                IrNode {
                    kind: match gate.kind() {
                        GateKind::Input => IrKind::Input,
                        GateKind::Dff => IrKind::Flop,
                        _ => IrKind::Comb,
                    },
                    op: gate.kind(),
                    drives: id.index(),
                    fanin: gate.fanin().iter().map(|f| f.index()).collect(),
                }
            })
            .collect();
        IrGraph {
            name: netlist.name().to_owned(),
            net_count: netlist.gate_count(),
            net_names: netlist
                .gate_ids()
                .map(|id| netlist.gate_name(id).to_owned())
                .collect(),
            nodes,
            outputs: netlist.outputs().iter().map(|o| o.index()).collect(),
            chain: netlist.dffs().iter().map(|d| d.index()).collect(),
            declared_scan_len: Some(netlist.dff_count()),
        }
    }
}

/// The shape of a stitch program, as far as the consistency rules care.
///
/// Build one from a `StitchReport` (the stitch engine does this in its
/// `debug_assert`-gated exit check) or by hand in tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Scan-chain length `L`.
    pub scan_len: usize,
    /// Fresh bits shifted per stitched cycle, in application order
    /// (`shifts[0]` is the initial full shift-in).
    pub shifts: Vec<usize>,
    /// Closing observation shift length.
    pub final_flush: usize,
    /// Conventional full-shift fallback vectors appended at the end — the
    /// paper's `ex` column.
    pub extra_vectors: usize,
    /// Faults still uncaught when the stitched phase stopped; `ex` vectors
    /// are only legitimate once constrained ATPG was exhausted on a
    /// non-empty remainder.
    pub uncaught_at_fallback: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{GateKind, NetlistBuilder};

    #[test]
    fn netlist_conversion_is_lossless_on_fig1() {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        let n = b.build().unwrap();
        let g = IrGraph::from(&n);
        assert_eq!(g.net_count, 6);
        assert_eq!(g.nodes.len(), 6);
        assert_eq!(g.chain.len(), 3);
        assert_eq!(g.declared_scan_len, Some(3));
        assert_eq!(g.net_name(0), "a");
        assert_eq!(g.nodes[0].kind, IrKind::Flop);
        assert_eq!(g.nodes[3].kind, IrKind::Comb);
        assert_eq!(g.nodes[0].op, GateKind::Dff);
        assert_eq!(g.nodes[3].op, GateKind::And);
        assert_eq!(g.nodes[4].op, GateKind::Or);
        // Every node drives its own index.
        for (i, node) in g.nodes.iter().enumerate() {
            assert_eq!(node.drives, i);
        }
    }

    #[test]
    fn net_name_falls_back_for_unnamed_nets() {
        let g = IrGraph {
            name: "t".into(),
            net_count: 2,
            net_names: vec!["a".into()],
            nodes: Vec::new(),
            outputs: Vec::new(),
            chain: Vec::new(),
            declared_scan_len: None,
        };
        assert_eq!(g.net_name(0), "a");
        assert_eq!(g.net_name(1), "net#1");
    }
}
