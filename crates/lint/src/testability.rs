//! SCOAP-style testability dataflow over an [`IrGraph`].
//!
//! A forward sweep computes 0/1-controllability (`CC0`/`CC1`: the cost of
//! setting a net to 0 or 1 from the primary inputs and scan cells) and a
//! reverse sweep computes observability (`CO`: the cost of propagating a
//! net to a primary output or a scan-cell D pin). All arithmetic is
//! saturating integer math — deterministic, no floats — with finite sums
//! clamped to [`UNREACHED`]` - 1` so cost saturation can never alias the
//! unreachability sentinel: `co == UNREACHED` means *no structural path to
//! any observation point exists*, which is the soundness bedrock of the
//! static fault pruning built on top.
//!
//! Diagnostic codes:
//!
//! | code  | severity     | meaning                                        |
//! |-------|--------------|------------------------------------------------|
//! | TB001 | warn         | net is hard to control (cost above threshold)  |
//! | TB002 | warn         | net is hard to observe (cost above threshold)  |
//! | TB003 | warn or deny | net is structurally unobservable               |

use crate::dataflow::CombOrder;
use crate::diag::{json_escape, Diagnostic, Severity, Site};
use crate::graph::{IrGraph, IrKind};
use tvs_netlist::GateKind;

/// Sentinel for "no structural path": a net that cannot be reached from
/// the observation points, as opposed to one that is merely expensive.
pub const UNREACHED: u32 = u32::MAX;

/// Largest representable finite cost. Saturating sums clamp here so an
/// expensive-but-reachable net never aliases [`UNREACHED`].
const FINITE_MAX: u32 = u32::MAX - 1;

/// Saturating cost addition: `UNREACHED` is absorbing, finite sums clamp
/// to [`FINITE_MAX`].
fn add(a: u32, b: u32) -> u32 {
    if a == UNREACHED || b == UNREACHED {
        UNREACHED
    } else {
        a.saturating_add(b).min(FINITE_MAX)
    }
}

/// A fault site that no structural path connects to an observation point.
///
/// `pin: None` is the stem fault at the node's output; `pin: Some(p)` is
/// the branch fault on the node's `p`-th input. Node indices coincide with
/// `GateId` indices under the `From<&Netlist>` conversion, which is what
/// lets `tvs-fault` pre-classify these sites without re-deriving anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UntestableSite {
    /// Node index in the graph (== gate index for converted netlists).
    pub node: usize,
    /// `None` for the output stem, `Some(pin)` for an input branch.
    pub pin: Option<u32>,
}

/// Computed SCOAP measures for one [`IrGraph`].
#[derive(Debug, Clone)]
pub struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
    /// Per node, per input pin: observability of the branch.
    co_pin: Vec<Vec<u32>>,
}

impl Testability {
    /// Computes all measures, or `None` when the graph is not well-formed
    /// enough (see [`CombOrder::build`]) — structural rules report why.
    pub fn compute(graph: &IrGraph) -> Option<Testability> {
        let order = CombOrder::build(graph)?;
        Some(Testability::compute_with(graph, &order))
    }

    pub(crate) fn compute_with(graph: &IrGraph, order: &CombOrder) -> Testability {
        let n_nets = graph.net_count;
        let mut cc0 = vec![UNREACHED; n_nets];
        let mut cc1 = vec![UNREACHED; n_nets];

        // Sources (PIs and scan cells) are perfectly controllable.
        for node in &graph.nodes {
            if node.kind != IrKind::Comb {
                cc0[node.drives] = 1;
                cc1[node.drives] = 1;
            }
        }

        // Forward sweep in levelized order.
        for &i in &order.order {
            let node = &graph.nodes[i];
            let ins: Vec<(u32, u32)> = node.fanin.iter().map(|&f| (cc0[f], cc1[f])).collect();
            let (c0, c1) = gate_controllability(node.op, &ins);
            cc0[node.drives] = c0;
            cc1[node.drives] = c1;
        }

        // Reverse sweep for observability.
        let mut co = vec![UNREACHED; n_nets];
        let mut co_pin: Vec<Vec<u32>> = graph
            .nodes
            .iter()
            .map(|n| vec![UNREACHED; n.fanin.len()])
            .collect();
        for &o in &graph.outputs {
            co[o] = 0;
        }
        // Scan-cell D pins are observation points (captured and shifted
        // out); full scan makes every flop a scan cell.
        for (i, node) in graph.nodes.iter().enumerate() {
            if node.kind == IrKind::Flop {
                co_pin[i][0] = 0;
            }
        }

        for &i in order.order.iter().rev() {
            let node = &graph.nodes[i];
            let stem = best_branch_co(&order.readers[node.drives], &co_pin).min(co[node.drives]);
            co[node.drives] = stem;
            if stem == UNREACHED {
                continue;
            }
            for (pin, slot) in co_pin[i].iter_mut().enumerate() {
                let side = node
                    .fanin
                    .iter()
                    .enumerate()
                    .filter(|&(p, _)| p != pin)
                    .map(|(_, &other)| match node.op {
                        GateKind::And | GateKind::Nand => cc1[other],
                        GateKind::Or | GateKind::Nor => cc0[other],
                        GateKind::Xor | GateKind::Xnor => cc0[other].min(cc1[other]),
                        _ => 0,
                    })
                    .fold(0u32, add);
                let pin_co = add(add(stem, side), 1);
                *slot = (*slot).min(pin_co);
            }
        }
        // Source stems observed through their branches.
        for node in &graph.nodes {
            if node.kind != IrKind::Comb {
                let stem =
                    best_branch_co(&order.readers[node.drives], &co_pin).min(co[node.drives]);
                co[node.drives] = stem;
            }
        }

        Testability {
            cc0,
            cc1,
            co,
            co_pin,
        }
    }

    /// 0-controllability of a net (cost of setting it to 0).
    pub fn cc0(&self, net: usize) -> u32 {
        self.cc0[net]
    }

    /// 1-controllability of a net (cost of setting it to 1).
    pub fn cc1(&self, net: usize) -> u32 {
        self.cc1[net]
    }

    /// Observability of a net's stem.
    pub fn co(&self, net: usize) -> u32 {
        self.co[net]
    }

    /// Observability of one input branch of a node.
    pub fn co_pin(&self, node: usize, pin: usize) -> u32 {
        self.co_pin[node][pin]
    }

    /// Every fault site with no structural path to an observation point,
    /// in deterministic (node, stem-before-branches, pin) order. Faults at
    /// these sites can never produce an output difference, so simulation
    /// classifies them *uncaught* in every run — which is what makes
    /// static pre-classification exact rather than heuristic.
    pub fn untestable_sites(&self, graph: &IrGraph) -> Vec<UntestableSite> {
        let mut sites = Vec::new();
        for (i, node) in graph.nodes.iter().enumerate() {
            if self.co[node.drives] == UNREACHED {
                sites.push(UntestableSite { node: i, pin: None });
            }
            for pin in 0..node.fanin.len() {
                if self.co_pin[i][pin] == UNREACHED {
                    sites.push(UntestableSite {
                        node: i,
                        pin: Some(pin as u32),
                    });
                }
            }
        }
        sites
    }
}

fn best_branch_co(readers: &[(usize, u32)], co_pin: &[Vec<u32>]) -> u32 {
    readers
        .iter()
        .map(|&(node, pin)| co_pin[node][pin as usize])
        .min()
        .unwrap_or(UNREACHED)
}

fn gate_controllability(kind: GateKind, ins: &[(u32, u32)]) -> (u32, u32) {
    match kind {
        GateKind::Buf => (add(ins[0].0, 1), add(ins[0].1, 1)),
        GateKind::Not => (add(ins[0].1, 1), add(ins[0].0, 1)),
        GateKind::And | GateKind::Nand => {
            let all1 = ins.iter().fold(0u32, |a, &(_, c1)| add(a, c1));
            let any0 = ins.iter().map(|&(c0, _)| c0).min().unwrap_or(UNREACHED);
            let (c0, c1) = (add(any0, 1), add(all1, 1));
            if kind == GateKind::Nand {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
        GateKind::Or | GateKind::Nor => {
            let all0 = ins.iter().fold(0u32, |a, &(c0, _)| add(a, c0));
            let any1 = ins.iter().map(|&(_, c1)| c1).min().unwrap_or(UNREACHED);
            let (c0, c1) = (add(all0, 1), add(any1, 1));
            if kind == GateKind::Nor {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            // Fold pairwise: cost of making the running parity 0 or 1.
            let (mut p0, mut p1) = ins[0];
            for &(c0, c1) in &ins[1..] {
                let n0 = add(p0, c0).min(add(p1, c1));
                let n1 = add(p0, c1).min(add(p1, c0));
                p0 = n0;
                p1 = n1;
            }
            let (c0, c1) = (add(p0, 1), add(p1, 1));
            if kind == GateKind::Xnor {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
        // CombOrder rejects source ops on Comb nodes; sources are seeded,
        // not swept.
        GateKind::Input | GateKind::Dff => (UNREACHED, UNREACHED),
    }
}

/// Thresholds and severities for [`analyze_testability`].
#[derive(Debug, Clone, Copy)]
pub struct TestabilityConfig {
    /// TB001 fires when `max(cc0, cc1)` exceeds this (and is finite).
    pub control_warn: u32,
    /// TB002 fires when a finite `co` exceeds this.
    pub observe_warn: u32,
    /// When `true`, TB003 (structurally unobservable net) is deny-level;
    /// the default keeps it warn-level because real profiles legitimately
    /// contain dead gates.
    pub deny_unobservable: bool,
}

impl Default for TestabilityConfig {
    fn default() -> Self {
        TestabilityConfig {
            control_warn: 5_000,
            observe_warn: 5_000,
            deny_unobservable: false,
        }
    }
}

/// Per-rule cap on individually named nets; the remainder is summarized so
/// a pathological circuit cannot flood the report.
const MAX_SITES: usize = 8;

/// Runs the testability rules (TB001-TB003) over a graph.
///
/// Returns an empty list when the graph is too malformed to levelize —
/// the structural rules already carry the denies in that case.
pub fn analyze_testability(graph: &IrGraph, config: &TestabilityConfig) -> Vec<Diagnostic> {
    let Some(t) = Testability::compute(graph) else {
        return Vec::new();
    };
    let mut diags = Vec::new();

    let mut hard_control: Vec<usize> = Vec::new();
    let mut hard_observe: Vec<usize> = Vec::new();
    let mut unobservable: Vec<usize> = Vec::new();
    for net in 0..graph.net_count {
        let control = t.cc0(net).max(t.cc1(net));
        if control != UNREACHED && control > config.control_warn {
            hard_control.push(net);
        }
        match t.co(net) {
            UNREACHED => unobservable.push(net),
            co if co > config.observe_warn => hard_observe.push(net),
            _ => {}
        }
    }

    emit_capped(
        &mut diags,
        graph,
        "TB001",
        Severity::Warn,
        &hard_control,
        |net| {
            format!(
                "net is hard to control: cc0={} cc1={} exceeds threshold {}",
                t.cc0(net),
                t.cc1(net),
                config.control_warn
            )
        },
        &format!(
            "nets with controllability above threshold {}",
            config.control_warn
        ),
    );
    emit_capped(
        &mut diags,
        graph,
        "TB002",
        Severity::Warn,
        &hard_observe,
        |net| {
            format!(
                "net is hard to observe: co={} exceeds threshold {}",
                t.co(net),
                config.observe_warn
            )
        },
        &format!(
            "nets with observability above threshold {}",
            config.observe_warn
        ),
    );
    let tb003 = if config.deny_unobservable {
        Severity::Deny
    } else {
        Severity::Warn
    };
    emit_capped(
        &mut diags,
        graph,
        "TB003",
        tb003,
        &unobservable,
        |_| {
            "net is structurally unobservable: no path to any output or scan cell \
             (statically redundant fault site)"
                .to_owned()
        },
        "structurally unobservable nets",
    );
    diags
}

fn emit_capped(
    diags: &mut Vec<Diagnostic>,
    graph: &IrGraph,
    code: &'static str,
    severity: Severity,
    nets: &[usize],
    message: impl Fn(usize) -> String,
    summary: &str,
) {
    for &net in nets.iter().take(MAX_SITES) {
        diags.push(Diagnostic::new(
            code,
            severity,
            Site::Net(graph.net_name(net)),
            message(net),
        ));
    }
    if nets.len() > MAX_SITES {
        diags.push(Diagnostic::new(
            code,
            severity,
            Site::Global,
            format!("{} more {summary}", nets.len() - MAX_SITES),
        ));
    }
}

/// Renders the per-net scores as JSON: `{"circuit":..,"nets":[{"net":..,
/// "name":..,"cc0":..,"cc1":..,"co":..},..]}`. Unreachable costs render as
/// `null`.
pub fn testability_json(graph: &IrGraph, t: &Testability) -> String {
    let cost = |c: u32| {
        if c == UNREACHED {
            "null".to_owned()
        } else {
            c.to_string()
        }
    };
    let mut out = String::new();
    out.push_str("{\"circuit\":\"");
    out.push_str(&json_escape(&graph.name));
    out.push_str("\",\"nets\":[");
    for net in 0..graph.net_count {
        if net > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"net\":{net},\"name\":\"{}\",\"cc0\":{},\"cc1\":{},\"co\":{}}}",
            json_escape(&graph.net_name(net)),
            cost(t.cc0(net)),
            cost(t.cc1(net)),
            cost(t.co(net)),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::{Netlist, NetlistBuilder};

    fn build_chain() -> Netlist {
        // a -> AND(y) <- b ; y -> AND(z) <- c ; z is the only output.
        let mut b = NetlistBuilder::new("chain");
        b.add_input("a").unwrap();
        b.add_input("b").unwrap();
        b.add_input("c").unwrap();
        b.add_gate("y", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("z", GateKind::And, &["y", "c"]).unwrap();
        b.mark_output("z").unwrap();
        b.build().unwrap()
    }

    fn net(n: &Netlist, name: &str) -> usize {
        n.find(name).unwrap().index()
    }

    #[test]
    fn mirrors_the_fault_side_scoap_golden_values() {
        let n = build_chain();
        let g = IrGraph::from(&n);
        let t = Testability::compute(&g).unwrap();
        assert_eq!(t.cc1(net(&n, "y")), 3);
        assert_eq!(t.cc0(net(&n, "y")), 2);
        assert_eq!(t.cc1(net(&n, "z")), 5);
        assert_eq!(t.cc0(net(&n, "z")), 2);
        assert_eq!(t.co(net(&n, "z")), 0);
        assert_eq!(t.co(net(&n, "y")), 2);
        assert_eq!(t.co(net(&n, "a")), 4);
    }

    #[test]
    fn scan_cells_are_observation_points() {
        let mut b = NetlistBuilder::new("ff");
        b.add_input("a").unwrap();
        b.add_dff("q", "d").unwrap();
        b.add_gate("d", GateKind::And, &["a", "q"]).unwrap();
        let n = b.build().unwrap();
        let g = IrGraph::from(&n);
        let t = Testability::compute(&g).unwrap();
        assert_eq!(t.co(net(&n, "d")), 0);
        assert_eq!(t.co(net(&n, "q")), 2);
    }

    #[test]
    fn dead_cone_is_unobservable_transitively() {
        // a -> NOT(x) -> NOT(y); y has no readers, so x and y are both
        // unobservable, but a still reaches the output z.
        let mut b = NetlistBuilder::new("dead");
        b.add_input("a").unwrap();
        b.add_gate("x", GateKind::Not, &["a"]).unwrap();
        b.add_gate("y", GateKind::Not, &["x"]).unwrap();
        b.add_gate("z", GateKind::Buf, &["a"]).unwrap();
        b.mark_output("z").unwrap();
        let n = b.build().unwrap();
        let g = IrGraph::from(&n);
        let t = Testability::compute(&g).unwrap();
        assert_eq!(t.co(net(&n, "x")), UNREACHED);
        assert_eq!(t.co(net(&n, "y")), UNREACHED);
        assert_ne!(t.co(net(&n, "a")), UNREACHED);
        let sites = t.untestable_sites(&g);
        assert!(sites.contains(&UntestableSite {
            node: net(&n, "x"),
            pin: None
        }));
        assert!(sites.contains(&UntestableSite {
            node: net(&n, "y"),
            pin: Some(0)
        }));
        // TB003 fires, deny only when configured.
        let warn = analyze_testability(&g, &TestabilityConfig::default());
        assert!(warn
            .iter()
            .any(|d| d.code == "TB003" && d.severity == Severity::Warn));
        let deny_config = TestabilityConfig {
            deny_unobservable: true,
            ..TestabilityConfig::default()
        };
        let deny = analyze_testability(&g, &deny_config);
        assert!(deny
            .iter()
            .any(|d| d.code == "TB003" && d.severity == Severity::Deny));
    }

    #[test]
    fn saturation_never_aliases_the_sentinel() {
        assert_eq!(add(FINITE_MAX, FINITE_MAX), FINITE_MAX);
        assert_eq!(add(FINITE_MAX, 1), FINITE_MAX);
        assert_eq!(add(UNREACHED, 0), UNREACHED);
        assert_ne!(add(FINITE_MAX, FINITE_MAX), UNREACHED);
    }

    #[test]
    fn thresholds_drive_tb001_and_tb002() {
        let n = build_chain();
        let g = IrGraph::from(&n);
        let tight = TestabilityConfig {
            control_warn: 2,
            observe_warn: 1,
            deny_unobservable: false,
        };
        let d = analyze_testability(&g, &tight);
        assert!(d.iter().any(|d| d.code == "TB001"));
        assert!(d.iter().any(|d| d.code == "TB002"));
        let loose = TestabilityConfig::default();
        assert!(analyze_testability(&g, &loose).is_empty());
    }

    #[test]
    fn scores_export_as_json() {
        let n = build_chain();
        let g = IrGraph::from(&n);
        let t = Testability::compute(&g).unwrap();
        let json = testability_json(&g, &t);
        assert!(json.starts_with("{\"circuit\":\"chain\""));
        assert!(json.contains("\"name\":\"y\",\"cc0\":2,\"cc1\":3,\"co\":2"));
    }
}
