//! Shared dataflow scaffolding: well-formedness gating and a levelized
//! evaluation order over an [`IrGraph`]'s combinational core.
//!
//! The semantic passes (SCOAP testability, the 3-valued program
//! interpreter) need stronger invariants than the structural rules assume:
//! every net driven exactly once, no dangling references, evaluable
//! operator arities, and an acyclic combinational core. [`CombOrder`]
//! checks all of that once and hands back a topological order; when the
//! graph is malformed it declines (`None`) and the structural rules
//! (IR001-IR005) remain the source of truth for *why*.

use crate::graph::{IrGraph, IrKind};

/// A validated, levelized view of an [`IrGraph`].
#[derive(Debug, Clone)]
pub(crate) struct CombOrder {
    /// Combinational node indices in topological (levelized) order.
    pub order: Vec<usize>,
    /// Per net, the `(node, pin)` branches reading it, in node order.
    pub readers: Vec<Vec<(usize, u32)>>,
}

impl CombOrder {
    /// Builds the order, or `None` when the graph is not well-formed enough
    /// for semantic analysis.
    pub fn build(graph: &IrGraph) -> Option<CombOrder> {
        let n_nets = graph.net_count;
        let mut driver_of = vec![usize::MAX; n_nets];
        for (i, node) in graph.nodes.iter().enumerate() {
            if node.drives >= n_nets || driver_of[node.drives] != usize::MAX {
                return None;
            }
            driver_of[node.drives] = i;
            match node.kind {
                IrKind::Input if !node.fanin.is_empty() => return None,
                IrKind::Flop if node.fanin.len() != 1 => return None,
                IrKind::Comb if node.fanin.is_empty() || !node.op.is_combinational() => {
                    return None
                }
                _ => {}
            }
            if node.fanin.iter().any(|&f| f >= n_nets) {
                return None;
            }
        }
        if driver_of.contains(&usize::MAX) {
            return None;
        }
        for &o in &graph.outputs {
            if o >= n_nets {
                return None;
            }
        }
        for &c in &graph.chain {
            if c >= graph.nodes.len() || graph.nodes[c].kind != IrKind::Flop {
                return None;
            }
        }

        let mut readers: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n_nets];
        for (i, node) in graph.nodes.iter().enumerate() {
            for (pin, &f) in node.fanin.iter().enumerate() {
                readers[f].push((i, pin as u32));
            }
        }

        // Kahn levelization of the combinational subgraph; sources (inputs
        // and flop outputs) are level 0 and not part of the order.
        let n_nodes = graph.nodes.len();
        let mut indeg = vec![0usize; n_nodes];
        for (i, node) in graph.nodes.iter().enumerate() {
            if node.kind != IrKind::Comb {
                continue;
            }
            indeg[i] = node
                .fanin
                .iter()
                .filter(|&&f| graph.nodes[driver_of[f]].kind == IrKind::Comb)
                .count();
        }
        // Process in ascending node index within a level for determinism.
        let mut ready: Vec<usize> = (0..n_nodes)
            .filter(|&i| graph.nodes[i].kind == IrKind::Comb && indeg[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(n_nodes);
        let mut cursor = 0;
        while cursor < ready.len() {
            let v = ready[cursor];
            cursor += 1;
            order.push(v);
            for &(reader, _) in &readers[graph.nodes[v].drives] {
                if graph.nodes[reader].kind == IrKind::Comb {
                    indeg[reader] -= 1;
                    if indeg[reader] == 0 {
                        ready.push(reader);
                    }
                }
            }
        }
        let comb_total = graph
            .nodes
            .iter()
            .filter(|n| n.kind == IrKind::Comb)
            .count();
        if order.len() != comb_total {
            return None; // combinational cycle
        }
        Some(CombOrder { order, readers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::IrNode;
    use tvs_netlist::GateKind;

    fn input(drives: usize) -> IrNode {
        IrNode {
            kind: IrKind::Input,
            op: GateKind::Input,
            drives,
            fanin: Vec::new(),
        }
    }

    fn comb(op: GateKind, drives: usize, fanin: &[usize]) -> IrNode {
        IrNode {
            kind: IrKind::Comb,
            op,
            drives,
            fanin: fanin.to_vec(),
        }
    }

    fn graph(nodes: Vec<IrNode>, outputs: Vec<usize>) -> IrGraph {
        let net_count = nodes.len();
        IrGraph {
            name: "t".into(),
            net_count,
            net_names: (0..net_count).map(|i| format!("n{i}")).collect(),
            nodes,
            outputs,
            chain: Vec::new(),
            declared_scan_len: None,
        }
    }

    #[test]
    fn levelizes_a_clean_dag() {
        let g = graph(
            vec![
                input(0),
                comb(GateKind::Not, 1, &[0]),
                comb(GateKind::And, 2, &[0, 1]),
            ],
            vec![2],
        );
        let o = CombOrder::build(&g).unwrap();
        assert_eq!(o.order, vec![1, 2]);
        assert_eq!(o.readers[0], vec![(1, 0), (2, 0)]);
    }

    #[test]
    fn declines_cycles_and_undriven_nets() {
        let cyclic = graph(
            vec![
                input(0),
                comb(GateKind::And, 1, &[0, 2]),
                comb(GateKind::Not, 2, &[1]),
            ],
            vec![2],
        );
        assert!(CombOrder::build(&cyclic).is_none());

        let mut undriven = graph(vec![input(0), comb(GateKind::Not, 1, &[2])], vec![1]);
        undriven.net_count = 3;
        assert!(CombOrder::build(&undriven).is_none());
    }
}
