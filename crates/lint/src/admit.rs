//! Lint-gated admission: the analysis bundle the serving layers run at
//! submit time, before any engine run is admitted.
//!
//! Two entry points cover the two ways a submission can be bad:
//!
//! * the `.bench` source *builds* but violates deny-level rules —
//!   [`admission_diagnostics`] runs the structural rules and the
//!   testability dataflow over the built netlist;
//! * the source *cannot be built* because the builder caught a structural
//!   error (cycle, duplicate/undefined signal, bad arity) —
//!   [`netlist_error_diagnostics`] translates that typed error into the
//!   same diagnostic vocabulary, so clients see one format either way.
//!
//! Genuine syntax errors (`NetlistError::Parse`) are *not* design-rule
//! findings and map to `None`; callers keep reporting those through their
//! plain netlist-error path.

use tvs_netlist::{Netlist, NetlistError};

use crate::diag::{Diagnostic, Severity, Site};
use crate::graph::IrGraph;
use crate::ir::analyze_graph;
use crate::testability::{analyze_testability, TestabilityConfig};

/// Runs the full admission analysis over a built netlist: every structural
/// design rule plus the SCOAP-style testability pass.
///
/// The caller decides policy by filtering severities (serving layers reject
/// on any deny-level finding).
pub fn admission_diagnostics(netlist: &Netlist, config: &TestabilityConfig) -> Vec<Diagnostic> {
    let graph = IrGraph::from(netlist);
    let mut diags = analyze_graph(&graph);
    diags.extend(analyze_testability(&graph, config));
    diags
}

/// Translates a structural [`NetlistError`] into the diagnostic vocabulary
/// of the IR rules, or `None` when the error is a syntax problem (or an
/// unknown future variant) rather than a design-rule violation.
pub fn netlist_error_diagnostics(err: &NetlistError) -> Option<Vec<Diagnostic>> {
    let (code, site) = match err {
        NetlistError::UndefinedSignal(s) => ("IR001", Site::Net(s.clone())),
        NetlistError::DuplicateSignal(s) => ("IR002", Site::Net(s.clone())),
        NetlistError::UndefinedOutput(s) => ("IR003", Site::Net(s.clone())),
        NetlistError::CombinationalCycle(s) => ("IR004", Site::Net(s.clone())),
        NetlistError::BadArity { signal, .. } => ("IR005", Site::Net(signal.clone())),
        _ => return None,
    };
    Some(vec![Diagnostic::new(
        code,
        Severity::Deny,
        site,
        err.to_string(),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_netlist::GateKind;

    #[test]
    fn structural_errors_map_to_ir_codes() {
        let cases = [
            (NetlistError::UndefinedSignal("x".into()), "IR001"),
            (NetlistError::DuplicateSignal("x".into()), "IR002"),
            (NetlistError::UndefinedOutput("x".into()), "IR003"),
            (NetlistError::CombinationalCycle("x".into()), "IR004"),
            (
                NetlistError::BadArity {
                    signal: "x".into(),
                    kind: GateKind::Not,
                    found: 2,
                },
                "IR005",
            ),
        ];
        for (err, code) in cases {
            let diags = netlist_error_diagnostics(&err).unwrap();
            assert_eq!(diags.len(), 1);
            assert_eq!(diags[0].code, code);
            assert_eq!(diags[0].severity, Severity::Deny);
            assert_eq!(diags[0].site, Site::Net("x".into()));
        }
    }

    #[test]
    fn parse_errors_are_not_design_rule_findings() {
        let err = NetlistError::Parse {
            line: 3,
            message: "garbage".into(),
        };
        assert!(netlist_error_diagnostics(&err).is_none());
    }

    #[test]
    fn clean_netlist_admits_with_stats_only() {
        let mut b = tvs_netlist::NetlistBuilder::new("t");
        b.add_input("a").unwrap();
        b.add_dff("q", "y").unwrap();
        b.add_gate("y", GateKind::And, &["a", "q"]).unwrap();
        b.mark_output("y").unwrap();
        let n = b.build().unwrap();
        let diags = admission_diagnostics(&n, &TestabilityConfig::default());
        assert!(!crate::diag::has_deny(&diags), "{diags:?}");
    }
}
