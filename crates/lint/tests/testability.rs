//! Testability-dataflow golden and property tests.
//!
//! The golden test hand-checks every SCOAP score on the paper's Fig. 1
//! circuit (s27-sized: 3 scan cells, 3 gates). The property test pins the
//! analysis to the circuit's *structure*: scores must be invariant under
//! gate declaration reordering.

use tvs_lint::{IrGraph, Testability};
use tvs_logic::Prng;
use tvs_netlist::{GateKind, Netlist, NetlistBuilder};

fn net(n: &Netlist, name: &str) -> usize {
    n.find(name).unwrap().index()
}

#[test]
fn fig1_scores_match_hand_computation() {
    let mut b = NetlistBuilder::new("fig1");
    b.add_dff("a", "F").unwrap();
    b.add_dff("b", "E").unwrap();
    b.add_dff("c", "D").unwrap();
    b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
    b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
    b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
    let n = b.build().unwrap();
    let g = IrGraph::from(&n);
    let t = Testability::compute(&g).unwrap();

    // Scan cells are perfectly controllable sources.
    for name in ["a", "b", "c"] {
        assert_eq!(t.cc0(net(&n, name)), 1, "{name}");
        assert_eq!(t.cc1(net(&n, name)), 1, "{name}");
    }
    // D = AND(a, b): cc1 = 1+1+1, cc0 = min(1,1)+1.
    assert_eq!(t.cc1(net(&n, "D")), 3);
    assert_eq!(t.cc0(net(&n, "D")), 2);
    // E = OR(b, c): dual of D.
    assert_eq!(t.cc0(net(&n, "E")), 3);
    assert_eq!(t.cc1(net(&n, "E")), 2);
    // F = AND(D, E): cc1 = 3+2+1, cc0 = min(2,3)+1.
    assert_eq!(t.cc1(net(&n, "F")), 6);
    assert_eq!(t.cc0(net(&n, "F")), 3);

    // Every D net feeds a scan cell directly: perfectly observable.
    assert_eq!(t.co(net(&n, "D")), 0);
    assert_eq!(t.co(net(&n, "E")), 0);
    assert_eq!(t.co(net(&n, "F")), 0);
    // Cell outputs observe through one AND/OR side input: cost 2.
    assert_eq!(t.co(net(&n, "a")), 2);
    assert_eq!(t.co(net(&n, "b")), 2);
    assert_eq!(t.co(net(&n, "c")), 2);
}

/// One randomly generated circuit as declaration lists. Gates only reference
/// earlier signals and the builder resolves forward references at `build`,
/// so any declaration order produces the same structure.
struct Spec {
    inputs: Vec<String>,
    dffs: Vec<(String, String)>,
    gates: Vec<(String, GateKind, Vec<String>)>,
    outputs: Vec<String>,
}

fn random_spec(rng: &mut Prng) -> Spec {
    let kinds = [
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
    ];
    let n_pi = rng.gen_range(1..4);
    let n_ff = rng.gen_range(1..4);
    let n_gates = rng.gen_range(2..12);
    let inputs: Vec<String> = (0..n_pi).map(|i| format!("pi{i}")).collect();
    let mut signals: Vec<String> = inputs.clone();
    signals.extend((0..n_ff).map(|i| format!("ff{i}")));
    let mut gates = Vec::new();
    for i in 0..n_gates {
        let name = format!("g{i}");
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let arity = match kind {
            GateKind::Buf | GateKind::Not => 1,
            _ => rng.gen_range(2..4),
        };
        let fanin: Vec<String> = (0..arity)
            .map(|_| signals[rng.gen_range(0..signals.len())].clone())
            .collect();
        signals.push(name.clone());
        gates.push((name, kind, fanin));
    }
    let dffs: Vec<(String, String)> = (0..n_ff)
        .map(|i| {
            (
                format!("ff{i}"),
                signals[rng.gen_range(0..signals.len())].clone(),
            )
        })
        .collect();
    let mut outputs = Vec::new();
    for s in &signals {
        if rng.gen_range(0..4) == 0 {
            outputs.push(s.clone());
        }
    }
    if outputs.is_empty() {
        outputs.push(signals[signals.len() - 1].clone());
    }
    Spec {
        inputs,
        dffs,
        gates,
        outputs,
    }
}

/// Builds the spec declaring items in the order given by `perm`, a
/// permutation of `0..inputs+dffs+gates` (inputs first, then dffs, then
/// gates in the identity order).
fn build(spec: &Spec, perm: &[usize]) -> Netlist {
    let mut b = NetlistBuilder::new("prop");
    for &d in perm {
        if d < spec.inputs.len() {
            b.add_input(&spec.inputs[d]).unwrap();
        } else if d < spec.inputs.len() + spec.dffs.len() {
            let (q, dn) = &spec.dffs[d - spec.inputs.len()];
            b.add_dff(q, dn).unwrap();
        } else {
            let (name, kind, fanin) = &spec.gates[d - spec.inputs.len() - spec.dffs.len()];
            let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
            b.add_gate(name, *kind, &refs).unwrap();
        }
    }
    for o in &spec.outputs {
        b.mark_output(o).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn scores_are_invariant_under_declaration_reordering() {
    let mut rng = Prng::seed_from_u64(0x7e57_ab1e);
    for round in 0..48 {
        let spec = random_spec(&mut rng);
        let total = spec.inputs.len() + spec.dffs.len() + spec.gates.len();
        let identity: Vec<usize> = (0..total).collect();
        let mut shuffled = identity.clone();
        rng.shuffle(&mut shuffled);
        let a = build(&spec, &identity);
        let b = build(&spec, &shuffled);
        let ta = Testability::compute(&IrGraph::from(&a)).unwrap();
        let tb = Testability::compute(&IrGraph::from(&b)).unwrap();
        for gate in a.gate_ids() {
            let name = a.gate_name(gate);
            let ia = gate.index();
            let ib = b.find(name).unwrap().index();
            assert_eq!(ta.cc0(ia), tb.cc0(ib), "cc0({name}) round {round}");
            assert_eq!(ta.cc1(ia), tb.cc1(ib), "cc1({name}) round {round}");
            assert_eq!(ta.co(ia), tb.co(ib), "co({name}) round {round}");
        }
    }
}
