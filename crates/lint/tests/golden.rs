//! Golden-diagnostic tests: each handcrafted bad input must produce exactly
//! the expected diagnostic code.

use tvs_lint::{
    analyze_graph, analyze_program, lint_source, Diagnostic, IrGraph, IrKind, IrNode, ProgramSpec,
    Severity,
};
use tvs_netlist::GateKind;

fn graph(nodes: Vec<IrNode>, outputs: Vec<usize>, chain: Vec<usize>) -> IrGraph {
    let net_count = nodes.len();
    IrGraph {
        name: "bad".into(),
        net_count,
        net_names: (0..net_count).map(|i| format!("n{i}")).collect(),
        nodes,
        outputs,
        chain,
        declared_scan_len: None,
    }
}

fn node(kind: IrKind, drives: usize, fanin: &[usize]) -> IrNode {
    IrNode {
        kind,
        op: match kind {
            IrKind::Input => GateKind::Input,
            IrKind::Flop => GateKind::Dff,
            IrKind::Comb => GateKind::And,
        },
        drives,
        fanin: fanin.to_vec(),
    }
}

fn deny_codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .map(|d| d.code)
        .collect();
    codes.dedup();
    codes
}

#[test]
fn combinational_cycle_is_ir004() {
    // in -> a -> b -> a: a 2-gate loop behind an input.
    let g = graph(
        vec![
            node(IrKind::Input, 0, &[]),
            node(IrKind::Comb, 1, &[0, 2]),
            node(IrKind::Comb, 2, &[1]),
        ],
        vec![2],
        vec![],
    );
    assert_eq!(deny_codes(&analyze_graph(&g)), vec!["IR004"]);
}

#[test]
fn long_cycle_is_found_iteratively() {
    // A 2000-gate ring: recursion-based SCC would overflow the stack here.
    let n = 2000;
    let mut nodes = vec![node(IrKind::Input, 0, &[])];
    for i in 1..=n {
        let prev = if i == 1 { n } else { i - 1 };
        nodes.push(node(IrKind::Comb, i, &[prev]));
    }
    let g = graph(nodes, vec![n], vec![]);
    assert_eq!(deny_codes(&analyze_graph(&g)), vec!["IR004"]);
}

#[test]
fn undriven_net_is_ir001() {
    // Gate reads net 2, which nothing drives.
    let mut g = graph(
        vec![node(IrKind::Input, 0, &[]), node(IrKind::Comb, 1, &[0, 2])],
        vec![1],
        vec![],
    );
    g.net_count = 3;
    g.net_names.push("floating".into());
    assert_eq!(deny_codes(&analyze_graph(&g)), vec!["IR001"]);
}

#[test]
fn double_driven_net_is_ir002() {
    // Two gates both drive net 2.
    let g = graph(
        vec![
            node(IrKind::Input, 0, &[]),
            node(IrKind::Input, 1, &[]),
            node(IrKind::Comb, 2, &[0]),
        ],
        vec![2],
        vec![],
    );
    let mut g = g;
    g.nodes.push(node(IrKind::Comb, 2, &[1]));
    let d = analyze_graph(&g);
    assert_eq!(deny_codes(&d), vec!["IR002"], "{d:?}");
}

#[test]
fn broken_chain_is_ch001_and_ch002() {
    // Two flops; the chain lists flop 0 twice and flop 1 never.
    let g = graph(
        vec![
            node(IrKind::Flop, 0, &[2]),
            node(IrKind::Flop, 1, &[2]),
            node(IrKind::Comb, 2, &[0, 1]),
        ],
        vec![2],
        vec![0, 0],
    );
    let codes = deny_codes(&analyze_graph(&g));
    assert!(codes.contains(&"CH002"), "{codes:?}");
    assert!(codes.contains(&"CH001"), "{codes:?}");
}

#[test]
fn chain_length_mismatch_is_ch003() {
    let mut g = graph(
        vec![node(IrKind::Flop, 0, &[1]), node(IrKind::Comb, 1, &[0])],
        vec![1],
        vec![0],
    );
    g.declared_scan_len = Some(4);
    assert_eq!(deny_codes(&analyze_graph(&g)), vec!["CH003"]);
}

#[test]
fn non_flop_in_chain_is_ch004() {
    let g = graph(
        vec![node(IrKind::Flop, 0, &[1]), node(IrKind::Comb, 1, &[0])],
        vec![1],
        vec![0, 1],
    );
    assert_eq!(deny_codes(&analyze_graph(&g)), vec!["CH004"]);
}

#[test]
fn oversized_shift_is_sp003() {
    // k > L past the opening shift (kept non-shrinking so SP003 is the
    // only finding; a shrink would add SP008).
    let spec = ProgramSpec {
        scan_len: 8,
        shifts: vec![8, 9, 9],
        final_flush: 8,
        extra_vectors: 0,
        uncaught_at_fallback: 0,
    };
    assert_eq!(deny_codes(&analyze_program(&spec)), vec!["SP003"]);
}

#[test]
fn ex_vectors_before_exhaustion_is_sp005() {
    let spec = ProgramSpec {
        scan_len: 8,
        shifts: vec![8, 3],
        final_flush: 8,
        extra_vectors: 4,
        uncaught_at_fallback: 0,
    };
    assert_eq!(deny_codes(&analyze_program(&spec)), vec!["SP005"]);
}

#[test]
fn partial_first_shift_is_sp002() {
    let spec = ProgramSpec {
        scan_len: 8,
        shifts: vec![3, 3],
        final_flush: 8,
        extra_vectors: 0,
        uncaught_at_fallback: 0,
    };
    assert_eq!(deny_codes(&analyze_program(&spec)), vec!["SP002"]);
}

#[test]
fn source_lint_flags_and_allows() {
    let bad = "use std::collections::HashMap;\n";
    let d = lint_source("crates/sim/src/lib.rs", bad);
    assert_eq!(deny_codes(&d), vec!["SRC001"]);

    let allowed = "use std::collections::HashMap; // lint:allow(SRC001)\n";
    assert!(lint_source("crates/sim/src/lib.rs", allowed).is_empty());
}
