//! Pins the abstract interpreter's soundness contract against the concrete
//! DUT: for fully-specified stimulus, every bit `tvs_lint::evaluate_trace`
//! derives equals what a fault-free [`Dut`] replay produces — observed
//! shift streams, primary outputs, the closing flush, and the final chain
//! image — across random circuits, programs, and capture/observe
//! transforms. And the SP006 verdict never contradicts the replay: a
//! program that opens with a full chain load cannot capture unspecified
//! state.

use tvs_ate::Dut;
use tvs_lint::{analyze_trace, evaluate_trace, IrGraph, ProgramTrace, TraceCycle};
use tvs_logic::{BitVec, Logic, Prng};
use tvs_netlist::{GateKind, Netlist, NetlistBuilder};
use tvs_scan::{CaptureTransform, ObserveTransform};

/// Builds a random full-scan netlist: every signal a gate reads is declared
/// before it (acyclic by construction); DFF D-inputs may reference any
/// combinational signal.
fn random_netlist(rng: &mut Prng, tag: usize) -> Netlist {
    let pis = 1 + rng.gen_range(0..3);
    let ffs = 1 + rng.gen_range(0..4);
    let gates = 2 + rng.gen_range(0..9);
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Not,
        GateKind::Buf,
    ];
    let mut b = NetlistBuilder::new(format!("rand{tag}"));
    let mut signals: Vec<String> = Vec::new();
    for i in 0..pis {
        let name = format!("p{i}");
        b.add_input(&name).expect("pi");
        signals.push(name);
    }
    for i in 0..ffs {
        let name = format!("q{i}");
        // D nets are forward references resolved after the gates exist.
        b.add_dff(&name, &format!("g{}", rng.gen_range(0..gates)))
            .expect("dff");
        signals.push(name);
    }
    for i in 0..gates {
        let name = format!("g{i}");
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let pick = |rng: &mut Prng, pool: &[String]| pool[rng.gen_range(0..pool.len())].clone();
        let fanin: Vec<String> = match kind {
            GateKind::Not | GateKind::Buf => vec![pick(rng, &signals)],
            _ => vec![pick(rng, &signals), pick(rng, &signals)],
        };
        let refs: Vec<&str> = fanin.iter().map(String::as_str).collect();
        b.add_gate(&name, kind, &refs).expect("gate");
        signals.push(name);
    }
    for i in 0..gates {
        if rng.gen_range(0..3) == 0 {
            b.mark_output(&format!("g{i}")).expect("output");
        }
    }
    b.build()
        .expect("random netlists are valid by construction")
}

fn random_bits(rng: &mut Prng, len: usize) -> BitVec {
    (0..len).map(|_| rng.next_bool()).collect()
}

fn to_logic(bits: &BitVec) -> Vec<Logic> {
    bits.iter().map(Logic::from).collect()
}

#[test]
fn abstract_interpretation_matches_concrete_replay_on_256_random_programs() {
    let mut rng = Prng::seed_from_u64(0x1A7E_2003);
    for round in 0..256 {
        let netlist = random_netlist(&mut rng, round);
        let l = netlist.dff_count();
        let p = netlist.input_count();
        let capture = if rng.next_bool() {
            CaptureTransform::VerticalXor
        } else {
            CaptureTransform::Plain
        };
        let observe = if rng.next_bool() {
            ObserveTransform::HorizontalXor(1 + rng.gen_range(0..3))
        } else {
            ObserveTransform::Direct
        };

        // Half the programs open with a full chain load (the well-formed
        // shape); half start partial to exercise zero-seeded evaluation.
        let full_load = round % 2 == 0;
        let n_cycles = 1 + rng.gen_range(0..4);
        let cycles: Vec<(BitVec, BitVec)> = (0..n_cycles)
            .map(|i| {
                let shift_len = if i == 0 && full_load {
                    l
                } else {
                    rng.gen_range(0..l + 1)
                };
                (random_bits(&mut rng, p), random_bits(&mut rng, shift_len))
            })
            .collect();
        let final_flush = rng.gen_range(0..l + 1);

        // Concrete: a fault-free replay from the zeroed power-up image.
        let view = netlist.scan_view().expect("scan view");
        let mut dut = Dut::new(&netlist, &view, capture, observe);
        let concrete: Vec<(BitVec, BitVec)> = cycles
            .iter()
            .map(|(pi, scan_in)| dut.clock_cycle(pi, scan_in))
            .collect();
        let concrete_flush = dut.flush(final_flush);

        // Abstract: the same program through the 3-valued interpreter.
        let trace = ProgramTrace {
            capture,
            observe,
            cycles: cycles
                .iter()
                .map(|(pi, scan_in)| TraceCycle {
                    pi: to_logic(pi),
                    scan_in: to_logic(scan_in),
                })
                .collect(),
            final_flush,
        };
        let graph = IrGraph::from(&netlist);
        let eval = evaluate_trace(&graph, &trace).expect("in-shape programs interpret");

        // With fully-specified stimulus the evaluation must be fully
        // specified too, and every bit must equal the replay.
        for (i, ((obs, po), (c_obs, c_po))) in eval.cycles.iter().zip(&concrete).enumerate() {
            assert_eq!(
                obs,
                &to_logic(c_obs),
                "round {round} cycle {i}: observed stream diverged"
            );
            assert_eq!(po, &to_logic(c_po), "round {round} cycle {i}: POs diverged");
        }
        assert_eq!(
            eval.flush,
            to_logic(&concrete_flush),
            "round {round}: flush diverged"
        );
        assert_eq!(
            eval.final_image,
            to_logic(dut.image()),
            "round {round}: final chain image diverged"
        );

        // SP006 must never contradict the replay: after a full opening
        // load every capture is a function of established state only.
        if full_load {
            let diags = analyze_trace(&graph, &trace);
            assert!(
                diags.iter().all(|d| d.code != "SP006"),
                "round {round}: SP006 on a full-load program: {diags:?}"
            );
        }
    }
}
