//! Virtual ATE for the TVS DFT toolkit.
//!
//! The stitching paper closes with the observation that *"seen from the
//! vantage point of an ATE, the proposed scheme is identical to regular scan
//! based application"* — a stitched schedule is just an ordinary sequence of
//! shift and capture cycles with fewer shift clocks. This crate makes that
//! statement executable:
//!
//! * [`TestProgram`] — the tester-side artifact: per-cycle primary-input
//!   data, scan-in bits, expected scan-out stream and expected primary
//!   outputs, plus the closing flush. Programs are built from a
//!   [`StitchReport`](tvs_stitch::StitchReport) or from a conventional
//!   pattern set, and round-trip through a plain-text `.tvp` format.
//! * [`Dut`] — a cycle-accurate device-under-test model: the netlist, its
//!   scan chain state and optionally one injected stuck-at fault.
//! * [`VirtualAte`] — executes a program against a DUT pin by pin and
//!   reports the first mismatch ([`TestOutcome`]).
//! * [`diagnose`] — syndrome-based fault diagnosis: because no MISR
//!   compacts the output stream, the per-cycle failure log pinpoints
//!   candidate faults directly (the paper's no-aliasing argument).
//!
//! The crate doubles as the strongest validation artifact of the whole
//! reproduction: integration tests execute generated stitched programs
//! against every collapsed fault and assert that exactly the faults the
//! engine claims caught make the program fail.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnose;
mod dut;
mod program;
mod tester;

pub use diagnose::{diagnose, Diagnosis};
pub use dut::Dut;
pub use program::{ParseProgramError, ScanCycle, TestProgram};
pub use tester::{FailKind, TestOutcome, VirtualAte};
