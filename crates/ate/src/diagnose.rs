//! Syndrome-based fault diagnosis.
//!
//! The paper argues that avoiding a MISR avoids both aliasing *and* "the
//! possible loss of information for fault diagnosis": every failing bit is
//! observed at a known cycle and position. This module exploits exactly
//! that: each candidate fault's full failure log under the program is its
//! *syndrome*; an observed log from a failing part is matched against the
//! candidate syndromes by Jaccard similarity.

use tvs_netlist::Netlist;

use tvs_fault::Fault;

use crate::{Dut, FailKind, TestProgram, VirtualAte};

/// One ranked diagnosis candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The candidate fault.
    pub fault: Fault,
    /// Jaccard similarity between the candidate's syndrome and the
    /// observed failure log (1.0 = identical).
    pub score: f64,
}

/// Ranks `candidates` by how well their simulated failure syndromes match
/// an `observed` failure log, best first.
///
/// Candidates whose syndrome is empty (they would pass the program) score
/// 0 unless the observed log is also empty. Ties preserve candidate order,
/// so equivalent faults stay adjacent.
///
/// # Examples
///
/// ```
/// use tvs_ate::{diagnose, Dut, TestProgram, VirtualAte};
/// use tvs_fault::{Fault, FaultList, StuckAt};
/// use tvs_stitch::{StitchConfig, StitchEngine};
///
/// let netlist = tvs_circuits::fig1();
/// let engine = StitchEngine::new(&netlist)?;
/// let config = StitchConfig::default();
/// let report = engine.run(&config)?;
/// let program = TestProgram::from_report(&netlist, &report, &config);
///
/// // A part fails on the tester; log its failing bits.
/// let truth = Fault::stem(netlist.find("D").unwrap(), StuckAt::Zero);
/// let view = netlist.scan_view()?;
/// let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);
/// dut.inject(truth);
/// let observed = VirtualAte::failure_log(&program, &mut dut);
///
/// let ranked = diagnose(&netlist, &program, &observed, FaultList::collapsed(&netlist).faults());
/// // The top candidate matches the syndrome perfectly. (It may be an
/// // *equivalent* fault — here D/0 collapses with the a→D branch, so the
/// // representative a/0 is reported.)
/// assert!((ranked[0].score - 1.0).abs() < 1e-12);
/// assert_eq!(ranked[0].fault.display_in(&netlist), "a/0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn diagnose(
    netlist: &Netlist,
    program: &TestProgram,
    observed: &[(usize, FailKind, usize)],
    candidates: &[Fault],
) -> Vec<Diagnosis> {
    // Documented precondition: the netlist is the one the program targets,
    // whose scan view was already built once. lint:allow(SRC005)
    let view = netlist.scan_view().expect("diagnosable circuits are valid");
    let mut dut = Dut::new(netlist, &view, program.capture, program.observe);
    let observed_set: std::collections::BTreeSet<_> = observed.iter().copied().collect();

    let mut ranked: Vec<Diagnosis> = candidates
        .iter()
        .map(|&fault| {
            dut.inject(fault);
            let syndrome = VirtualAte::failure_log(program, &mut dut);
            let syndrome_set: std::collections::BTreeSet<_> = syndrome.into_iter().collect();
            let inter = observed_set.intersection(&syndrome_set).count();
            let union = observed_set.union(&syndrome_set).count();
            let score = if union == 0 {
                1.0 // both empty: a passing part "matches" a passing candidate
            } else {
                inter as f64 / union as f64
            };
            Diagnosis { fault, score }
        })
        .collect();
    dut.heal();
    ranked.sort_by(|a, b| b.score.total_cmp(&a.score));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::{FaultList, StuckAt};
    use tvs_netlist::{GateKind, NetlistBuilder};
    use tvs_stitch::{StitchConfig, StitchEngine};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn every_caught_fault_is_self_diagnosed() {
        let netlist = fig1();
        let engine = StitchEngine::new(&netlist).unwrap();
        let config = StitchConfig::default();
        let report = engine.run(&config).unwrap();
        let program = crate::TestProgram::from_report(&netlist, &report, &config);
        let faults = FaultList::collapsed(&netlist);
        let view = netlist.scan_view().unwrap();
        let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);

        for &truth in faults.faults() {
            dut.inject(truth);
            let observed = VirtualAte::failure_log(&program, &mut dut);
            if observed.is_empty() {
                continue; // redundant fault: passes, nothing to diagnose
            }
            let ranked = diagnose(&netlist, &program, &observed, faults.faults());
            let top: Vec<_> = ranked
                .iter()
                .take_while(|d| (d.score - ranked[0].score).abs() < 1e-12)
                .map(|d| d.fault)
                .collect();
            assert!(
                top.contains(&truth),
                "{} not among top candidates {:?}",
                truth.display_in(&netlist),
                top.iter()
                    .map(|f| f.display_in(&netlist))
                    .collect::<Vec<_>>()
            );
            assert!(
                (ranked[0].score - 1.0).abs() < 1e-12,
                "self-syndrome must match fully"
            );
        }
    }

    #[test]
    fn passing_part_matches_only_passing_candidates() {
        let netlist = fig1();
        let engine = StitchEngine::new(&netlist).unwrap();
        let config = StitchConfig::default();
        let report = engine.run(&config).unwrap();
        let program = crate::TestProgram::from_report(&netlist, &report, &config);
        let faults = FaultList::collapsed(&netlist);

        // Empty observed log = the part passed; only the redundant fault
        // (whose syndrome is also empty) should score 1.
        let ranked = diagnose(&netlist, &program, &[], faults.faults());
        let perfect: Vec<String> = ranked
            .iter()
            .filter(|d| (d.score - 1.0).abs() < 1e-12)
            .map(|d| d.fault.display_in(&netlist))
            .collect();
        assert_eq!(perfect, vec!["E-F/1".to_string()]);
    }

    #[test]
    fn distinct_faults_get_distinct_syndromes_mostly() {
        let netlist = fig1();
        let engine = StitchEngine::new(&netlist).unwrap();
        let config = StitchConfig::default();
        let report = engine.run(&config).unwrap();
        let program = crate::TestProgram::from_report(&netlist, &report, &config);
        let view = netlist.scan_view().unwrap();
        let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);

        let a = tvs_fault::Fault::stem(netlist.find("D").unwrap(), StuckAt::Zero);
        let b = tvs_fault::Fault::stem(netlist.find("E").unwrap(), StuckAt::Zero);
        dut.inject(a);
        let sa = VirtualAte::failure_log(&program, &mut dut);
        dut.inject(b);
        let sb = VirtualAte::failure_log(&program, &mut dut);
        assert_ne!(
            sa, sb,
            "distinguishable faults must have distinct syndromes"
        );
    }
}
