//! Program execution and pass/fail comparison.

use std::fmt;

use crate::{Dut, TestProgram};

/// Which comparison caught a mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailKind {
    /// A bit of the scan-out stream during a shift.
    ShiftStream,
    /// A primary output after a capture.
    PrimaryOutput,
    /// A bit of the closing flush.
    Flush,
}

impl fmt::Display for FailKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FailKind::ShiftStream => "scan-out stream",
            FailKind::PrimaryOutput => "primary output",
            FailKind::Flush => "closing flush",
        })
    }
}

/// Outcome of executing a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    /// Every observed bit matched the expectations.
    Pass,
    /// First mismatch found.
    Fail {
        /// 0-based cycle index (`cycles.len()` denotes the closing flush).
        cycle: usize,
        /// Where the mismatch was seen.
        kind: FailKind,
        /// Bit position within the mismatching field.
        bit: usize,
    },
}

impl TestOutcome {
    /// Returns `true` on [`TestOutcome::Pass`].
    pub fn passed(&self) -> bool {
        matches!(self, TestOutcome::Pass)
    }
}

/// Executes [`TestProgram`]s against [`Dut`]s.
///
/// # Examples
///
/// See [`TestProgram`] for an end-to-end example.
#[derive(Debug, Clone, Copy, Default)]
pub struct VirtualAte;

impl VirtualAte {
    /// Runs the program from power-up (the DUT is reset first) and stops at
    /// the first mismatch — production-tester semantics.
    pub fn execute(program: &TestProgram, dut: &mut Dut<'_>) -> TestOutcome {
        dut.reset();
        for (i, cycle) in program.cycles.iter().enumerate() {
            let (observed, po) = dut.clock_cycle(&cycle.pi, &cycle.scan_in);
            if let Some(bit) = first_diff(&observed, &cycle.expected_observed) {
                return TestOutcome::Fail {
                    cycle: i,
                    kind: FailKind::ShiftStream,
                    bit,
                };
            }
            if let Some(bit) = first_diff(&po, &cycle.expected_po) {
                return TestOutcome::Fail {
                    cycle: i,
                    kind: FailKind::PrimaryOutput,
                    bit,
                };
            }
        }
        let flush = dut.flush(program.expected_flush.len());
        if let Some(bit) = first_diff(&flush, &program.expected_flush) {
            return TestOutcome::Fail {
                cycle: program.cycles.len(),
                kind: FailKind::Flush,
                bit,
            };
        }
        TestOutcome::Pass
    }

    /// Runs the whole program regardless of mismatches and returns every
    /// failing observation — the syndrome used for diagnosis.
    pub fn failure_log(program: &TestProgram, dut: &mut Dut<'_>) -> Vec<(usize, FailKind, usize)> {
        let mut log = Vec::new();
        dut.reset();
        for (i, cycle) in program.cycles.iter().enumerate() {
            let (observed, po) = dut.clock_cycle(&cycle.pi, &cycle.scan_in);
            for bit in all_diffs(&observed, &cycle.expected_observed) {
                log.push((i, FailKind::ShiftStream, bit));
            }
            for bit in all_diffs(&po, &cycle.expected_po) {
                log.push((i, FailKind::PrimaryOutput, bit));
            }
        }
        let flush = dut.flush(program.expected_flush.len());
        for bit in all_diffs(&flush, &program.expected_flush) {
            log.push((program.cycles.len(), FailKind::Flush, bit));
        }
        log
    }
}

fn first_diff(got: &tvs_logic::BitVec, expect: &tvs_logic::BitVec) -> Option<usize> {
    debug_assert_eq!(got.len(), expect.len());
    (0..got.len().min(expect.len())).find(|&i| got.get(i) != expect.get(i))
}

fn all_diffs<'v>(
    got: &'v tvs_logic::BitVec,
    expect: &'v tvs_logic::BitVec,
) -> impl Iterator<Item = usize> + 'v {
    (0..got.len().min(expect.len())).filter(|&i| got.get(i) != expect.get(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::{Fault, StuckAt};
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> tvs_netlist::Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fault_free_program_passes_and_faulty_fails() {
        use tvs_stitch::{StitchConfig, StitchEngine};
        let netlist = fig1();
        let engine = StitchEngine::new(&netlist).unwrap();
        let config = StitchConfig::default();
        let report = engine.run(&config).unwrap();
        let program = crate::TestProgram::from_report(&netlist, &report, &config);

        let view = netlist.scan_view().unwrap();
        let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);
        assert!(VirtualAte::execute(&program, &mut dut).passed());

        dut.inject(Fault::stem(netlist.find("F").unwrap(), StuckAt::Zero));
        let outcome = VirtualAte::execute(&program, &mut dut);
        assert!(!outcome.passed(), "F/0 must be screened: {outcome:?}");
    }

    #[test]
    fn failure_log_is_superset_of_first_fail() {
        use tvs_stitch::{StitchConfig, StitchEngine};
        let netlist = fig1();
        let engine = StitchEngine::new(&netlist).unwrap();
        let config = StitchConfig::default();
        let report = engine.run(&config).unwrap();
        let program = crate::TestProgram::from_report(&netlist, &report, &config);
        let view = netlist.scan_view().unwrap();
        let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);
        dut.inject(Fault::stem(netlist.find("D").unwrap(), StuckAt::One));
        let log = VirtualAte::failure_log(&program, &mut dut);
        match VirtualAte::execute(&program, &mut dut) {
            TestOutcome::Fail { cycle, kind, bit } => {
                assert_eq!(log.first(), Some(&(cycle, kind, bit)));
            }
            TestOutcome::Pass => assert!(log.is_empty()),
        }
    }
}
