//! The tester-side test program and its `.tvp` text format.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use tvs_logic::BitVec;
use tvs_netlist::Netlist;
use tvs_scan::{CaptureTransform, ObserveTransform};
use tvs_stitch::{StitchConfig, StitchReport};

use crate::Dut;

/// One tester cycle: stimulus plus the expected observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanCycle {
    /// Primary-input values applied during this cycle.
    pub pi: BitVec,
    /// Scan-in bits in entry order (first bit enters first and ends up
    /// deepest).
    pub scan_in: BitVec,
    /// Expected scan-out stream emitted while `scan_in` shifts in.
    pub expected_observed: BitVec,
    /// Expected primary-output values after the capture clock.
    pub expected_po: BitVec,
}

/// A complete scan test program: stimuli and expected responses, exactly
/// what a tester stores.
///
/// From the ATE's point of view a stitched program is ordinary scan
/// application with fewer shift clocks per cycle — the paper's closing
/// observation, which this type makes concrete.
///
/// # Examples
///
/// ```
/// use tvs_ate::{TestProgram, VirtualAte, Dut, TestOutcome};
/// use tvs_stitch::{StitchConfig, StitchEngine};
///
/// let netlist = tvs_circuits::fig1();
/// let engine = StitchEngine::new(&netlist)?;
/// let config = StitchConfig::default();
/// let report = engine.run(&config)?;
/// let program = TestProgram::from_report(&netlist, &report, &config);
///
/// let view = netlist.scan_view()?;
/// let mut dut = Dut::new(&netlist, &view, config.capture, config.observe);
/// assert_eq!(VirtualAte::execute(&program, &mut dut), TestOutcome::Pass);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestProgram {
    /// Program name (usually the circuit name).
    pub name: String,
    /// Scan chain length.
    pub scan_len: usize,
    /// Primary input count.
    pub pi_count: usize,
    /// Primary output count.
    pub po_count: usize,
    /// Capture transform the DUT is built with.
    pub capture: CaptureTransform,
    /// Observation transform the DUT is built with.
    pub observe: ObserveTransform,
    /// The tester cycles, in application order.
    pub cycles: Vec<ScanCycle>,
    /// Expected stream of the closing flush.
    pub expected_flush: BitVec,
}

impl TestProgram {
    /// Builds the program realizing a stitched run: the report's cycles,
    /// then its fallback vectors as conventional full-shift cycles, then
    /// the closing flush. Expected values are recorded by executing the
    /// stimuli against a fault-free [`Dut`].
    ///
    /// # Panics
    ///
    /// Panics if the report does not belong to `netlist`.
    pub fn from_report(netlist: &Netlist, report: &StitchReport, config: &StitchConfig) -> Self {
        let p = netlist.input_count();
        let l = netlist.dff_count();
        let mut cycles = Vec::with_capacity(report.cycles.len() + report.extra_vectors.len());
        for (record, &k) in report.cycles.iter().zip(&report.shifts) {
            cycles.push(ScanCycle {
                pi: record.vector.slice(0..p),
                scan_in: record.vector.rev_slice(p..p + k),
                expected_observed: BitVec::new(),
                expected_po: BitVec::new(),
            });
        }
        // Mid-program flush: expose what the last stitched response left in
        // the chain before switching to conventional vectors.
        if !report.extra_vectors.is_empty() && report.final_flush > 0 {
            cycles.push(ScanCycle {
                pi: BitVec::zeros(p),
                scan_in: BitVec::zeros(report.final_flush),
                expected_observed: BitVec::new(),
                expected_po: BitVec::new(),
            });
        }
        for vector in &report.extra_vectors {
            cycles.push(ScanCycle {
                pi: vector.slice(0..p),
                scan_in: vector.rev_slice(p..p + l),
                expected_observed: BitVec::new(),
                expected_po: BitVec::new(),
            });
        }
        let mut program = TestProgram {
            name: netlist.name().to_owned(),
            scan_len: l,
            pi_count: p,
            po_count: netlist.output_count(),
            capture: config.capture,
            observe: config.observe,
            cycles,
            expected_flush: BitVec::zeros(if report.extra_vectors.is_empty() {
                report.final_flush
            } else {
                l
            }),
        };
        program.record_expectations(netlist);
        program
    }

    /// Builds a conventional full-shift program from a pattern set
    /// (vectors over PIs-then-chain, as produced by
    /// `tvs_atpg::generate_tests`).
    pub fn from_patterns(netlist: &Netlist, patterns: &[BitVec]) -> Self {
        let p = netlist.input_count();
        let l = netlist.dff_count();
        let cycles = patterns
            .iter()
            .map(|v| ScanCycle {
                pi: v.slice(0..p),
                scan_in: v.rev_slice(p..p + l),
                expected_observed: BitVec::new(),
                expected_po: BitVec::new(),
            })
            .collect();
        let mut program = TestProgram {
            name: netlist.name().to_owned(),
            scan_len: l,
            pi_count: p,
            po_count: netlist.output_count(),
            capture: CaptureTransform::Plain,
            observe: ObserveTransform::Direct,
            cycles,
            expected_flush: BitVec::zeros(l),
        };
        program.record_expectations(netlist);
        program
    }

    /// (Re)records all expected observations by executing the stimuli
    /// against a fault-free DUT.
    pub fn record_expectations(&mut self, netlist: &Netlist) {
        // Documented precondition: `netlist` is the circuit this program
        // was generated from, whose scan view was already built once.
        // lint:allow(SRC005)
        let view = netlist.scan_view().expect("program circuits are valid");
        let mut dut = Dut::new(netlist, &view, self.capture, self.observe);
        for cycle in &mut self.cycles {
            let (observed, po) = dut.clock_cycle(&cycle.pi, &cycle.scan_in);
            cycle.expected_observed = observed;
            cycle.expected_po = po;
        }
        self.expected_flush = dut.flush(self.expected_flush.len());
    }

    /// Total shift clocks the program costs (the paper's time measure).
    pub fn shift_cycles(&self) -> usize {
        self.cycles.iter().map(|c| c.scan_in.len()).sum::<usize>() + self.expected_flush.len()
    }

    /// Serializes to the `.tvp` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# tvs test program v1");
        let _ = writeln!(out, "name {}", self.name);
        let _ = writeln!(
            out,
            "interface pi={} po={} scan={}",
            self.pi_count, self.po_count, self.scan_len
        );
        let _ = writeln!(
            out,
            "capture {}",
            match self.capture {
                CaptureTransform::Plain => "plain".to_owned(),
                CaptureTransform::VerticalXor => "vxor".to_owned(),
            }
        );
        let _ = writeln!(
            out,
            "observe {}",
            match self.observe {
                ObserveTransform::Direct => "direct".to_owned(),
                ObserveTransform::HorizontalXor(g) => format!("hxor:{g}"),
            }
        );
        for c in &self.cycles {
            let _ = writeln!(
                out,
                "cycle {} {} {} {}",
                dash(&c.pi),
                dash(&c.scan_in),
                dash(&c.expected_observed),
                dash(&c.expected_po)
            );
        }
        let _ = writeln!(out, "flush {}", dash(&self.expected_flush));
        out
    }

    /// Parses the `.tvp` text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseProgramError`] on any malformed line.
    pub fn parse(text: &str) -> Result<TestProgram, ParseProgramError> {
        let err = |line: usize, msg: &str| ParseProgramError {
            line,
            message: msg.to_owned(),
        };
        let mut name = String::new();
        let mut interface = None;
        let mut capture = CaptureTransform::Plain;
        let mut observe = ObserveTransform::Direct;
        let mut cycles = Vec::new();
        let mut flush = None;

        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("name") => name = parts.next().unwrap_or("").to_owned(),
                Some("interface") => {
                    let mut pi = None;
                    let mut po = None;
                    let mut scan = None;
                    for field in parts {
                        let (k, v) = field
                            .split_once('=')
                            .ok_or_else(|| err(no + 1, "expected key=value"))?;
                        let v: usize =
                            v.parse().map_err(|_| err(no + 1, "bad interface number"))?;
                        match k {
                            "pi" => pi = Some(v),
                            "po" => po = Some(v),
                            "scan" => scan = Some(v),
                            _ => return Err(err(no + 1, "unknown interface key")),
                        }
                    }
                    interface = Some((
                        pi.ok_or_else(|| err(no + 1, "missing pi="))?,
                        po.ok_or_else(|| err(no + 1, "missing po="))?,
                        scan.ok_or_else(|| err(no + 1, "missing scan="))?,
                    ));
                }
                Some("capture") => {
                    capture = match parts.next() {
                        Some("plain") => CaptureTransform::Plain,
                        Some("vxor") => CaptureTransform::VerticalXor,
                        _ => return Err(err(no + 1, "unknown capture transform")),
                    }
                }
                Some("observe") => {
                    observe = match parts.next() {
                        Some("direct") => ObserveTransform::Direct,
                        Some(s) if s.starts_with("hxor:") => {
                            let g = s[5..]
                                .parse()
                                .map_err(|_| err(no + 1, "bad hxor tap count"))?;
                            ObserveTransform::HorizontalXor(g)
                        }
                        _ => return Err(err(no + 1, "unknown observe transform")),
                    }
                }
                Some("cycle") => {
                    let mut next_bits = || -> Result<BitVec, ParseProgramError> {
                        undash(parts.next().ok_or_else(|| err(no + 1, "missing field"))?)
                            .ok_or_else(|| err(no + 1, "bad bit string"))
                    };
                    cycles.push(ScanCycle {
                        pi: next_bits()?,
                        scan_in: next_bits()?,
                        expected_observed: next_bits()?,
                        expected_po: next_bits()?,
                    });
                }
                Some("flush") => {
                    flush = Some(
                        undash(parts.next().unwrap_or("-"))
                            .ok_or_else(|| err(no + 1, "bad flush bits"))?,
                    );
                }
                Some(other) => return Err(err(no + 1, &format!("unknown directive {other:?}"))),
                None => unreachable!("empty lines were skipped"),
            }
        }
        let (pi_count, po_count, scan_len) =
            interface.ok_or_else(|| err(0, "missing interface line"))?;
        Ok(TestProgram {
            name,
            scan_len,
            pi_count,
            po_count,
            capture,
            observe,
            cycles,
            expected_flush: flush.unwrap_or_default(),
        })
    }
}

/// Error from [`TestProgram::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line number (0 for file-level problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseProgramError {}

fn dash(bits: &BitVec) -> String {
    if bits.is_empty() {
        "-".to_owned()
    } else {
        bits.to_string()
    }
}

fn undash(s: &str) -> Option<BitVec> {
    if s == "-" {
        return Some(BitVec::new());
    }
    let mut out = BitVec::new();
    for c in s.chars() {
        match c {
            '0' => out.push(false),
            '1' => out.push(true),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TestProgram {
        TestProgram {
            name: "t".into(),
            scan_len: 3,
            pi_count: 1,
            po_count: 2,
            capture: CaptureTransform::VerticalXor,
            observe: ObserveTransform::HorizontalXor(3),
            cycles: vec![ScanCycle {
                pi: BitVec::from_bools([true]),
                scan_in: BitVec::from_bools([false, true]),
                expected_observed: BitVec::from_bools([true, true]),
                expected_po: BitVec::from_bools([false, true]),
            }],
            expected_flush: BitVec::from_bools([true, false]),
        }
    }

    #[test]
    fn text_round_trip() {
        let p = sample();
        let text = p.to_text();
        let back = TestProgram::parse(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn empty_fields_round_trip() {
        let mut p = sample();
        p.cycles[0].pi = BitVec::new();
        p.cycles[0].expected_po = BitVec::new();
        p.pi_count = 0;
        p.po_count = 0;
        let back = TestProgram::parse(&p.to_text()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TestProgram::parse("interface pi=1 po=1").is_err());
        assert!(TestProgram::parse("interface pi=1 po=1 scan=2\nfrobnicate").is_err());
        assert!(TestProgram::parse("interface pi=1 po=1 scan=2\ncycle 1 0 2 0").is_err());
        assert!(TestProgram::parse("name x").is_err(), "missing interface");
    }

    #[test]
    fn shift_cycles_counts_stimulus_and_flush() {
        let p = sample();
        assert_eq!(p.shift_cycles(), 2 + 2);
    }
}
