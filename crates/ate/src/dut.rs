//! The device-under-test model.

use tvs_logic::BitVec;
use tvs_netlist::{Netlist, ScanView};
use tvs_scan::{CaptureTransform, ObserveTransform, ScanChain};
use tvs_sim::{Injection, ParallelSim};

use tvs_fault::Fault;

/// A cycle-accurate device-under-test: combinational core, scan chain state
/// and optionally one injected stuck-at fault.
///
/// # Examples
///
/// ```
/// use tvs_ate::Dut;
/// use tvs_logic::BitVec;
/// use tvs_netlist::{GateKind, NetlistBuilder};
/// use tvs_scan::{CaptureTransform, ObserveTransform};
///
/// let mut b = NetlistBuilder::new("t");
/// b.add_dff("q", "d")?;
/// b.add_gate("d", GateKind::Not, &["q"])?;
/// let netlist = b.build()?;
/// let view = netlist.scan_view()?;
/// let mut dut = Dut::new(&netlist, &view, CaptureTransform::Plain, ObserveTransform::Direct);
/// let (observed, _po) = dut.clock_cycle(&BitVec::new(), &BitVec::from_bools([true]));
/// assert_eq!(observed.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Dut<'a> {
    view: &'a ScanView,
    chain: ScanChain,
    sim: ParallelSim<'a>,
    capture: CaptureTransform,
    observe: ObserveTransform,
    image: BitVec,
    fault: Option<Fault>,
}

impl<'a> Dut<'a> {
    /// Creates a fault-free DUT with an all-zero power-up chain image.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has no flip-flops (nothing to scan).
    pub fn new(
        netlist: &'a Netlist,
        view: &'a ScanView,
        capture: CaptureTransform,
        observe: ObserveTransform,
    ) -> Self {
        assert!(netlist.dff_count() > 0, "a scan DUT needs a scan chain");
        Dut {
            view,
            chain: ScanChain::new(netlist.dff_count()),
            sim: ParallelSim::new(netlist, view),
            capture,
            observe,
            image: BitVec::zeros(netlist.dff_count()),
            fault: None,
        }
    }

    /// Injects a stuck-at fault (replacing any previous one).
    pub fn inject(&mut self, fault: Fault) {
        self.fault = Some(fault);
    }

    /// Removes any injected fault.
    pub fn heal(&mut self) {
        self.fault = None;
    }

    /// The current chain image (for inspection/tests).
    pub fn image(&self) -> &BitVec {
        &self.image
    }

    /// Resets the chain image to all zeros (power-up state).
    pub fn reset(&mut self) {
        self.image = BitVec::zeros(self.chain.length());
    }

    /// Runs one tester cycle: shift `scan_in.len()` bits (entry order)
    /// while emitting the observed stream, then apply the primary inputs,
    /// pulse the capture clock and store the (possibly transformed)
    /// response back into the chain.
    ///
    /// Returns `(observed stream, primary outputs)`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len()` differs from the circuit's primary input count
    /// or `scan_in` is longer than the chain.
    pub fn clock_cycle(&mut self, pi: &BitVec, scan_in: &BitVec) -> (BitVec, BitVec) {
        assert_eq!(pi.len(), self.view.pi_count(), "primary input width");
        let shifted = self.chain.shift(&self.image, scan_in, self.observe);

        // Apply: PIs + chain contents drive the combinational core. A
        // stuck-at on a scan cell's output corrupts what the core sees; a
        // stuck-at on its D pin corrupts what is captured — both are
        // handled by the injection mechanism of the simulator.
        let mut words: Vec<u64> = Vec::with_capacity(self.view.input_count());
        words.extend(pi.iter().map(u64::from));
        words.extend(shifted.new_image.iter().map(u64::from));
        let injections: Vec<Injection> = self.fault.iter().map(|f| f.injection(1)).collect();
        self.sim.eval(&words, &injections);
        let out = self.sim.output_slot(0);

        let po: BitVec = (0..self.view.po_count()).map(|o| out.get(o)).collect();
        let resp: BitVec = (self.view.po_count()..self.view.output_count())
            .map(|o| out.get(o))
            .collect();
        self.image = self.capture.capture(&shifted.new_image, &resp);
        (shifted.observed, po)
    }

    /// Shifts out `len` bits with zero fill and no capture (the closing
    /// flush).
    pub fn flush(&mut self, len: usize) -> BitVec {
        let shifted = self
            .chain
            .shift(&self.image, &BitVec::zeros(len), self.observe);
        self.image = shifted.new_image;
        shifted.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvs_fault::StuckAt;
    use tvs_netlist::{GateKind, NetlistBuilder};

    fn fig1() -> Netlist {
        let mut b = NetlistBuilder::new("fig1");
        b.add_dff("a", "F").unwrap();
        b.add_dff("b", "E").unwrap();
        b.add_dff("c", "D").unwrap();
        b.add_gate("D", GateKind::And, &["a", "b"]).unwrap();
        b.add_gate("E", GateKind::Or, &["b", "c"]).unwrap();
        b.add_gate("F", GateKind::And, &["D", "E"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_cycle_matches_paper_example() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut dut = Dut::new(&n, &v, CaptureTransform::Plain, ObserveTransform::Direct);
        // Shift in 110 (cell a first -> entry order is reversed: 0,1,1).
        let (_, _) = dut.clock_cycle(&BitVec::new(), &BitVec::from_bools([false, true, true]));
        assert_eq!(dut.image().to_string(), "111", "captured response");
        // Next stitched cycle: shift 2 zeros; observed = cells c, b of 111.
        let (obs, _) = dut.clock_cycle(&BitVec::new(), &BitVec::from_bools([false, false]));
        assert_eq!(obs.to_string(), "11");
        assert_eq!(dut.image().to_string(), "010");
    }

    #[test]
    fn injected_fault_changes_behaviour() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut dut = Dut::new(&n, &v, CaptureTransform::Plain, ObserveTransform::Direct);
        let mut faulty = Dut::new(&n, &v, CaptureTransform::Plain, ObserveTransform::Direct);
        faulty.inject(Fault::stem(n.find("F").unwrap(), StuckAt::Zero));
        let stim = BitVec::from_bools([false, true, true]);
        dut.clock_cycle(&BitVec::new(), &stim);
        faulty.clock_cycle(&BitVec::new(), &stim);
        assert_ne!(dut.image(), faulty.image());
        faulty.heal();
        faulty.reset();
        dut.reset();
        dut.clock_cycle(&BitVec::new(), &stim);
        faulty.clock_cycle(&BitVec::new(), &stim);
        assert_eq!(dut.image(), faulty.image());
    }

    #[test]
    fn flush_empties_observably() {
        let n = fig1();
        let v = n.scan_view().unwrap();
        let mut dut = Dut::new(&n, &v, CaptureTransform::Plain, ObserveTransform::Direct);
        dut.clock_cycle(&BitVec::new(), &BitVec::from_bools([false, true, true]));
        let obs = dut.flush(3);
        assert_eq!(obs.to_string(), "111");
        assert_eq!(dut.image().to_string(), "000");
    }
}
