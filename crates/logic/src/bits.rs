//! A compact growable bit vector.

use std::fmt;

/// A growable, compact vector of bits backed by `u64` words.
///
/// Used throughout the toolkit for fully specified stimuli, captured
/// responses and scan-chain images, where a `Vec<bool>` would waste memory on
/// large circuits (s38417-class profiles carry 1600+ scan cells per image and
/// the stitching engine keeps one image per hidden fault).
///
/// # Examples
///
/// ```
/// use tvs_logic::BitVec;
///
/// let mut bv = BitVec::zeros(70);
/// bv.set(69, true);
/// assert!(bv.get(69));
/// assert_eq!(bv.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector from an iterator of booleans.
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bv = BitVec::new();
        for b in iter {
            bv.push(b);
        }
        bv
    }

    /// Number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no bits are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Writes the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the bits, in index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { bv: self, pos: 0 }
    }

    /// XORs another bit vector into this one, elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch in xor_with");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns `true` if any bit in `range` differs between `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or the range exceeds the length.
    pub fn differs_in(&self, other: &BitVec, range: std::ops::Range<usize>) -> bool {
        assert_eq!(self.len, other.len, "BitVec length mismatch in differs_in");
        assert!(range.end <= self.len, "range out of bounds");
        range.into_iter().any(|i| self.get(i) != other.get(i))
    }

    /// Extracts `range` as a new bit vector, preserving bit order.
    ///
    /// The canonical slicing helper for the toolkit's stimulus/response
    /// plumbing (splitting a test vector into its PI and scan-chain parts,
    /// or a response into PO and captured-chain parts).
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.end <= self.len, "slice range out of bounds");
        range.map(|i| self.get(i)).collect()
    }

    /// Extracts `range` with the bit order reversed: the *last* bit of the
    /// range comes out first.
    ///
    /// This is the scan-in ordering transform: the content destined for
    /// chain cells `0..k` must enter the chain with the bit for cell `k-1`
    /// first, i.e. `rev_slice(offset..offset + k)` of the full vector.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > len()`.
    pub fn rev_slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.end <= self.len, "rev_slice range out of bounds");
        range.rev().map(|i| self.get(i)).collect()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bools(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

/// Iterator over the bits of a [`BitVec`], produced by [`BitVec::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bv: &'a BitVec,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.pos < self.bv.len() {
            let b = self.bv.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bv.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prng;

    #[test]
    fn zeros_and_set_get() {
        let mut bv = BitVec::zeros(130);
        assert_eq!(bv.len(), 130);
        assert_eq!(bv.count_ones(), 0);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert!(!bv.get(1) && !bv.get(63) && !bv.get(128));
        assert_eq!(bv.count_ones(), 3);
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    fn push_across_word_boundary() {
        let mut bv = BitVec::new();
        for i in 0..200 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 200);
        for i in 0..200 {
            assert_eq!(bv.get(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn xor_with_flips() {
        let a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([true, true, false, false]);
        let mut c = a.clone();
        c.xor_with(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![false, true, true, false]);
    }

    #[test]
    fn differs_in_range_only() {
        let a = BitVec::from_bools([true, false, true, false]);
        let b = BitVec::from_bools([true, true, true, false]);
        assert!(!a.differs_in(&b, 0..1));
        assert!(a.differs_in(&b, 0..2));
        assert!(a.differs_in(&b, 1..2));
        assert!(!a.differs_in(&b, 2..4));
    }

    #[test]
    fn slice_extracts_subranges() {
        let a = BitVec::from_bools([true, false, true, true, false]);
        assert_eq!(a.slice(0..5), a);
        assert_eq!(a.slice(1..4).to_string(), "011");
        assert_eq!(a.slice(2..2).len(), 0);
        // Across a word boundary.
        let mut big = BitVec::zeros(130);
        big.set(63, true);
        big.set(64, true);
        assert_eq!(big.slice(62..66).to_string(), "0110");
    }

    #[test]
    fn rev_slice_reverses_bit_order() {
        let a = BitVec::from_bools([true, false, true, true, false]);
        assert_eq!(a.rev_slice(0..3).to_string(), "101");
        assert_eq!(a.rev_slice(1..4).to_string(), "110");
        assert_eq!(a.rev_slice(0..0).len(), 0);
        // rev_slice is slice followed by reversal.
        let fwd: Vec<bool> = a.slice(1..5).iter().collect();
        let rev: Vec<bool> = a.rev_slice(1..5).iter().collect();
        assert_eq!(rev, fwd.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_range_panics() {
        BitVec::zeros(4).slice(2..5);
    }

    #[test]
    fn display_round_trip() {
        let a = BitVec::from_bools([true, false, true]);
        assert_eq!(a.to_string(), "101");
        assert_eq!(format!("{a:?}"), "BitVec[101]");
    }

    #[test]
    fn from_bools_round_trips() {
        let mut rng = Prng::seed_from_u64(0xB175);
        for _ in 0..128 {
            let bits: Vec<bool> = (0..rng.gen_range(0..300))
                .map(|_| rng.next_bool())
                .collect();
            let bv: BitVec = bits.iter().copied().collect();
            assert_eq!(bv.len(), bits.len());
            let back: Vec<bool> = bv.iter().collect();
            assert_eq!(back, bits);
            assert_eq!(bv.count_ones(), bits.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn xor_is_involutive() {
        let mut rng = Prng::seed_from_u64(0xB176);
        for _ in 0..128 {
            let bits: Vec<bool> = (0..rng.gen_range(1..200))
                .map(|_| rng.next_bool())
                .collect();
            let a: BitVec = bits.iter().copied().collect();
            let b: BitVec = bits.iter().map(|b| !b).collect();
            let mut c = a.clone();
            c.xor_with(&b);
            c.xor_with(&b);
            assert_eq!(c, a);
        }
    }
}
