//! Three-valued (Kleene) logic values.

use std::error::Error;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};
use std::str::FromStr;

/// A three-valued logic value: `0`, `1` or `X` (unknown / unspecified).
///
/// The `X` value plays a double role throughout the toolkit:
///
/// * during simulation it is the *unknown* value of Kleene logic
///   (`0 AND X = 0`, `1 AND X = X`, …);
/// * in a test cube it is a *don't-care* position that a fill strategy or a
///   later merge is free to specify.
///
/// # Examples
///
/// ```
/// use tvs_logic::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(!Logic::X, Logic::X);
/// assert_eq!(Logic::One ^ Logic::Zero, Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown / don't-care.
    #[default]
    X,
}

impl Logic {
    /// All three values, in a fixed order (useful for exhaustive tests).
    pub const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    /// Returns `true` if the value is `0` or `1` (not `X`).
    ///
    /// ```
    /// use tvs_logic::Logic;
    /// assert!(Logic::Zero.is_specified());
    /// assert!(!Logic::X.is_specified());
    /// ```
    #[inline]
    pub const fn is_specified(self) -> bool {
        !matches!(self, Logic::X)
    }

    /// Converts to `Some(bool)` if specified, `None` for `X`.
    #[inline]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Converts to `bool`, mapping `X` to the supplied default.
    #[inline]
    pub const fn to_bool_or(self, default: bool) -> bool {
        match self {
            Logic::Zero => false,
            Logic::One => true,
            Logic::X => default,
        }
    }

    /// Returns `true` if `self` could take the value `other` — i.e. they are
    /// equal or at least one of them is `X`.
    ///
    /// This is the cube-compatibility relation used during merging.
    #[inline]
    pub const fn is_compatible(self, other: Logic) -> bool {
        matches!(
            (self, other),
            (Logic::X, _) | (_, Logic::X) | (Logic::Zero, Logic::Zero) | (Logic::One, Logic::One)
        )
    }

    /// The character representation used by `.bench`-style vector dumps:
    /// `'0'`, `'1'` or `'X'`.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
        }
    }

    /// Parses a single character (`0`, `1`, `x`, `X`, or `-` for don't-care).
    ///
    /// # Errors
    ///
    /// Returns [`ParseLogicError`] for any other character.
    pub const fn from_char(c: char) -> Result<Logic, ParseLogicError> {
        match c {
            '0' => Ok(Logic::Zero),
            '1' => Ok(Logic::One),
            'x' | 'X' | '-' => Ok(Logic::X),
            _ => Err(ParseLogicError { found: c }),
        }
    }
}

impl From<bool> for Logic {
    #[inline]
    fn from(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Logic::Zero => "0",
            Logic::One => "1",
            Logic::X => "X",
        })
    }
}

impl FromStr for Logic {
    type Err = ParseLogicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Logic::from_char(c),
            _ => Err(ParseLogicError { found: '?' }),
        }
    }
}

impl Not for Logic {
    type Output = Logic;

    #[inline]
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }
}

impl BitAnd for Logic {
    type Output = Logic;

    #[inline]
    fn bitand(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl BitOr for Logic {
    type Output = Logic;

    #[inline]
    fn bitor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl BitXor for Logic {
    type Output = Logic;

    #[inline]
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) if a == b => Logic::Zero,
            _ => Logic::One,
        }
    }
}

/// Error returned when parsing a [`Logic`] value from a character fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLogicError {
    found: char,
}

impl fmt::Display for ParseLogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid logic value character {:?}, expected one of 0, 1, X, x, -",
            self.found
        )
    }
}

impl Error for ParseLogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Logic::*;
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(One & One, One);
        assert_eq!(X & Zero, Zero);
        assert_eq!(X & One, X);
        assert_eq!(X & X, X);
    }

    #[test]
    fn or_truth_table() {
        use Logic::*;
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(Zero | One, One);
        assert_eq!(One | One, One);
        assert_eq!(X | One, One);
        assert_eq!(X | Zero, X);
        assert_eq!(X | X, X);
    }

    #[test]
    fn xor_truth_table() {
        use Logic::*;
        assert_eq!(Zero ^ Zero, Zero);
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ One, Zero);
        assert_eq!(X ^ One, X);
        assert_eq!(X ^ Zero, X);
        assert_eq!(X ^ X, X);
    }

    #[test]
    fn not_truth_table() {
        assert_eq!(!Logic::Zero, Logic::One);
        assert_eq!(!Logic::One, Logic::Zero);
        assert_eq!(!Logic::X, Logic::X);
    }

    #[test]
    fn de_morgan_holds_for_specified_values() {
        for a in [Logic::Zero, Logic::One] {
            for b in [Logic::Zero, Logic::One] {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn kleene_ops_are_monotone_in_x() {
        // Replacing X by any specified value must never change an already
        // specified result (monotonicity of Kleene logic).
        for a in Logic::ALL {
            for b in Logic::ALL {
                let and = a & b;
                if and.is_specified() {
                    for ra in refine(a) {
                        for rb in refine(b) {
                            assert_eq!(ra & rb, and, "{a}&{b} refined to {ra}&{rb}");
                        }
                    }
                }
            }
        }
    }

    fn refine(v: Logic) -> Vec<Logic> {
        match v {
            Logic::X => vec![Logic::Zero, Logic::One],
            v => vec![v],
        }
    }

    #[test]
    fn conversion_round_trips() {
        for v in Logic::ALL {
            assert_eq!(Logic::from_char(v.to_char()), Ok(v));
        }
        assert_eq!(Logic::from(true), Logic::One);
        assert_eq!(Logic::from(false), Logic::Zero);
        assert_eq!(Logic::One.to_bool(), Some(true));
        assert_eq!(Logic::X.to_bool(), None);
        assert!(Logic::X.to_bool_or(true));
        assert!(!Logic::X.to_bool_or(false));
    }

    #[test]
    fn from_char_rejects_garbage() {
        assert!(Logic::from_char('2').is_err());
        assert!("10".parse::<Logic>().is_err());
        assert_eq!("x".parse::<Logic>(), Ok(Logic::X));
        assert_eq!("-".parse::<Logic>(), Ok(Logic::X));
    }

    #[test]
    fn compatibility_relation() {
        assert!(Logic::X.is_compatible(Logic::One));
        assert!(Logic::One.is_compatible(Logic::X));
        assert!(Logic::One.is_compatible(Logic::One));
        assert!(!Logic::One.is_compatible(Logic::Zero));
    }

    #[test]
    fn display_matches_char() {
        for v in Logic::ALL {
            assert_eq!(v.to_string(), v.to_char().to_string());
        }
    }
}
