//! Seeded pseudo-random number generation, std-only.
//!
//! Determinism is a design invariant of this workspace (DESIGN.md §6.4):
//! every stochastic choice — synthetic circuits, random fill, random fault
//! ordering — flows from an explicit `u64` seed, and equal seeds must give
//! bit-identical streams on every platform and at every thread count. A
//! small self-contained generator keeps that guarantee independent of any
//! external crate's version bumps (and keeps the workspace building with no
//! network access).
//!
//! The implementation is the classic **SplitMix64** seeder feeding a
//! **xoshiro256\*\*** state, both public-domain algorithms by Blackman &
//! Vigna. SplitMix64 guarantees a well-mixed 256-bit state even from
//! low-entropy seeds like `0` or `1`.

/// SplitMix64: a tiny, fast, well-mixed 64-bit generator.
///
/// Used standalone for cheap one-shot derivations (e.g. splitting one seed
/// into per-stage sub-seeds) and as the seeder for [`Prng`].
///
/// # Examples
///
/// ```
/// use tvs_logic::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's seeded pseudo-random number generator (xoshiro256\*\*).
///
/// Replaces the previous external `rand::SmallRng` dependency with an
/// equivalent-quality, fully deterministic, platform-independent stream.
///
/// # Examples
///
/// ```
/// use tvs_logic::Prng;
///
/// let mut rng = Prng::seed_from_u64(7);
/// let x = rng.gen_range(0..10);
/// assert!(x < 10);
/// let mut again = Prng::seed_from_u64(7);
/// assert_eq!(again.gen_range(0..10), x);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// [`SplitMix64`], per the xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Prng {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Captures the raw 256-bit generator state, e.g. for a checkpoint
    /// snapshot. Feeding the result to [`from_state`](Self::from_state)
    /// resumes the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`state`](Self::state).
    ///
    /// Only states captured from a seeded generator are meaningful; the
    /// all-zero state is a fixed point of xoshiro256** and never occurs in a
    /// seeded stream.
    pub fn from_state(s: [u64; 4]) -> Self {
        Prng { s }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a fair random boolean.
    pub fn next_bool(&mut self) -> bool {
        // Use the high bit: xoshiro's low bits are its weakest.
        self.next_u64() >> 63 == 1
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Returns a uniform value in `range` (debiased by rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        // Rejection sampling over the largest multiple of `span`.
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone || zone == u64::MAX {
                return range.start + (v % span) as usize;
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 0 (from the public-domain C source).
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(g.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(g.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let a: Vec<u64> = {
            let mut r = Prng::seed_from_u64(1);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Prng::seed_from_u64(1);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Prng::seed_from_u64(2);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut r = Prng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[r.gen_range(2..9) - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..9 reachable");
    }

    #[test]
    fn bool_streams_are_roughly_fair() {
        let mut r = Prng::seed_from_u64(4);
        let ones = (0..4096).filter(|_| r.next_bool()).count();
        assert!((1700..2400).contains(&ones), "{ones} of 4096");
        let biased = (0..4096).filter(|_| r.gen_bool(0.25)).count();
        assert!((800..1250).contains(&biased), "{biased} of 4096");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements never shuffle to identity"
        );
    }
}
