//! Test cubes: vectors of three-valued logic with merge and fill operations.

use std::error::Error;
use std::fmt;
use std::ops::Index;
use std::str::FromStr;

use crate::{BitVec, Logic, Prng};

/// A test cube: an owned vector of [`Logic`] values.
///
/// ATPG produces cubes whose `X` positions are unconstrained; the stitching
/// algorithm pins some positions to previous-response bits and fills the rest.
///
/// # Examples
///
/// ```
/// use tvs_logic::{Cube, Logic};
///
/// let mut cube = Cube::unspecified(4);
/// cube.set(1, Logic::One);
/// assert_eq!(cube.specified_count(), 1);
/// assert_eq!(cube.to_string(), "X1XX");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    values: Vec<Logic>,
}

impl Cube {
    /// Creates a cube of `len` unspecified (`X`) positions.
    pub fn unspecified(len: usize) -> Self {
        Cube {
            values: vec![Logic::X; len],
        }
    }

    /// Creates a cube from a vector of values.
    pub fn from_values(values: Vec<Logic>) -> Self {
        Cube { values }
    }

    /// Creates a fully specified cube from bits.
    pub fn from_bits(bits: &BitVec) -> Self {
        Cube {
            values: bits.iter().map(Logic::from).collect(),
        }
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the cube has no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads the value at `index`, or `None` if out of range.
    #[inline]
    pub fn get(&self, index: usize) -> Option<Logic> {
        self.values.get(index).copied()
    }

    /// Writes the value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn set(&mut self, index: usize, value: Logic) {
        self.values[index] = value;
    }

    /// Number of specified (non-`X`) positions.
    pub fn specified_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_specified()).count()
    }

    /// Returns `true` if every position is specified.
    pub fn is_fully_specified(&self) -> bool {
        self.values.iter().all(|v| v.is_specified())
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Logic>> {
        self.values.iter().copied()
    }

    /// View of the underlying values.
    pub fn as_slice(&self) -> &[Logic] {
        &self.values
    }

    /// Returns `true` if the two cubes have no conflicting specified
    /// positions (same length required).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn is_compatible(&self, other: &Cube) -> bool {
        assert_eq!(self.len(), other.len(), "cube length mismatch");
        self.iter()
            .zip(other.iter())
            .all(|(a, b)| a.is_compatible(b))
    }

    /// Merges two compatible cubes, taking the specified value at each
    /// position. Returns `None` if the cubes conflict.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn merged(&self, other: &Cube) -> Option<Cube> {
        assert_eq!(self.len(), other.len(), "cube length mismatch");
        let mut out = Vec::with_capacity(self.len());
        for (a, b) in self.iter().zip(other.iter()) {
            match (a, b) {
                (Logic::X, v) | (v, Logic::X) => out.push(v),
                (a, b) if a == b => out.push(a),
                _ => return None,
            }
        }
        Some(Cube::from_values(out))
    }

    /// Fills every `X` position with a uniformly random bit drawn from `rng`,
    /// returning the fully specified result as bits.
    ///
    /// Random fill is the standard way fortuitous (non-targeted) detections
    /// are harvested after targeted test generation.
    pub fn random_fill(&self, rng: &mut Prng) -> BitVec {
        self.values
            .iter()
            .map(|v| v.to_bool().unwrap_or_else(|| rng.next_bool()))
            .collect()
    }

    /// Fills every `X` position with `fill`, returning bits.
    pub fn fill_with(&self, fill: bool) -> BitVec {
        self.values.iter().map(|v| v.to_bool_or(fill)).collect()
    }

    /// Returns a sub-cube of the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Cube {
        Cube::from_values(self.values[range].to_vec())
    }
}

impl Index<usize> for Cube {
    type Output = Logic;

    fn index(&self, index: usize) -> &Logic {
        &self.values[index]
    }
}

impl FromIterator<Logic> for Cube {
    fn from_iter<I: IntoIterator<Item = Logic>>(iter: I) -> Self {
        Cube {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<Logic> for Cube {
    fn extend<I: IntoIterator<Item = Logic>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.values {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl FromStr for Cube {
    type Err = ParseCubeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.chars()
            .enumerate()
            .map(|(i, c)| {
                Logic::from_char(c).map_err(|_| ParseCubeError {
                    position: i,
                    found: c,
                })
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Cube::from_values)
    }
}

/// Error returned when parsing a [`Cube`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseCubeError {
    position: usize,
    found: char,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character {:?} at position {}",
            self.found, self.position
        )
    }
}

impl Error for ParseCubeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let c: Cube = "1X0-x".parse().unwrap();
        assert_eq!(c.to_string(), "1X0XX");
        assert_eq!(c.len(), 5);
        assert_eq!(c.specified_count(), 2);
        assert!("12".parse::<Cube>().is_err());
    }

    #[test]
    fn merge_compatible() {
        let a: Cube = "1XX0".parse().unwrap();
        let b: Cube = "X1X0".parse().unwrap();
        assert!(a.is_compatible(&b));
        assert_eq!(a.merged(&b).unwrap().to_string(), "11X0");
    }

    #[test]
    fn merge_conflict_returns_none() {
        let a: Cube = "1X".parse().unwrap();
        let b: Cube = "0X".parse().unwrap();
        assert!(!a.is_compatible(&b));
        assert!(a.merged(&b).is_none());
    }

    #[test]
    fn fill_with_specifies_everything() {
        let c: Cube = "1X0X".parse().unwrap();
        assert_eq!(c.fill_with(true).to_string(), "1101");
        assert_eq!(c.fill_with(false).to_string(), "1000");
    }

    #[test]
    fn random_fill_respects_specified_bits() {
        let mut rng = Prng::seed_from_u64(7);
        let c: Cube = "1XXXXXXX0".parse().unwrap();
        for _ in 0..16 {
            let bits = c.random_fill(&mut rng);
            assert!(bits.get(0));
            assert!(!bits.get(8));
        }
    }

    #[test]
    fn from_bits_is_fully_specified() {
        let bits = BitVec::from_bools([true, false, true]);
        let c = Cube::from_bits(&bits);
        assert!(c.is_fully_specified());
        assert_eq!(c.to_string(), "101");
    }

    #[test]
    fn slice_extracts_range() {
        let c: Cube = "10X1".parse().unwrap();
        assert_eq!(c.slice(1..3).to_string(), "0X");
    }

    fn arb_cube(rng: &mut Prng, len: usize) -> Cube {
        (0..len)
            .map(|_| match rng.gen_range(0..3) {
                0 => Logic::Zero,
                1 => Logic::One,
                _ => Logic::X,
            })
            .collect()
    }

    // Seeded randomized invariants (formerly proptest-based; rewritten as
    // deterministic loops so the workspace has no external test deps).

    #[test]
    fn merge_is_commutative() {
        let mut rng = Prng::seed_from_u64(0xC0B1);
        for _ in 0..256 {
            let n = rng.gen_range(0..64);
            let a = arb_cube(&mut rng, n);
            let b = arb_cube(&mut rng, n);
            assert_eq!(a.merged(&b), b.merged(&a));
            assert_eq!(a.is_compatible(&b), b.is_compatible(&a));
        }
    }

    #[test]
    fn merge_with_self_is_identity() {
        let mut rng = Prng::seed_from_u64(0xC0B2);
        for _ in 0..256 {
            let n = rng.gen_range(0..64);
            let c = arb_cube(&mut rng, n);
            assert_eq!(c.merged(&c), Some(c.clone()));
        }
    }

    #[test]
    fn merged_refines_both() {
        let mut rng = Prng::seed_from_u64(0xC0B3);
        for _ in 0..256 {
            let n = rng.gen_range(1..48);
            let a = arb_cube(&mut rng, n);
            let b = arb_cube(&mut rng, n);
            if let Some(m) = a.merged(&b) {
                // every specified bit of a and b survives in m
                for i in 0..a.len() {
                    if a[i].is_specified() {
                        assert_eq!(m[i], a[i]);
                    }
                    if b[i].is_specified() {
                        assert_eq!(m[i], b[i]);
                    }
                }
                assert!(m.specified_count() >= a.specified_count().max(b.specified_count()));
            }
        }
    }

    #[test]
    fn round_trip_via_string() {
        let mut rng = Prng::seed_from_u64(0xC0B4);
        for _ in 0..256 {
            let n = rng.gen_range(0..64);
            let c = arb_cube(&mut rng, n);
            let s = c.to_string();
            let back: Cube = s.parse().unwrap();
            assert_eq!(back, c);
        }
    }
}
