//! Logic-value substrate for the TVS (test vector stitching) DFT toolkit.
//!
//! This crate provides the three building blocks every other layer of the
//! toolkit rests on:
//!
//! * [`Logic`] — a three-valued (Kleene) logic value: `0`, `1`, or `X`
//!   (unknown / don't-care). Test *cubes* produced by ATPG are vectors of
//!   these values; the unspecified `X` positions are exactly the freedom the
//!   stitching compression of Rao & Orailoglu (DATE 2003) exploits.
//! * [`Cube`] — an owned vector of [`Logic`] values with the merge /
//!   compatibility / fill operations ATPG and compaction need.
//! * [`BitVec`] — a compact, growable bit vector used for fully specified
//!   stimuli, responses and scan-chain images.
//!
//! # Examples
//!
//! ```
//! use tvs_logic::{Cube, Logic};
//!
//! let a: Cube = "1X0".parse()?;
//! let b: Cube = "110".parse()?;
//! assert!(a.is_compatible(&b));
//! assert_eq!(a.merged(&b).unwrap().to_string(), "110");
//! # Ok::<(), tvs_logic::ParseCubeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod cube;
mod rng;
mod value;

pub use bits::BitVec;
pub use cube::{Cube, ParseCubeError};
pub use rng::{Prng, SplitMix64};
pub use value::{Logic, ParseLogicError};
