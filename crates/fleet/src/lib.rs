//! **tvs-fleet** — a sharded coordinator over many `tvs serve` workers.
//!
//! One `tvs serve` daemon scales to one machine. This crate scales the
//! service out without giving up the property that makes the whole system
//! work: a submission's artifact is a pure, byte-stable function of
//! `(netlist, configuration)`. The coordinator ([`Coordinator`]) speaks the
//! *same* wire protocol as a worker — clients cannot tell the difference —
//! and fans submissions out across a fleet:
//!
//! * **Sharding** ([`Ring`]): consistent hashing over the content-addressed
//!   [`tvs_core::ArtifactKey`], with virtual nodes for balance. Routing
//!   depends only on the worker address list, never on registration order
//!   or runtime state, so any two coordinators shard identically.
//! * **Health** ([`WorkerSlot`]): periodic `stats` probes with timeout and
//!   capped exponential back-off; dispatch failures mark a worker dead
//!   immediately. Death filters routing but never edits the ring, so a
//!   returning worker gets its key ranges — and its warm cache — back.
//! * **Deterministic retry**: when a worker dies under an in-flight job the
//!   coordinator resubmits the identical payload to the key's ring
//!   successor. Because artifacts exclude thread count and workers
//!   checkpoint to `.tvsnap` sidecars, the retried run yields the
//!   byte-identical artifact the dead worker would have produced.
//! * **Typed failures** ([`FleetError`]): fleet-only conditions
//!   (`no-workers`, `job-abandoned`) extend the serve wire codes; worker
//!   errors pass through untouched.
//!
//! Std-only, like every other crate in this workspace. The coordinator
//! never runs the engine itself; determinism arguments live with the
//! workers and DESIGN.md §6 — and now §13 for the fleet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
mod coordinator;
mod error;
pub mod health;
pub mod ring;

pub use conn::{ConnFailure, WorkerConn};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use error::FleetError;
pub use health::{HealthSnapshot, WorkerSlot};
pub use ring::Ring;
