//! The consistent hash ring that shards artifact keys across workers.
//!
//! Each worker address is expanded into [`Ring::vnodes`] *virtual nodes*,
//! every vnode hashed onto a `u64` circle; a key routes to the worker
//! owning the first vnode clockwise from the key's hash. Virtual nodes
//! smooth the shard sizes (the expected share of N workers is `1/N` with
//! variance shrinking as vnodes grow), and consistent hashing bounds churn:
//! adding a worker steals only the key ranges its own vnodes land on —
//! every other key keeps its worker, which is what keeps the per-worker
//! artifact caches warm across fleet resizes.
//!
//! Determinism: a vnode's position depends only on the worker's address
//! text and the vnode index (FNV-1a, the same hash the artifact keys use),
//! never on registration order or any runtime state. Two coordinators
//! configured with the same worker set route every key identically, and a
//! coordinator restart cannot reshuffle the fleet. Hash collisions between
//! vnodes are resolved toward the lexicographically smaller address for the
//! same reason.

use std::collections::BTreeMap;

use tvs_stitch::fnv1a;

/// A consistent hash ring over worker addresses.
#[derive(Debug, Clone)]
pub struct Ring {
    /// Circle position → worker address. `BTreeMap` gives ordered walks.
    points: BTreeMap<u64, String>,
    vnodes: usize,
}

impl Ring {
    /// An empty ring placing `vnodes` virtual nodes per worker (clamped to
    /// at least 1).
    pub fn new(vnodes: usize) -> Ring {
        Ring {
            points: BTreeMap::new(),
            vnodes: vnodes.max(1),
        }
    }

    /// Virtual nodes placed per worker.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Adds a worker's virtual nodes. Re-adding an address is idempotent.
    pub fn add(&mut self, addr: &str) {
        for i in 0..self.vnodes {
            let point = fnv1a(format!("{addr}#{i}").as_bytes());
            match self.points.get_mut(&point) {
                // A 64-bit collision between two workers' vnodes: keep the
                // lexicographically smaller address so the outcome does not
                // depend on insertion order.
                Some(existing) => {
                    if addr < existing.as_str() {
                        *existing = addr.to_owned();
                    }
                }
                None => {
                    self.points.insert(point, addr.to_owned());
                }
            }
        }
    }

    /// Removes a worker's virtual nodes (a no-op for unknown addresses).
    pub fn remove(&mut self, addr: &str) {
        self.points.retain(|_, a| a != addr);
    }

    /// Distinct worker addresses on the ring, in clockwise order starting
    /// at `key`'s position. The first element is the key's home worker;
    /// the rest are its retry successors in failover order.
    pub fn successors(&self, key: u64) -> Vec<&str> {
        let mut order: Vec<&str> = Vec::new();
        let walk = self
            .points
            .range(key..)
            .chain(self.points.range(..key))
            .map(|(_, addr)| addr.as_str());
        for addr in walk {
            if !order.contains(&addr) {
                order.push(addr);
            }
        }
        order
    }

    /// The first worker for `key` that satisfies `alive`, walking the ring
    /// clockwise. `None` when no worker qualifies (or the ring is empty).
    pub fn route<F: Fn(&str) -> bool>(&self, key: u64, alive: F) -> Option<&str> {
        self.successors(key).into_iter().find(|addr| alive(addr))
    }
}
