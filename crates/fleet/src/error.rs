//! The fleet layer's error taxonomy and its wire representation.
//!
//! The coordinator speaks the same wire grammar as a single worker, so
//! everything a worker can answer — `busy`, `netlist`, `job-failed`, … —
//! passes through byte-faithfully as [`FleetError::Serve`]. The variants
//! the fleet adds are the failures only a *fleet* can have: no live worker
//! for a key, and a job whose every candidate worker died under it.

use std::fmt;

use tvs_serve::json::Value;
use tvs_serve::ServeError;

/// Everything the coordinator can fail with.
#[derive(Debug)]
pub enum FleetError {
    /// No live worker could take the request: every ring successor is dead,
    /// unreachable, or at capacity.
    NoWorkers {
        /// Workers configured into the ring.
        workers: usize,
        /// Workers currently considered alive.
        alive: usize,
    },
    /// A job's worker died and every resubmission attempt failed too; the
    /// job cannot be completed by the current fleet.
    JobAbandoned {
        /// The coordinator-issued job id.
        job: String,
        /// Placement attempts made (initial + retries).
        attempts: u32,
    },
    /// A service-level failure shared with the single-worker protocol,
    /// forwarded with its original wire code (`busy`, `unknown-job`, …).
    Serve(ServeError),
}

impl FleetError {
    /// The stable machine-readable code carried in error responses.
    pub fn wire_code(&self) -> &'static str {
        match self {
            FleetError::NoWorkers { .. } => "no-workers",
            FleetError::JobAbandoned { .. } => "job-abandoned",
            FleetError::Serve(e) => e.wire_code(),
        }
    }

    /// Renders the error as the protocol's `{"ok":false,...}` response.
    pub fn to_wire(&self) -> Value {
        match self {
            FleetError::Serve(e) => e.to_wire(),
            other => Value::Obj(vec![
                ("ok".to_owned(), Value::Bool(false)),
                ("error".to_owned(), Value::str(other.wire_code())),
                ("message".to_owned(), Value::str(other.to_string())),
            ]),
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoWorkers { workers, alive } => write!(
                f,
                "no live worker available ({alive} of {workers} workers alive)"
            ),
            FleetError::JobAbandoned { job, attempts } => write!(
                f,
                "job {job} abandoned after {attempts} placement attempts; every candidate worker died or refused"
            ),
            FleetError::Serve(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

impl From<tvs_core::CoreError> for FleetError {
    fn from(e: tvs_core::CoreError) -> Self {
        FleetError::Serve(ServeError::from(e))
    }
}
