//! The fleet coordinator: a daemon that *looks like* one big `tvs serve`.
//!
//! Clients speak the ordinary serve protocol to the coordinator; the
//! coordinator computes each submission's [`ArtifactKey`] exactly the way a
//! worker would (canonicalized bench text + config fingerprint + budget) and
//! places the job on the key's home worker — the first live worker clockwise
//! on the [`Ring`]. Forwarded operations (`status`, `wait`, `fetch`) follow
//! the job to wherever it currently lives.
//!
//! **Retry on worker death.** When a forwarded operation loses its
//! transport, the worker is marked dead and the job is *resubmitted* — same
//! name, same bench text, same config — to the key's next live ring
//! successor. Determinism makes this safe and cheap: the artifact key
//! excludes thread count, the artifact text is a pure function of the key,
//! and when workers share a cache directory the successor resumes from the
//! dead worker's `.tvsnap` checkpoint. A retried job therefore produces the
//! byte-identical artifact the original would have, no matter where (or how
//! often) it is retried. Two clients racing the same dead job may both
//! resubmit; the worker's single-flight table collapses the race.
//!
//! **Lint-gated admission.** Before routing, the coordinator runs the same
//! deny-level admission analysis a worker would (structural rules plus the
//! testability dataflow): a rejected netlist gets the typed `rejected`
//! error locally — cached per artifact key — and never reaches a worker,
//! and the `lint` op is answered locally for the same reason.
//!
//! **Busy spillover.** A `busy` refusal means the home worker did *not*
//! admit the job, so trying the next successor cannot start a duplicate
//! run; `busy` reaches the client only when every live worker refuses.
//!
//! Placement and death events are printed one per line
//! (`tvs-fleet: job f1 key 00ab… -> worker 127.0.0.1:7071`) so operators —
//! and the CI smoke test — can map jobs to worker processes.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use std::collections::{BTreeMap, BTreeSet};

use tvs_core::json::{self, Value};
use tvs_core::{ArtifactKey, SubmissionIdentity};
use tvs_netlist::bench;
use tvs_serve::proto::{read_frame, write_frame, ProtoError};
use tvs_serve::{check_version, config_from_wire, ServeError};

use crate::conn::{ConnFailure, WorkerConn};
use crate::error::FleetError;
use crate::health::WorkerSlot;
use crate::ring::Ring;

/// How often blocked reads and the accept loop re-check the draining flag.
const POLL: Duration = Duration::from_millis(50);

/// Construction parameters for [`Coordinator::bind`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Address to listen on, e.g. `"127.0.0.1:7070"` (`:0` picks a port).
    pub listen: String,
    /// Worker daemon addresses, e.g. `["127.0.0.1:7071", "127.0.0.1:7072"]`.
    pub workers: Vec<String>,
    /// Virtual nodes per worker on the hash ring.
    pub vnodes: usize,
    /// Pause between health-probe sweeps over the workers.
    pub health_interval: Duration,
    /// Connect/read timeout for probes and quick forwarded ops.
    pub probe_timeout: Duration,
    /// Consecutive probe failures that flip a worker dead.
    pub fail_threshold: u32,
    /// Artifact-cache byte cap broadcast to every worker at startup
    /// (0 = leave the workers' own configuration alone).
    pub cache_cap_bytes: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            listen: "127.0.0.1:0".to_owned(),
            workers: Vec::new(),
            vnodes: 64,
            health_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            fail_threshold: crate::health::DEFAULT_FAIL_THRESHOLD,
            cache_cap_bytes: 0,
        }
    }
}

/// Everything the coordinator remembers about one submission — enough to
/// resubmit it verbatim if its worker dies.
#[derive(Debug, Clone)]
struct FleetJob {
    key: ArtifactKey,
    /// The routing family: shared by every edit of the same design under
    /// the same configuration, so an edited resubmission lands on the
    /// worker whose cache holds the ancestor's manifest (delta reuse).
    family: u64,
    name: String,
    bench: String,
    config_wire: Option<Value>,
    /// The submitting client identity, forwarded verbatim to workers so
    /// per-client admission quotas hold across the fleet.
    client: Option<String>,
    /// Current placement: worker address and that worker's job id.
    worker: String,
    remote: String,
    /// Placement attempts so far (initial placement counts as 1).
    attempts: u32,
}

#[derive(Default)]
struct JobMap {
    jobs: BTreeMap<String, FleetJob>,
    next_id: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared fleet state: the ring, the worker slots, and the job map.
struct Fleet {
    ring: Ring,
    slots: Vec<Arc<WorkerSlot>>,
    jobs: Mutex<JobMap>,
    /// Lint admission verdicts by artifact key: rendered diagnostics for
    /// rejected keys, plus a memo of keys already analyzed clean — so a
    /// resubmitted netlist never pays for the dataflow twice and a
    /// deny-level one never burns a worker round-trip.
    rejections: Mutex<BTreeMap<u64, String>>,
    admitted: Mutex<BTreeSet<u64>>,
    probe_timeout: Duration,
    fail_threshold: u32,
    cache_cap_bytes: u64,
    draining: Arc<AtomicBool>,
}

/// A bound (but not yet serving) coordinator.
pub struct Coordinator {
    listener: TcpListener,
    fleet: Arc<Fleet>,
    health_interval: Duration,
}

impl Coordinator {
    /// Binds the listen socket and builds the ring over `config.workers`.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoWorkers`] when the worker list is empty, otherwise
    /// I/O errors from binding.
    pub fn bind(config: &CoordinatorConfig) -> Result<Coordinator, FleetError> {
        if config.workers.is_empty() {
            return Err(FleetError::NoWorkers {
                workers: 0,
                alive: 0,
            });
        }
        let listener = TcpListener::bind(&config.listen)
            .map_err(|e| ServeError::io(format!("bind {}", config.listen), e))?;
        let mut ring = Ring::new(config.vnodes);
        let mut slots = Vec::new();
        for addr in &config.workers {
            ring.add(addr);
            if !slots.iter().any(|s: &Arc<WorkerSlot>| &s.addr == addr) {
                slots.push(Arc::new(WorkerSlot::new(addr.clone())));
            }
        }
        Ok(Coordinator {
            listener,
            fleet: Arc::new(Fleet {
                ring,
                slots,
                jobs: Mutex::new(JobMap::default()),
                rejections: Mutex::new(BTreeMap::new()),
                admitted: Mutex::new(BTreeSet::new()),
                probe_timeout: config.probe_timeout,
                fail_threshold: config.fail_threshold,
                cache_cap_bytes: config.cache_cap_bytes,
                draining: Arc::new(AtomicBool::new(false)),
            }),
            health_interval: config.health_interval,
        })
    }

    /// The bound address (resolves `:0` to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's address lookup failure.
    pub fn local_addr(&self) -> Result<SocketAddr, FleetError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::io("local_addr", e).into())
    }

    /// A handle that can trigger a drain from another thread (tests).
    pub fn drain_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.fleet.draining)
    }

    /// Serves until a `shutdown` request (or the drain handle) flips the
    /// draining flag, then lets in-flight forwards finish and returns.
    ///
    /// # Errors
    ///
    /// Only setup failures error; per-connection failures stay contained to
    /// their connection thread, per-worker failures to that worker's slot.
    pub fn run(self) -> Result<(), FleetError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::io("set_nonblocking", e))?;
        self.fleet.broadcast_cache_cap();
        // Like the worker daemon, all threads here are I/O waiters: the
        // health monitor sleeps between probes, connection threads block on
        // sockets. Compute happens on the workers. This file is on the
        // SRC003 allowlist alongside crates/serve/src/server.rs.
        let monitor = {
            let fleet = Arc::clone(&self.fleet);
            let interval = self.health_interval;
            std::thread::spawn(move || fleet.monitor(interval))
        };
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.fleet.draining.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let fleet = Arc::clone(&self.fleet);
                    let handle = std::thread::spawn(move || fleet.serve_connection(stream));
                    connections.push(handle);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
            connections.retain(|h| !h.is_finished());
        }
        for handle in connections {
            let _ = handle.join();
        }
        let _ = monitor.join();
        Ok(())
    }
}

impl Fleet {
    /// Pushes the configured cache cap to every worker, best effort: a
    /// worker that is down now will keep its own configuration.
    fn broadcast_cache_cap(&self) {
        if self.cache_cap_bytes == 0 {
            return;
        }
        let request = Value::Obj(vec![
            ("op".to_owned(), Value::str("cache-cap")),
            ("bytes".to_owned(), Value::num_u64(self.cache_cap_bytes)),
        ]);
        for slot in &self.slots {
            let sent = WorkerConn::connect(&slot.addr, self.probe_timeout)
                .and_then(|mut c| c.request(&request, Some(self.probe_timeout)));
            if sent.is_ok() {
                println!(
                    "tvs-fleet: worker {} cache cap {} bytes",
                    slot.addr, self.cache_cap_bytes
                );
            }
        }
    }

    fn alive(&self, addr: &str) -> bool {
        self.slot(addr).map(|s| s.is_alive()).unwrap_or(false)
    }

    fn alive_count(&self) -> usize {
        self.slots.iter().filter(|s| s.is_alive()).count()
    }

    fn slot(&self, addr: &str) -> Option<&Arc<WorkerSlot>> {
        self.slots.iter().find(|s| s.addr == addr)
    }

    /// Marks `addr` dead from the dispatch path, logging the transition.
    fn note_lost(&self, addr: &str, reason: &str) {
        if let Some(slot) = self.slot(addr) {
            if slot.mark_dead(reason) {
                tvs_exec::counter("fleet.worker_deaths").incr();
                println!("tvs-fleet: worker {addr} dead ({reason})");
            }
        }
    }

    /// One sweep-and-sleep health monitor loop; runs until drain.
    fn monitor(&self, interval: Duration) {
        while !self.draining.load(Ordering::Acquire) {
            for slot in &self.slots {
                if self.draining.load(Ordering::Acquire) {
                    return;
                }
                if !slot.due_for_probe() {
                    continue;
                }
                let result = self.probe(&slot.addr);
                if slot.note_probe(result.clone(), self.fail_threshold) {
                    tvs_exec::counter("fleet.worker_deaths").incr();
                    let reason = result.err().unwrap_or_default();
                    println!("tvs-fleet: worker {} dead ({reason})", slot.addr);
                }
            }
            // Sleep in poll-sized slices so a drain is honored promptly.
            let mut remaining = interval;
            while remaining > Duration::ZERO && !self.draining.load(Ordering::Acquire) {
                let step = remaining.min(POLL);
                std::thread::sleep(step);
                remaining -= step;
            }
        }
    }

    /// One `stats` round-trip to a worker, as a pass/fail probe.
    fn probe(&self, addr: &str) -> Result<(), String> {
        tvs_exec::counter("fleet.probes").incr();
        match self.worker_stats(addr) {
            Ok(_) => Ok(()),
            Err(ConnFailure::Lost(m)) => Err(m),
            // A typed refusal of `stats` (e.g. a version-mismatched worker)
            // means the worker cannot serve this fleet: that is dead too.
            Err(ConnFailure::Refused(e)) => Err(e.to_string()),
        }
    }

    fn worker_stats(&self, addr: &str) -> Result<Value, ConnFailure> {
        let request = Value::Obj(vec![("op".to_owned(), Value::str("stats"))]);
        WorkerConn::connect(addr, self.probe_timeout)?.request(&request, Some(self.probe_timeout))
    }

    /// One connection's request/response loop (mirrors the worker daemon).
    fn serve_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(POLL));
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut writer = BufWriter::new(stream);
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(Some(frame)) => frame,
                Ok(None) => return,
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.draining.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                Err(_) => return,
            };
            let response = match self.dispatch(&frame) {
                Ok(value) => value,
                Err(e) => e.to_wire(),
            };
            if write_frame(&mut writer, &response.to_text()).is_err() {
                return;
            }
            if self.draining.load(Ordering::Acquire) {
                return;
            }
        }
    }

    /// Parses one client request and executes it against the fleet.
    fn dispatch(&self, frame: &str) -> Result<Value, FleetError> {
        let request = json::parse(frame).map_err(|e| ServeError::Protocol(e.to_string()))?;
        let op = request
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("missing \"op\"".to_owned()))?;
        check_version(&request)?;
        match op {
            "submit" => self.submit(&request),
            "lint" => self.lint(&request),
            "status" | "wait" | "fetch" => {
                let job = request
                    .get("job")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ServeError::Protocol("missing \"job\"".to_owned()))?;
                self.forward(op, job)
            }
            "stats" => Ok(self.stats()),
            "shutdown" => Ok(self.shutdown()),
            other => Err(ServeError::Protocol(format!("unknown op {other:?}")).into()),
        }
    }

    /// Admits one submission: compute its key locally, place it on the
    /// key's first live ring successor, remember how to replay it.
    fn submit(&self, request: &Value) -> Result<Value, FleetError> {
        if self.draining.load(Ordering::Acquire) {
            return Err(ServeError::Draining.into());
        }
        tvs_exec::counter("fleet.submits").incr();
        let bench_text = request
            .get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("submit requires \"bench\"".to_owned()))?;
        let name = request
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("netlist");
        // Reject bad submissions here, before burning a worker round-trip —
        // and compute the routing key the exact way the worker will.
        let config = config_from_wire(request.get("config"))?;
        let netlist = match bench::parse(name, bench_text) {
            Ok(netlist) => netlist,
            Err(e) => {
                // Structural build errors get the same typed rejection the
                // worker would issue, cached under the raw-text key (the
                // netlist cannot be canonicalized); syntax errors stay on
                // the plain netlist path.
                return Err(match tvs_lint::netlist_error_diagnostics(&e) {
                    Some(diags) => {
                        let key = ArtifactKey::compute(bench_text, &config);
                        self.reject(key, tvs_lint::render_json(&diags))
                    }
                    None => ServeError::Netlist(e.to_string()).into(),
                });
            }
        };
        let canonical = bench::to_string(&netlist);
        // The identity helper keeps the coordinator's key byte-for-byte in
        // agreement with what the placed worker will compute.
        let identity = SubmissionIdentity::of(&netlist, &canonical, &config);
        let key = identity.key;
        let family = identity.family(&config);
        if let Some(hit) = self.cached_rejection(key) {
            return Err(hit);
        }
        if !lock(&self.admitted).contains(&key.0) {
            let diags =
                tvs_lint::admission_diagnostics(&netlist, &tvs_lint::TestabilityConfig::default());
            if tvs_lint::has_deny(&diags) {
                return Err(self.reject(key, tvs_lint::render_json(&diags)));
            }
            lock(&self.admitted).insert(key.0);
        }

        let job = FleetJob {
            key,
            family,
            name: name.to_owned(),
            bench: bench_text.to_owned(),
            config_wire: request.get("config").cloned(),
            client: request
                .get("client")
                .and_then(Value::as_str)
                .map(str::to_owned),
            worker: String::new(),
            remote: String::new(),
            attempts: 0,
        };
        let (placed, admission) = self.place(&job, None)?;

        let (id, worker) = {
            let mut map = lock(&self.jobs);
            map.next_id += 1;
            let id = format!("f{}", map.next_id);
            let mut job = job;
            job.worker = placed.0;
            job.remote = placed.1;
            job.attempts = 1;
            let worker = job.worker.clone();
            println!("tvs-fleet: job {id} key {key} -> worker {worker}");
            map.jobs.insert(id.clone(), job);
            (id, worker)
        };
        Ok(Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("job".into(), Value::str(id)),
            ("admission".into(), Value::str(admission)),
            ("key".into(), Value::str(key.to_string())),
            ("worker".into(), Value::str(worker)),
        ]))
    }

    /// Records a fresh deny verdict for `key` and returns the typed wire
    /// error. Race-safe: if another submission recorded the verdict first,
    /// its diagnostics win and this call reports a cache hit.
    fn reject(&self, key: ArtifactKey, diagnostics: String) -> FleetError {
        let mut rejections = lock(&self.rejections);
        if let Some(existing) = rejections.get(&key.0) {
            tvs_exec::counter("fleet.rejected_cache_hits").incr();
            return ServeError::Rejected {
                diagnostics: existing.clone(),
                cached: true,
            }
            .into();
        }
        tvs_exec::counter("fleet.rejected").incr();
        rejections.insert(key.0, diagnostics.clone());
        ServeError::Rejected {
            diagnostics,
            cached: false,
        }
        .into()
    }

    /// The cached deny verdict for `key`, if any.
    fn cached_rejection(&self, key: ArtifactKey) -> Option<FleetError> {
        let rejections = lock(&self.rejections);
        let diagnostics = rejections.get(&key.0)?.clone();
        tvs_exec::counter("fleet.rejected_cache_hits").incr();
        Some(
            ServeError::Rejected {
                diagnostics,
                cached: true,
            }
            .into(),
        )
    }

    /// Answers the `lint` op locally — the coordinator runs the identical
    /// analysis a worker would, so no round-trip is needed.
    fn lint(&self, request: &Value) -> Result<Value, FleetError> {
        let bench_text = request
            .get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Protocol("lint requires \"bench\"".to_owned()))?;
        let name = request
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("netlist");
        let diags = match bench::parse(name, bench_text) {
            Ok(netlist) => {
                tvs_lint::admission_diagnostics(&netlist, &tvs_lint::TestabilityConfig::default())
            }
            Err(e) => tvs_lint::netlist_error_diagnostics(&e)
                .ok_or_else(|| ServeError::Netlist(e.to_string()))?,
        };
        let deny = tvs_lint::has_deny(&diags);
        let doc = json::parse(&tvs_lint::render_json(&diags))
            .map_err(|e| ServeError::Protocol(format!("lint serializer: {e}")))?;
        Ok(Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("admitted".into(), Value::Bool(!deny)),
            ("lint".into(), doc),
        ]))
    }

    /// Tries the job family's ring successors in order until one accepts
    /// the submission. Returns `((worker, remote_id), admission)`.
    ///
    /// Routing hashes the *family* (interface signature + configuration),
    /// not the artifact key: every edit of one design homes to the same
    /// worker, whose cache holds the ancestor manifests a delta run needs.
    fn place(
        &self,
        job: &FleetJob,
        skip: Option<&str>,
    ) -> Result<((String, String), String), FleetError> {
        let mut request = vec![
            ("op".to_owned(), Value::str("submit")),
            ("name".to_owned(), Value::str(job.name.clone())),
            ("bench".to_owned(), Value::str(job.bench.clone())),
        ];
        if let Some(config) = &job.config_wire {
            request.push(("config".to_owned(), config.clone()));
        }
        if let Some(client) = &job.client {
            request.push(("client".to_owned(), Value::str(client.clone())));
        }
        let request = Value::Obj(request);

        let mut last_refusal: Option<ServeError> = None;
        for addr in self.ring.successors(job.family) {
            if Some(addr) == skip || !self.alive(addr) {
                continue;
            }
            let outcome = WorkerConn::connect(addr, self.probe_timeout)
                .and_then(|mut c| c.request(&request, Some(self.probe_timeout)));
            match outcome {
                Ok(response) => {
                    let remote = response
                        .get("job")
                        .and_then(Value::as_str)
                        .ok_or_else(|| {
                            ServeError::Protocol("worker submit response lacks \"job\"".to_owned())
                        })?
                        .to_owned();
                    let admission = response
                        .get("admission")
                        .and_then(Value::as_str)
                        .unwrap_or("miss")
                        .to_owned();
                    if let Some(slot) = self.slot(addr) {
                        slot.note_routed();
                    }
                    return Ok(((addr.to_owned(), remote), admission));
                }
                Err(ConnFailure::Lost(reason)) => {
                    self.note_lost(addr, &reason);
                }
                // Not admitted there — the next successor cannot duplicate.
                Err(ConnFailure::Refused(e @ ServeError::Busy { .. }))
                | Err(ConnFailure::Refused(e @ ServeError::Draining)) => {
                    tvs_exec::counter("fleet.spills").incr();
                    last_refusal = Some(e);
                }
                Err(ConnFailure::Refused(e)) => return Err(e.into()),
            }
        }
        match last_refusal {
            Some(e) => Err(e.into()),
            None => Err(FleetError::NoWorkers {
                workers: self.slots.len(),
                alive: self.alive_count(),
            }),
        }
    }

    /// Forwards `status`/`wait`/`fetch` to the job's worker, replaying the
    /// submission on a ring successor every time the placement dies.
    fn forward(&self, op: &str, fleet_id: &str) -> Result<Value, FleetError> {
        // Each worker gets at most two shots (pre- and post-death marking)
        // before the job is declared abandoned.
        let max_attempts = (self.slots.len() as u32).saturating_mul(2).max(2);
        loop {
            let (job, slot) = {
                let map = lock(&self.jobs);
                let job = map
                    .jobs
                    .get(fleet_id)
                    .ok_or_else(|| ServeError::UnknownJob(fleet_id.to_owned()))?
                    .clone();
                let slot = self.slot(&job.worker).cloned();
                (job, slot)
            };
            if job.attempts > max_attempts {
                return Err(FleetError::JobAbandoned {
                    job: fleet_id.to_owned(),
                    attempts: job.attempts,
                });
            }
            let request = Value::Obj(vec![
                ("op".to_owned(), Value::str(op)),
                ("job".to_owned(), Value::str(job.remote.clone())),
            ]);
            let outcome =
                WorkerConn::connect(&job.worker, self.probe_timeout).and_then(|mut conn| {
                    if op == "status" {
                        conn.request(&request, Some(self.probe_timeout))
                    } else {
                        // `wait`/`fetch` block for the duration of the run;
                        // the health monitor marking the worker dead (or a
                        // drain) breaks the block so the retry path runs.
                        let interrupted = || match &slot {
                            Some(s) => !s.is_alive(),
                            None => true,
                        };
                        conn.request_until(&request, &interrupted)
                    }
                });
            // A restarted worker is alive but just proved it no longer
            // holds this job's state: skip it when replaying. A lost
            // transport instead marks the worker dead, which the `place`
            // liveness filter already excludes.
            let skip_old = match outcome {
                Ok(response) => return Ok(response),
                Err(ConnFailure::Refused(ServeError::UnknownJob(_))) => true,
                Err(ConnFailure::Refused(e)) => return Err(e.into()),
                Err(ConnFailure::Lost(reason)) => {
                    self.note_lost(&job.worker, &reason);
                    false
                }
            };
            // Replay the submission on the next live successor.
            tvs_exec::counter("fleet.retries").incr();
            let skip = skip_old.then_some(job.worker.as_str());
            let (placed, _admission) = self.place(&job, skip)?;
            let mut map = lock(&self.jobs);
            if let Some(entry) = map.jobs.get_mut(fleet_id) {
                // A racing forward may have replayed first; adopt the newer
                // placement only if ours is still the recorded (dead) one.
                if entry.worker == job.worker && entry.remote == job.remote {
                    entry.worker = placed.0.clone();
                    entry.remote = placed.1.clone();
                    entry.attempts += 1;
                    println!(
                        "tvs-fleet: job {fleet_id} key {} retry -> worker {}",
                        entry.key, entry.worker
                    );
                }
            }
        }
    }

    /// The fleet-wide `stats` document: coordinator gauges, per-worker
    /// health + live worker stats, and counter totals across the fleet.
    fn stats(&self) -> Value {
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        let mut workers = Vec::new();
        for slot in &self.slots {
            let snap = slot.snapshot();
            let mut entry = vec![
                ("addr".to_owned(), Value::str(slot.addr.clone())),
                ("alive".to_owned(), Value::Bool(snap.alive)),
                ("deaths".to_owned(), Value::num_u64(snap.deaths)),
                ("jobs_routed".to_owned(), Value::num_u64(snap.jobs_routed)),
                ("probes".to_owned(), Value::num_u64(snap.probes)),
            ];
            if let Some(error) = &snap.last_error {
                entry.push(("last_error".to_owned(), Value::str(error.clone())));
            }
            match self.worker_stats(&slot.addr) {
                Ok(response) => {
                    if let Some(Value::Obj(counters)) =
                        response.get("stats").and_then(|s| s.get("counters"))
                    {
                        for (name, v) in counters {
                            if let (Some(short), Some(n)) =
                                (name.strip_prefix("serve."), v.as_u64())
                            {
                                *totals.entry(short.to_owned()).or_insert(0) += n;
                            }
                            // Cache-hygiene and delta-reuse counters keep
                            // their full dotted names in the fleet totals.
                            if let (true, Some(n)) = (
                                name.starts_with("cache.") || name.starts_with("delta."),
                                v.as_u64(),
                            ) {
                                *totals.entry(name.clone()).or_insert(0) += n;
                            }
                        }
                    }
                    if let Some(stats) = response.get("stats") {
                        entry.push(("stats".to_owned(), stats.clone()));
                    }
                    if let Some(server) = response.get("server") {
                        entry.push(("server".to_owned(), server.clone()));
                    }
                }
                Err(_) => entry.push(("stats".to_owned(), Value::Null)),
            }
            workers.push(Value::Obj(entry));
        }
        let map = lock(&self.jobs);
        let deaths: u64 = self.slots.iter().map(|s| s.snapshot().deaths).sum();
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            (
                "fleet".into(),
                Value::Obj(vec![
                    ("workers".into(), Value::num_u64(self.slots.len() as u64)),
                    ("alive".into(), Value::num_u64(self.alive_count() as u64)),
                    ("jobs_issued".into(), Value::num_u64(map.next_id)),
                    ("worker_deaths".into(), Value::num_u64(deaths)),
                    ("vnodes".into(), Value::num_u64(self.ring.vnodes() as u64)),
                    (
                        "draining".into(),
                        Value::Bool(self.draining.load(Ordering::Acquire)),
                    ),
                ]),
            ),
            (
                "totals".into(),
                Value::Obj(
                    totals
                        .into_iter()
                        .map(|(k, v)| (k, Value::num_u64(v)))
                        .collect(),
                ),
            ),
            ("workers".into(), Value::Arr(workers)),
        ])
    }

    /// Flips the draining flag and broadcasts `shutdown` to every live
    /// worker (best effort — a dead worker has nothing to drain).
    fn shutdown(&self) -> Value {
        self.draining.store(true, Ordering::Release);
        let request = Value::Obj(vec![("op".to_owned(), Value::str("shutdown"))]);
        let mut notified = 0u64;
        for slot in &self.slots {
            if !slot.is_alive() {
                continue;
            }
            let sent = WorkerConn::connect(&slot.addr, self.probe_timeout)
                .and_then(|mut c| c.request(&request, Some(self.probe_timeout)));
            if sent.is_ok() {
                notified += 1;
            }
        }
        Value::Obj(vec![
            ("ok".into(), Value::Bool(true)),
            ("draining".into(), Value::Bool(true)),
            ("workers_notified".into(), Value::num_u64(notified)),
        ])
    }
}
