//! One-shot coordinator→worker connections.
//!
//! The coordinator opens a fresh TCP connection per forwarded operation.
//! That costs a handshake per request — negligible next to engine runs that
//! take seconds to minutes — and buys statelessness: a worker restart, a
//! half-dead socket, or a mid-`wait` crash can only ever poison the one
//! request riding the connection, and every failure is observed *at* the
//! request it affects, which is exactly when the retry logic wants to know.
//!
//! Failures split into two kinds the coordinator treats very differently:
//! [`ConnFailure::Lost`] (connect/transport/framing died — the worker is
//! presumed dead, the job is a candidate for deterministic retry on its
//! ring successor) and [`ConnFailure::Refused`] (the worker answered with a
//! typed error — the worker is fine, the error is forwarded or acted on).

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tvs_serve::json::{self, Value};
use tvs_serve::proto::{read_frame, write_frame, ProtoError, PROTO_VERSION};
use tvs_serve::ServeError;

/// How often an interruptible read re-checks its interrupt condition.
const POLL: Duration = Duration::from_millis(50);

/// Why a forwarded request produced no usable response.
#[derive(Debug)]
pub enum ConnFailure {
    /// The transport failed (connect refused, reset, EOF mid-exchange,
    /// stall, malformed frame) or the caller's interrupt fired: the worker
    /// is presumed dead and in-flight work should be retried elsewhere.
    Lost(String),
    /// The worker is healthy and answered with a typed error response.
    Refused(ServeError),
}

/// A single-request connection to one worker daemon.
pub struct WorkerConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WorkerConn {
    /// Connects to `addr` within `timeout`.
    ///
    /// # Errors
    ///
    /// [`ConnFailure::Lost`] on resolution or connection failure.
    pub fn connect(addr: &str, timeout: Duration) -> Result<WorkerConn, ConnFailure> {
        let sock = addr
            .to_socket_addrs()
            .map_err(|e| ConnFailure::Lost(format!("resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| ConnFailure::Lost(format!("resolve {addr}: no address")))?;
        let stream = TcpStream::connect_timeout(&sock, timeout)
            .map_err(|e| ConnFailure::Lost(format!("connect {addr}: {e}")))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ConnFailure::Lost(format!("clone {addr}: {e}")))?,
        );
        Ok(WorkerConn {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one version-stamped request and blocks for the response.
    /// `read_timeout` bounds the wait for quick operations (`submit`,
    /// `status`, `stats`); `None` means block indefinitely.
    ///
    /// # Errors
    ///
    /// [`ConnFailure::Lost`] on any transport failure, [`ConnFailure::Refused`]
    /// when the worker answers `{"ok":false,...}`.
    pub fn request(
        &mut self,
        request: &Value,
        read_timeout: Option<Duration>,
    ) -> Result<Value, ConnFailure> {
        self.set_read_timeout(read_timeout)?;
        self.send(request)?;
        match read_frame(&mut self.reader) {
            Ok(Some(frame)) => decode(&frame),
            Ok(None) => Err(ConnFailure::Lost("worker hung up".to_owned())),
            Err(e) => Err(ConnFailure::Lost(e.to_string())),
        }
    }

    /// Sends one version-stamped request and blocks until the response
    /// arrives or `interrupted` returns true (checked at frame boundaries
    /// every 50 ms). Made for forwarding `wait`/`fetch`: the health monitor
    /// can mark the worker dead underneath a blocked wait and this read
    /// notices, letting the caller retry the job on a ring successor.
    ///
    /// # Errors
    ///
    /// As [`WorkerConn::request`]; an interrupt surfaces as
    /// [`ConnFailure::Lost`].
    pub fn request_until(
        &mut self,
        request: &Value,
        interrupted: &dyn Fn() -> bool,
    ) -> Result<Value, ConnFailure> {
        self.set_read_timeout(Some(POLL))?;
        self.send(request)?;
        loop {
            match read_frame(&mut self.reader) {
                Ok(Some(frame)) => return decode(&frame),
                Ok(None) => return Err(ConnFailure::Lost("worker hung up".to_owned())),
                Err(ProtoError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if interrupted() {
                        return Err(ConnFailure::Lost("worker marked dead".to_owned()));
                    }
                }
                Err(e) => return Err(ConnFailure::Lost(e.to_string())),
            }
        }
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ConnFailure> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(|e| ConnFailure::Lost(format!("set timeout: {e}")))
    }

    fn send(&mut self, request: &Value) -> Result<(), ConnFailure> {
        let mut request = request.clone();
        if let Value::Obj(pairs) = &mut request {
            if !pairs.iter().any(|(k, _)| k == "v") {
                pairs.push(("v".into(), Value::num_u64(PROTO_VERSION)));
            }
        }
        write_frame(&mut self.writer, &request.to_text()).map_err(|e| match e {
            ProtoError::Io(io) => ConnFailure::Lost(format!("send: {io}")),
            other => ConnFailure::Lost(other.to_string()),
        })
    }
}

/// Parses a worker response frame into ok-document vs typed refusal.
fn decode(frame: &str) -> Result<Value, ConnFailure> {
    let response =
        json::parse(frame).map_err(|e| ConnFailure::Lost(format!("malformed response: {e}")))?;
    match response.get("ok").and_then(Value::as_bool) {
        Some(true) => Ok(response),
        _ => Err(ConnFailure::Refused(ServeError::from_wire(&response))),
    }
}
