//! Per-worker health state and the probe policy.
//!
//! Every worker has a [`WorkerSlot`] holding its address and a small state
//! machine: **alive** until `fail_threshold` consecutive probe failures,
//! **dead** until a probe succeeds again. Two paths feed it:
//!
//! * the **health monitor** thread pings each worker's `stats` op on a
//!   fixed interval with a connect/read timeout, backing off exponentially
//!   (capped) on dead workers so a long-gone machine is not hammered;
//! * the **dispatch path** marks a worker dead immediately when a forwarded
//!   request loses its transport — a connection refused or a socket reset
//!   is better evidence than any probe, and routing must react *now*.
//!
//! Death never edits the hash ring: membership is static configuration,
//! aliveness is a routing-time filter. A worker that comes back keeps the
//! exact vnodes it had, so its share of the key space — and its warm
//! artifact cache — is waiting for it.

use std::sync::Mutex;

/// Consecutive probe failures after which a worker is declared dead.
pub const DEFAULT_FAIL_THRESHOLD: u32 = 2;

/// Cap on the probe back-off exponent for dead workers (2^4 = every 16th
/// health tick).
const MAX_BACKOFF_EXP: u32 = 4;

/// Mutable health state of one worker.
#[derive(Debug, Default)]
struct Health {
    dead: bool,
    consecutive_failures: u32,
    /// Health ticks to skip before the next probe of a dead worker.
    cooldown: u32,
    probes: u64,
    deaths: u64,
    jobs_routed: u64,
    last_error: Option<String>,
}

/// One worker's address plus its lock-guarded health state.
#[derive(Debug)]
pub struct WorkerSlot {
    /// The worker daemon's `host:port` address (also its ring identity).
    pub addr: String,
    state: Mutex<Health>,
}

/// A point-in-time copy of one worker's health, for the `stats` op.
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// Whether the worker is currently routable.
    pub alive: bool,
    /// Consecutive probe/dispatch failures so far.
    pub consecutive_failures: u32,
    /// Probes attempted since startup.
    pub probes: u64,
    /// Times this worker transitioned alive → dead.
    pub deaths: u64,
    /// Submissions (initial placements + retries) routed here.
    pub jobs_routed: u64,
    /// The most recent failure, if any.
    pub last_error: Option<String>,
}

fn lock(m: &Mutex<Health>) -> std::sync::MutexGuard<'_, Health> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl WorkerSlot {
    /// A slot for `addr`, initially alive (the first failed probe or
    /// dispatch will correct optimism within one health interval).
    pub fn new(addr: impl Into<String>) -> WorkerSlot {
        WorkerSlot {
            addr: addr.into(),
            state: Mutex::new(Health::default()),
        }
    }

    /// Whether the worker is currently routable.
    pub fn is_alive(&self) -> bool {
        !lock(&self.state).dead
    }

    /// Records a routed submission (initial placement or retry).
    pub fn note_routed(&self) {
        lock(&self.state).jobs_routed += 1;
    }

    /// Declares the worker dead right now (dispatch saw its transport die).
    /// Returns true when this call performed the alive → dead transition.
    pub fn mark_dead(&self, reason: &str) -> bool {
        let mut h = lock(&self.state);
        h.consecutive_failures = h.consecutive_failures.max(1);
        h.last_error = Some(reason.to_owned());
        let transitioned = !h.dead;
        if transitioned {
            h.dead = true;
            h.deaths += 1;
        }
        transitioned
    }

    /// Whether the health monitor should probe this tick. Alive workers are
    /// probed every tick; dead ones on a capped exponential back-off.
    pub fn due_for_probe(&self) -> bool {
        let mut h = lock(&self.state);
        if h.cooldown > 0 {
            h.cooldown -= 1;
            return false;
        }
        true
    }

    /// Records a probe result; `threshold` is the consecutive-failure count
    /// that flips an alive worker dead. Returns true on the alive → dead
    /// transition so the caller can log it exactly once.
    pub fn note_probe(&self, result: Result<(), String>, threshold: u32) -> bool {
        let mut h = lock(&self.state);
        h.probes += 1;
        match result {
            Ok(()) => {
                h.dead = false;
                h.consecutive_failures = 0;
                h.cooldown = 0;
                h.last_error = None;
                false
            }
            Err(reason) => {
                h.consecutive_failures = h.consecutive_failures.saturating_add(1);
                h.last_error = Some(reason);
                let newly_dead = !h.dead && h.consecutive_failures >= threshold.max(1);
                if newly_dead {
                    h.dead = true;
                    h.deaths += 1;
                }
                if h.dead {
                    let exp = h
                        .consecutive_failures
                        .saturating_sub(threshold.max(1))
                        .min(MAX_BACKOFF_EXP);
                    h.cooldown = (1u32 << exp) - 1;
                }
                newly_dead
            }
        }
    }

    /// A copy of the current health state.
    pub fn snapshot(&self) -> HealthSnapshot {
        let h = lock(&self.state);
        HealthSnapshot {
            alive: !h.dead,
            consecutive_failures: h.consecutive_failures,
            probes: h.probes,
            deaths: h.deaths,
            jobs_routed: h.jobs_routed,
            last_error: h.last_error.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_and_recovery() {
        let slot = WorkerSlot::new("127.0.0.1:1");
        assert!(slot.is_alive());
        assert!(!slot.note_probe(Err("a".into()), 2), "below threshold");
        assert!(slot.is_alive());
        assert!(slot.note_probe(Err("b".into()), 2), "transition reported");
        assert!(!slot.is_alive());
        assert!(!slot.note_probe(Err("c".into()), 2), "already dead");
        assert!(!slot.note_probe(Ok(()), 2));
        assert!(slot.is_alive(), "successful probe revives");
        assert_eq!(slot.snapshot().deaths, 1);
    }

    #[test]
    fn dead_workers_back_off() {
        let slot = WorkerSlot::new("127.0.0.1:1");
        slot.note_probe(Err("x".into()), 1);
        assert!(!slot.is_alive());
        // Exponent grows with consecutive failures; cooldown skips ticks.
        slot.note_probe(Err("x".into()), 1);
        let mut skipped = 0;
        while !slot.due_for_probe() {
            skipped += 1;
            assert!(skipped < 32, "cooldown must be capped");
        }
        assert!(skipped >= 1, "second failure must impose a cooldown");
    }

    #[test]
    fn dispatch_death_is_immediate() {
        let slot = WorkerSlot::new("127.0.0.1:1");
        assert!(slot.mark_dead("connection reset"));
        assert!(!slot.is_alive());
        assert!(!slot.mark_dead("again"), "second mark is not a transition");
        assert_eq!(slot.snapshot().deaths, 1);
        assert_eq!(
            slot.snapshot().last_error.as_deref(),
            Some("again"),
            "latest reason is kept"
        );
    }
}
