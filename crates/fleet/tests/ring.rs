//! Hash-ring properties the fleet's correctness leans on: balanced shards,
//! bounded and directional key movement on membership change, and routing
//! that cannot depend on the order workers were registered in.

use tvs_fleet::Ring;
use tvs_stitch::fnv1a;

const WORKERS: [&str; 3] = ["10.0.0.1:7071", "10.0.0.2:7071", "10.0.0.3:7071"];
const KEYS: usize = 10_000;

fn sample_keys() -> Vec<u64> {
    (0..KEYS)
        .map(|i| fnv1a(format!("key-{i}").as_bytes()))
        .collect()
}

fn ring_of(addrs: &[&str], vnodes: usize) -> Ring {
    let mut ring = Ring::new(vnodes);
    for addr in addrs {
        ring.add(addr);
    }
    ring
}

fn owner(ring: &Ring, key: u64) -> &str {
    ring.route(key, |_| true).expect("non-empty ring routes")
}

#[test]
fn keys_distribute_roughly_uniformly_across_workers() {
    let ring = ring_of(&WORKERS, 64);
    let mut counts = std::collections::BTreeMap::new();
    for key in sample_keys() {
        *counts.entry(owner(&ring, key).to_owned()).or_insert(0usize) += 1;
    }
    assert_eq!(counts.len(), WORKERS.len(), "every worker owns some keys");
    // Expected share is 1/3; 64 vnodes keeps every shard well inside
    // [half, double] of that.
    for (addr, count) in &counts {
        let share = *count as f64 / KEYS as f64;
        assert!(
            (0.1666..=0.6666).contains(&share),
            "worker {addr} owns a {share:.3} share; ring is badly skewed"
        );
    }
}

#[test]
fn adding_a_worker_steals_keys_only_for_itself() {
    let before = ring_of(&WORKERS, 64);
    let joined = "10.0.0.4:7071";
    let mut after = before.clone();
    after.add(joined);

    let mut moved = 0usize;
    for key in sample_keys() {
        let old = owner(&before, key);
        let new = owner(&after, key);
        if new != old {
            // Consistent hashing's defining property: a join may only move
            // keys *to* the joiner, never shuffle them between survivors.
            assert_eq!(new, joined, "key {key:#018x} moved {old} -> {new}");
            moved += 1;
        }
    }
    let fraction = moved as f64 / KEYS as f64;
    // The joiner's fair share is 1/4 of the key space.
    assert!(
        (0.10..=0.45).contains(&fraction),
        "join moved a {fraction:.3} fraction of keys (expected ≈ 0.25)"
    );
}

#[test]
fn removing_a_worker_moves_only_its_keys() {
    let before = ring_of(&WORKERS, 64);
    let leaver = WORKERS[1];
    let mut after = before.clone();
    after.remove(leaver);

    for key in sample_keys() {
        let old = owner(&before, key);
        let new = owner(&after, key);
        if old == leaver {
            assert_ne!(new, leaver);
            // The orphaned key lands exactly on its old failover successor,
            // which is what makes death-rerouting deterministic.
            let failover = before
                .successors(key)
                .into_iter()
                .find(|a| *a != leaver)
                .expect("two survivors remain")
                .to_owned();
            assert_eq!(new, failover, "key {key:#018x} skipped its successor");
        } else {
            assert_eq!(old, new, "a survivor's key moved on an unrelated leave");
        }
    }
}

#[test]
fn routing_is_independent_of_registration_order() {
    let forward = ring_of(&WORKERS, 64);
    let reversed = {
        let mut addrs = WORKERS;
        addrs.reverse();
        ring_of(&addrs, 64)
    };
    for key in sample_keys() {
        assert_eq!(
            forward.successors(key),
            reversed.successors(key),
            "successor order for key {key:#018x} depends on registration order"
        );
    }
}

#[test]
fn route_skips_dead_workers_in_successor_order() {
    let ring = ring_of(&WORKERS, 64);
    for key in sample_keys().into_iter().take(100) {
        let order = ring.successors(key);
        assert_eq!(order.len(), WORKERS.len());
        let home = order[0].to_owned();
        let rerouted = ring
            .route(key, |addr| addr != home)
            .expect("two live workers remain");
        assert_eq!(rerouted, order[1], "death must fail over to the successor");
    }
    assert_eq!(ring.route(42, |_| false), None, "all dead routes nowhere");
}

#[test]
fn readding_a_worker_restores_its_exact_key_ranges() {
    let original = ring_of(&WORKERS, 64);
    let mut churned = original.clone();
    churned.remove(WORKERS[0]);
    churned.add(WORKERS[0]);
    for key in sample_keys() {
        assert_eq!(owner(&original, key), owner(&churned, key));
    }
}
