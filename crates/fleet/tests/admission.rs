//! Coordinator-side lint admission: a deny-level netlist is rejected
//! locally with the typed `rejected` error before any worker sees it, the
//! verdict is cached per artifact key, and the `lint` op is answered by
//! the coordinator itself.

use tvs_fleet::{Coordinator, CoordinatorConfig};
use tvs_serve::json::Value;
use tvs_serve::{Client, ServeError, Server, ServerConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A netlist whose builder trips on the `b <-> c` combinational cycle.
const CYCLIC: &str = "INPUT(a)\nOUTPUT(y)\nb = AND(a, c)\nc = NOT(b)\ny = AND(a, b)\n";

#[test]
fn coordinator_rejects_deny_level_netlists_before_routing() {
    let cache = temp_dir("admission-worker");
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".into(),
        cache_dir: cache.clone(),
        workers: 1,
        queue_capacity: 4,
        checkpoint_every: 0,
        cache_cap_bytes: 0,
        client_quota: 0,
    })
    .expect("bind worker");
    let worker_addr = server.local_addr().expect("worker addr").to_string();
    let worker_thread = std::thread::spawn(move || server.run().expect("worker run"));

    let coordinator = Coordinator::bind(&CoordinatorConfig {
        listen: "127.0.0.1:0".into(),
        workers: vec![worker_addr.clone()],
        health_interval: std::time::Duration::from_secs(120),
        ..CoordinatorConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator.local_addr().expect("addr").to_string();
    let coordinator_thread = std::thread::spawn(move || coordinator.run().expect("run"));

    // The coordinator speaks the worker protocol, so the stock client works.
    let mut client = Client::connect(&addr).expect("connect");

    // Lint op: answered locally, reports the cycle.
    let (admitted, lint) = client.lint("cyclic", CYCLIC).expect("lint op");
    assert!(!admitted);
    assert!(lint.to_text().contains("IR004"));

    // Submit: typed rejection without touching the worker's job count.
    let err = client
        .submit("cyclic", CYCLIC, Value::Obj(vec![]))
        .expect_err("cyclic submit must fail");
    match &err {
        ServeError::Rejected {
            diagnostics,
            cached,
        } => {
            assert!(!cached);
            assert!(diagnostics.contains("IR004"), "{diagnostics}");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // Resubmission hits the coordinator's rejection cache.
    let err = client
        .submit("cyclic", CYCLIC, Value::Obj(vec![]))
        .expect_err("cached cyclic submit must fail");
    match &err {
        ServeError::Rejected { cached, .. } => assert!(cached),
        other => panic!("expected cached Rejected, got {other:?}"),
    }

    // The worker never issued a job for either attempt.
    let mut worker_client = Client::connect(&worker_addr).expect("worker connect");
    let worker_stats = worker_client.stats().expect("worker stats");
    let issued = worker_stats
        .get("server")
        .and_then(|s| s.get("jobs_issued"))
        .and_then(Value::as_u64);
    assert_eq!(issued, Some(0), "rejection must not reach the worker");

    // A clean submission still routes.
    let clean = "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, q)\n";
    let (job, _) = client
        .submit("clean", clean, Value::Obj(vec![]))
        .expect("clean submit");
    let status = client.wait(&job).expect("wait");
    assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));

    client.shutdown().expect("shutdown");
    coordinator_thread.join().expect("coordinator join");
    worker_thread.join().expect("worker join");
    let _ = std::fs::remove_dir_all(&cache);
}
