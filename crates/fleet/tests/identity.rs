//! The fleet identity guarantee: one submission produces byte-identical
//! artifacts whether it runs through a direct engine invocation, a single
//! `tvs serve` daemon, or a fleet of workers behind the coordinator — and
//! the guarantee holds even when the job's worker dies mid-job and the
//! coordinator retries it on the ring successor.

use std::io::{BufReader, BufWriter};

use tvs_core::jobs::render_artifact;
use tvs_core::SubmissionIdentity;
use tvs_fleet::{Coordinator, CoordinatorConfig, Ring};
use tvs_serve::json::{self, Value};
use tvs_serve::proto::{read_frame, write_frame};
use tvs_serve::{Client, Server, ServerConfig};
use tvs_stitch::{StitchConfig, StitchEngine};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tvs-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn s444() -> (tvs_netlist::Netlist, String) {
    let netlist = tvs_circuits::profile("s444").expect("s444 profile").build();
    let bench = tvs_netlist::bench::to_string(&netlist);
    (netlist, bench)
}

/// Renders the reference artifact: a direct, in-process engine run through
/// the same serializer the workers use.
fn direct_artifact(netlist: &tvs_netlist::Netlist, bench: &str, seed: u64) -> String {
    let config = StitchConfig {
        seed,
        threads: 1,
        ..StitchConfig::default()
    };
    let report = StitchEngine::new(netlist)
        .expect("engine")
        .run(&config)
        .expect("direct run");
    let key = SubmissionIdentity::of(netlist, bench, &config).key;
    render_artifact(netlist, &report, &config, key).to_text()
}

fn start_worker(tag: &str) -> (String, std::thread::JoinHandle<()>, std::path::PathBuf) {
    let cache = temp_dir(tag);
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".into(),
        cache_dir: cache.clone(),
        workers: 2,
        queue_capacity: 8,
        checkpoint_every: 4,
        cache_cap_bytes: 0,
        client_quota: 0,
    })
    .expect("bind worker");
    let addr = server.local_addr().expect("worker addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("worker run"));
    (addr, handle, cache)
}

fn start_coordinator(workers: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(&CoordinatorConfig {
        listen: "127.0.0.1:0".into(),
        workers,
        // Keep the prober quiet for the test's duration: death detection in
        // these tests must come from the dispatch path, deterministically.
        health_interval: std::time::Duration::from_secs(120),
        ..CoordinatorConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator
        .local_addr()
        .expect("coordinator addr")
        .to_string();
    let handle = std::thread::spawn(move || coordinator.run().expect("coordinator run"));
    (addr, handle)
}

fn seed_config(seed: u64) -> Value {
    Value::Obj(vec![("seed".into(), Value::num_u64(seed))])
}

#[test]
fn fleet_artifact_matches_single_serve_and_direct_run() {
    let (netlist, bench) = s444();
    let reference = direct_artifact(&netlist, &bench, 11);

    // Path 2: one plain serve daemon, cold cache.
    let (solo_addr, solo_thread, solo_cache) = start_worker("solo");
    let mut solo = Client::connect(&solo_addr).expect("connect solo");
    let (job, admission) = solo
        .submit("s444", &bench, seed_config(11))
        .expect("solo submit");
    assert_eq!(admission, "miss");
    let solo_artifact = solo.fetch(&job).expect("solo fetch").to_text();
    assert_eq!(
        solo_artifact, reference,
        "single serve diverged from direct"
    );

    // Path 3: a three-worker fleet, every cache cold.
    let mut workers = Vec::new();
    for i in 0..3 {
        workers.push(start_worker(&format!("w{i}")));
    }
    let (fleet_addr, fleet_thread) =
        start_coordinator(workers.iter().map(|(a, _, _)| a.clone()).collect());
    let mut fleet = Client::connect(&fleet_addr).expect("connect fleet");
    let (job, admission) = fleet
        .submit("s444", &bench, seed_config(11))
        .expect("fleet submit");
    assert_eq!(admission, "miss");
    let fleet_artifact = fleet.fetch(&job).expect("fleet fetch").to_text();
    assert_eq!(fleet_artifact, reference, "fleet diverged from direct");

    // Resubmitting through the coordinator hits the owning worker's cache.
    let (_, admission) = fleet
        .submit("s444", &bench, seed_config(11))
        .expect("fleet resubmit");
    assert_eq!(admission, "cache-hit");

    // Tear down: fleet shutdown drains the coordinator and its workers.
    solo.shutdown().expect("solo shutdown");
    solo_thread.join().expect("solo thread");
    fleet.shutdown().expect("fleet shutdown");
    fleet_thread.join().expect("fleet thread");
    for (_, handle, cache) in workers {
        handle.join().expect("worker thread");
        let _ = std::fs::remove_dir_all(&cache);
    }
    let _ = std::fs::remove_dir_all(&solo_cache);
}

#[test]
fn edited_resubmission_homes_to_the_same_worker_for_delta_reuse() {
    let (netlist, bench) = s444();
    // One combinational gate flipped to its same-arity dual: a different
    // netlist root (and artifact key) but the same routing family.
    let gate_id = netlist
        .gate_ids()
        .find(|&id| {
            matches!(
                netlist.gate(id).kind(),
                tvs_netlist::GateKind::And | tvs_netlist::GateKind::Or
            )
        })
        .expect("a flippable gate");
    let kind = netlist.gate(gate_id).kind();
    let dual = match kind {
        tvs_netlist::GateKind::And => tvs_netlist::GateKind::Or,
        _ => tvs_netlist::GateKind::And,
    };
    let name = netlist.gate_name(gate_id);
    let edited = bench.replacen(
        &format!("{name} = {}(", kind.keyword()),
        &format!("{name} = {}(", dual.keyword()),
        1,
    );
    assert_ne!(bench, edited, "edit did not take");

    let mut workers = Vec::new();
    for i in 0..3 {
        workers.push(start_worker(&format!("family-w{i}")));
    }
    let (fleet_addr, fleet_thread) =
        start_coordinator(workers.iter().map(|(a, _, _)| a.clone()).collect());
    let mut client = Client::connect(&fleet_addr).expect("connect fleet");

    let submit_raw = |client: &mut Client, bench: &str| {
        client
            .request(&Value::Obj(vec![
                ("op".into(), Value::str("submit")),
                ("name".into(), Value::str("s444")),
                ("bench".into(), Value::str(bench.to_owned())),
                ("config".into(), seed_config(11)),
            ]))
            .expect("fleet submit")
    };
    let base_response = submit_raw(&mut client, &bench);
    let base_job = base_response
        .get("job")
        .and_then(Value::as_str)
        .expect("base job")
        .to_owned();
    client.wait(&base_job).expect("base wait");

    let edited_response = submit_raw(&mut client, &edited);
    assert_eq!(
        edited_response.get("admission").and_then(Value::as_str),
        Some("miss"),
        "an edited netlist is a different artifact key"
    );
    assert_eq!(
        edited_response.get("worker").and_then(Value::as_str),
        base_response.get("worker").and_then(Value::as_str),
        "the edit must home to the worker holding the ancestor manifest"
    );
    let edited_job = edited_response
        .get("job")
        .and_then(Value::as_str)
        .expect("edited job")
        .to_owned();

    // The delta run is byte-identical to a direct run of the edited text.
    let edited_netlist = tvs_netlist::bench::parse("s444", &edited).expect("edited parses");
    let canonical = tvs_netlist::bench::to_string(&edited_netlist);
    let reference = direct_artifact(&edited_netlist, &canonical, 11);
    let artifact = client.fetch(&edited_job).expect("fetch edited").to_text();
    assert_eq!(artifact, reference, "fleet delta run diverged from direct");

    client.shutdown().expect("fleet shutdown");
    fleet_thread.join().expect("fleet thread");
    for (_, handle, cache) in workers {
        handle.join().expect("worker thread");
        let _ = std::fs::remove_dir_all(&cache);
    }
}

/// A worker impostor that accepts submissions and then "crashes": `stats`
/// probes and `submit` are answered normally, but the first blocking op
/// (`wait`/`fetch`) drops the connection unanswered and stops listening,
/// exactly like a process killed mid-job.
fn doomed_worker() -> (String, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind doomed");
    let addr = listener.local_addr().expect("doomed addr").to_string();
    let handle = std::thread::spawn(move || {
        for stream in listener.incoming() {
            let stream = match stream {
                Ok(s) => s,
                Err(_) => return,
            };
            let mut reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let mut writer = BufWriter::new(stream);
            let frame = match read_frame(&mut reader) {
                Ok(Some(f)) => f,
                _ => continue,
            };
            let request = json::parse(&frame).expect("request parses");
            let response = match request.get("op").and_then(Value::as_str) {
                Some("stats") => Value::Obj(vec![
                    ("ok".into(), Value::Bool(true)),
                    (
                        "stats".into(),
                        Value::Obj(vec![("counters".into(), Value::Obj(vec![]))]),
                    ),
                    ("server".into(), Value::Obj(vec![])),
                ]),
                Some("submit") => Value::Obj(vec![
                    ("ok".into(), Value::Bool(true)),
                    ("job".into(), Value::str("x1")),
                    ("admission".into(), Value::str("miss")),
                ]),
                // The crash: no response, connection dropped, no more
                // accepts. The coordinator sees EOF mid-`wait`.
                _ => return,
            };
            let _ = write_frame(&mut writer, &response.to_text());
        }
    });
    (addr, handle)
}

#[test]
fn worker_death_mid_job_retries_on_the_ring_successor_byte_identically() {
    let (netlist, bench) = s444();
    let (doomed_addr, doomed_thread) = doomed_worker();
    let (real_addr, real_thread, real_cache) = start_worker("survivor");

    // Find a seed whose artifact key routes to the doomed worker first, so
    // the death-and-retry path is exercised deterministically.
    let mut ring = Ring::new(64);
    ring.add(&doomed_addr);
    ring.add(&real_addr);
    // The coordinator routes by *family* (interface signature + config),
    // so the seed search must hash the same way.
    let seed = (0..256u64)
        .find(|&seed| {
            let config = StitchConfig {
                seed,
                ..StitchConfig::default()
            };
            let identity = SubmissionIdentity::of(&netlist, &bench, &config);
            ring.successors(identity.family(&config))[0] == doomed_addr
        })
        .expect("some seed routes home to the doomed worker");
    let reference = direct_artifact(&netlist, &bench, seed);

    let (fleet_addr, fleet_thread) =
        start_coordinator(vec![doomed_addr.clone(), real_addr.clone()]);
    let mut client = Client::connect(&fleet_addr).expect("connect fleet");

    // The submission lands on the doomed worker (assert via the routing
    // field in the raw response).
    let submit = client
        .request(&Value::Obj(vec![
            ("op".into(), Value::str("submit")),
            ("name".into(), Value::str("s444")),
            ("bench".into(), Value::str(bench.clone())),
            ("config".into(), seed_config(seed)),
        ]))
        .expect("fleet submit");
    assert_eq!(
        submit.get("worker").and_then(Value::as_str),
        Some(doomed_addr.as_str()),
        "seed search must place the job on the doomed worker"
    );
    let job = submit
        .get("job")
        .and_then(Value::as_str)
        .expect("job id")
        .to_owned();

    // `wait` hits the crash, the coordinator marks the worker dead and
    // replays the job on the survivor — the client just sees it finish.
    let status = client.wait(&job).expect("wait survives the worker death");
    assert_eq!(status.get("state").and_then(Value::as_str), Some("done"));

    let artifact = client.fetch(&job).expect("fetch retried job").to_text();
    assert_eq!(
        artifact, reference,
        "retried artifact must be byte-identical to the direct run"
    );

    // The fleet's stats expose the death and the reroute.
    let stats = client.stats().expect("fleet stats");
    let fleet_gauges = stats.get("fleet").expect("fleet gauges");
    assert_eq!(
        fleet_gauges.get("worker_deaths").and_then(Value::as_u64),
        Some(1)
    );
    assert_eq!(fleet_gauges.get("alive").and_then(Value::as_u64), Some(1));
    let workers = match stats.get("workers") {
        Some(Value::Arr(entries)) => entries,
        other => panic!("workers array missing: {other:?}"),
    };
    let entry = |addr: &str| {
        workers
            .iter()
            .find(|w| w.get("addr").and_then(Value::as_str) == Some(addr))
            .unwrap_or_else(|| panic!("no stats entry for {addr}"))
    };
    let doomed = entry(&doomed_addr);
    assert_eq!(doomed.get("alive").and_then(Value::as_bool), Some(false));
    assert_eq!(doomed.get("deaths").and_then(Value::as_u64), Some(1));
    assert_eq!(doomed.get("jobs_routed").and_then(Value::as_u64), Some(1));
    let survivor = entry(&real_addr);
    assert_eq!(survivor.get("alive").and_then(Value::as_bool), Some(true));
    assert_eq!(
        survivor.get("jobs_routed").and_then(Value::as_u64),
        Some(1),
        "the retry must have been routed to the survivor"
    );

    client.shutdown().expect("fleet shutdown");
    fleet_thread.join().expect("fleet thread");
    real_thread.join().expect("survivor thread");
    doomed_thread.join().expect("doomed thread");
    let _ = std::fs::remove_dir_all(&real_cache);
}
