//! Deterministic parallel execution + instrumentation substrate.
//!
//! The stitched-generation flow spends nearly all of its time in
//! embarrassingly parallel loops — per-fault bit-parallel simulation
//! batches, per-candidate vector scoring, per-profile table runs. This crate
//! provides the execution layer those loops share:
//!
//! * [`ThreadPool`] — a std-only work-stealing thread pool with
//!   [`scope`](ThreadPool::scope)-based fan-out over borrowed data and
//!   order-preserving [`map`](ThreadPool::map) /
//!   [`map_chunked`](ThreadPool::map_chunked) reductions. Results always come
//!   back in input order, so parallel runs stay **bit-identical** to
//!   sequential ones (the workspace's seeded-determinism invariant,
//!   DESIGN.md §6.4). At `threads = 1` every entry point degrades to a plain
//!   sequential loop on the calling thread — the guaranteed fallback.
//! * Instrumentation — process-wide named atomic [`counter`]s, wall-clock
//!   [`span`] timers and a [`report`] snapshot the CLI renders as a
//!   `--stats` table.
//! * Robustness substrate — deterministic work [`Budget`]s (work units, never
//!   wall clock), panic-capturing [`try_map`](ThreadPool::try_map) with a
//!   deterministic [`TaskPanic`] outcome, and the [`inject`] chaos-testing
//!   registry (compiled out in release builds).
//! * Serving substrate — [`JobQueue`], a bounded multi-producer job queue
//!   with long-lived workers and cloneable [`JobHandle`]s, the admission /
//!   single-flight primitive under the `tvs-serve` daemon.
//!
//! # Determinism contract
//!
//! Work items handed to `map`/`map_chunked` must be pure functions of their
//! inputs (no shared mutable state, no ambient randomness). Under that
//! contract the pool guarantees the reduced output is independent of thread
//! count, scheduling order and steal pattern, because reduction happens by
//! input index, never by completion order.
//!
//! # Examples
//!
//! ```
//! use tvs_exec::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]); // input order, always
//! ```

#![warn(missing_docs)]

mod budget;
pub mod inject;
mod pool;
mod queue;
mod stats;

pub use budget::Budget;
pub use pool::{default_threads, Scope, TaskPanic, ThreadPool};
pub use queue::{JobHandle, JobPanicked, JobQueue, QueueFull};
pub use stats::{counter, report, reset_stats, span, Counter, Report, SpanGuard};
