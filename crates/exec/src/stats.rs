//! Process-wide instrumentation: named atomic counters, span timers and a
//! renderable [`Report`] snapshot.
//!
//! Counters and timers are registered lazily by name in a global registry so
//! any crate can increment `fault.slots_simulated` or time `stitch.cycle`
//! without plumbing handles through every call chain. Hot paths should cache
//! the [`Counter`] handle (an `Arc<AtomicU64>`) instead of re-resolving the
//! name each time.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Locks `mutex`, recovering the guard if a panicking task poisoned it.
///
/// Every mutex in this crate protects plain collections that are left in a
/// consistent state at any panic point, so poison carries no correctness
/// signal here — recovering keeps an isolated work-item panic from cascading
/// into an abort of every later registry or queue access.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One named monotonically increasing event counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the counter with an absolute value. For gauges (current
    /// cache bytes, open jobs) that track a level rather than a count.
    #[inline]
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// Accumulated wall-clock time for one named span.
struct TimerCell {
    nanos: AtomicU64,
    entries: AtomicU64,
}

struct Registry {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    timers: Mutex<HashMap<String, Arc<TimerCell>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(HashMap::new()),
        timers: Mutex::new(HashMap::new()),
    })
}

/// Returns the counter registered under `name`, creating it at zero on first
/// use. The returned handle can be cached and shared freely across threads.
pub fn counter(name: &str) -> Counter {
    let mut counters = lock_unpoisoned(&registry().counters);
    let cell = counters
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(AtomicU64::new(0)));
    Counter(Arc::clone(cell))
}

/// Starts timing the span registered under `name`; the elapsed wall-clock
/// time is accumulated when the returned guard drops.
///
/// # Examples
///
/// ```
/// {
///     let _timer = tvs_exec::span("doc.example");
///     // ... timed work ...
/// }
/// assert!(tvs_exec::report().timers.iter().any(|t| t.name == "doc.example"));
/// ```
pub fn span(name: &str) -> SpanGuard {
    let mut timers = lock_unpoisoned(&registry().timers);
    let cell = timers.entry(name.to_owned()).or_insert_with(|| {
        Arc::new(TimerCell {
            nanos: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        })
    });
    SpanGuard {
        cell: Arc::clone(cell),
        started: Instant::now(),
    }
}

/// RAII guard returned by [`span`]; accumulates elapsed time on drop.
pub struct SpanGuard {
    cell: Arc<TimerCell>,
    started: Instant,
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard").finish_non_exhaustive()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.cell.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.cell.entries.fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of one counter in a [`Report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Registered counter name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Snapshot of one span timer in a [`Report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimerSnapshot {
    /// Registered span name.
    pub name: String,
    /// Total accumulated wall-clock nanoseconds.
    pub total_nanos: u64,
    /// Number of completed spans.
    pub entries: u64,
}

/// A point-in-time snapshot of every registered counter and timer, sorted by
/// name. `Display` renders the `--stats` table the CLI prints.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All span timers, sorted by name.
    pub timers: Vec<TimerSnapshot>,
}

impl Report {
    /// Looks up a counter value by name, defaulting to 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Renders the report as machine-readable JSON:
    /// `{"counters":{...},"timers":{name:{"total_nanos":n,"entries":n}}}`.
    ///
    /// Keys come out in the report's sorted order, so two snapshots of the
    /// same state serialize byte-identically. This is the serializer behind
    /// `tvs run --stats-json` and the serve daemon's `stats` response.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json_escape(&c.name), c.value));
        }
        out.push_str("},\"timers\":{");
        for (i, t) in self.timers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"total_nanos\":{},\"entries\":{}}}",
                json_escape(&t.name),
                t.total_nanos,
                t.entries
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Takes a [`Report`] snapshot of the global registry.
pub fn report() -> Report {
    let mut counters: Vec<CounterSnapshot> = lock_unpoisoned(&registry().counters)
        .iter()
        .map(|(name, cell)| CounterSnapshot {
            name: name.clone(),
            value: cell.load(Ordering::Relaxed),
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));
    let mut timers: Vec<TimerSnapshot> = lock_unpoisoned(&registry().timers)
        .iter()
        .map(|(name, cell)| TimerSnapshot {
            name: name.clone(),
            total_nanos: cell.nanos.load(Ordering::Relaxed),
            entries: cell.entries.load(Ordering::Relaxed),
        })
        .collect();
    timers.sort_by(|a, b| a.name.cmp(&b.name));
    Report { counters, timers }
}

/// Resets every registered counter and timer to zero. Handles cached by hot
/// paths stay valid (the cells are zeroed, not replaced).
pub fn reset_stats() {
    for cell in lock_unpoisoned(&registry().counters).values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in lock_unpoisoned(&registry().timers).values() {
        cell.nanos.store(0, Ordering::Relaxed);
        cell.entries.store(0, Ordering::Relaxed);
    }
}

fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counters.is_empty() && self.timers.is_empty() {
            return writeln!(f, "(no stats recorded)");
        }
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .chain(self.timers.iter().map(|t| t.name.len()))
            .max()
            .unwrap_or(0)
            .max("counter".len());
        if !self.counters.is_empty() {
            writeln!(f, "{:<width$}  {:>14}", "counter", "value")?;
            for c in &self.counters {
                writeln!(f, "{:<width$}  {:>14}", c.name, c.value)?;
            }
        }
        if !self.timers.is_empty() {
            if !self.counters.is_empty() {
                writeln!(f)?;
            }
            writeln!(f, "{:<width$}  {:>14}  {:>8}", "span", "total", "entries")?;
            for t in &self.timers {
                writeln!(
                    f,
                    "{:<width$}  {:>14}  {:>8}",
                    t.name,
                    format_nanos(t.total_nanos),
                    t.entries
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests share the process-global registry with each other
    // and with pool tests, so they assert on deltas / private names only.

    #[test]
    fn counter_accumulates_and_snapshots() {
        let c = counter("test.stats.alpha");
        let before = c.get();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), before + 10);
        assert_eq!(report().counter("test.stats.alpha"), before + 10);
        assert_eq!(report().counter("test.stats.never_registered"), 0);
    }

    #[test]
    fn same_name_same_cell() {
        let a = counter("test.stats.shared");
        let b = counter("test.stats.shared");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), b.get());
        assert!(a.get() >= 7);
    }

    #[test]
    fn span_records_time_and_entries() {
        {
            let _guard = span("test.stats.span");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = report();
        let t = snap
            .timers
            .iter()
            .find(|t| t.name == "test.stats.span")
            .expect("span registered");
        assert!(t.entries >= 1);
        assert!(
            t.total_nanos >= 1_000_000,
            "slept 2ms, saw {}ns",
            t.total_nanos
        );
    }

    #[test]
    fn report_renders_sorted_table() {
        counter("test.stats.render.b").incr();
        counter("test.stats.render.a").incr();
        let snap = report();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let ia = names
            .iter()
            .position(|n| *n == "test.stats.render.a")
            .unwrap();
        let ib = names
            .iter()
            .position(|n| *n == "test.stats.render.b")
            .unwrap();
        assert!(ia < ib, "counters sorted by name");
        let rendered = snap.to_string();
        assert!(rendered.contains("test.stats.render.a"));
        assert!(rendered.contains("counter"));
    }

    #[test]
    fn json_report_is_structured_and_escaped() {
        counter("test.stats.json \"q\"").add(3);
        let json = report().to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains(r#""test.stats.json \"q\"":3"#), "{json}");
        assert!(json.contains("\"timers\":{"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
    }

    #[test]
    fn format_nanos_units() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1_500), "1.500us");
        assert_eq!(format_nanos(2_000_000), "2.000ms");
        assert_eq!(format_nanos(3_500_000_000), "3.500s");
    }
}
