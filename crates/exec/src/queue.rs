//! A bounded job queue with long-lived workers and shareable job handles.
//!
//! The [`ThreadPool`](crate::ThreadPool) serves barrier-style fan-out: a
//! caller scopes a batch, helps execute it and collects everything before
//! moving on. A *serving* workload is shaped differently — jobs arrive one
//! at a time from many producers, run for seconds, and several parties may
//! want the same job's result. [`JobQueue`] covers that shape:
//!
//! * **Bounded admission.** The queue admits at most `capacity` unfinished
//!   jobs (queued + running). [`submit`](JobQueue::submit) never blocks: a
//!   full queue is a typed [`QueueFull`] the caller turns into backpressure
//!   (the serve layer's `busy` response) instead of an unbounded pile-up.
//! * **Shareable handles.** [`JobHandle`] is a cheap clone; any number of
//!   waiters can block on ([`wait`](JobHandle::wait)) or poll
//!   ([`try_get`](JobHandle::try_get)) the same job. This is the primitive
//!   under single-flight deduplication: N identical requests share one
//!   handle and therefore one execution.
//! * **Ready handles.** [`JobHandle::ready`] wraps an already-known value
//!   (a cache hit) in the same interface as a live job, so consumers need
//!   not branch on provenance.
//! * **Typed panics.** A panicking job resolves its handle to a
//!   [`JobPanicked`] carrying the stringified payload — waiters get an
//!   error, the workers survive.
//!
//! Jobs execute in FIFO submission order per worker pickup; with one worker
//! the order is exactly FIFO. The queue makes no determinism claim about
//! *interleaving* across workers — determinism of job *results* is the
//! submitted closures' business (the stitch engine guarantees it by
//! construction).

use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::stats::{self, lock_unpoisoned};

/// A queued unit of work producing a `T`.
type Job<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// The queue was at capacity; the job was **not** admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueFull {
    /// Unfinished jobs (queued + running) at rejection time.
    pub open: usize,
    /// The queue's admission bound.
    pub capacity: usize,
}

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job queue full: {} unfinished jobs at capacity {}",
            self.open, self.capacity
        )
    }
}

impl std::error::Error for QueueFull {}

/// The job this handle tracks panicked instead of producing a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanicked {
    /// Stringified panic payload.
    pub message: String,
}

impl fmt::Display for JobPanicked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanicked {}

/// Completion cell shared by a job and every handle cloned from it.
struct JobCell<T> {
    slot: Mutex<Option<Result<Arc<T>, JobPanicked>>>,
    done: Condvar,
}

/// A cheap, cloneable ticket for one job's eventual result.
///
/// All clones observe the same completion; results are shared as `Arc<T>`
/// so many waiters never copy the value.
pub struct JobHandle<T> {
    cell: Arc<JobCell<T>>,
}

impl<T> Clone for JobHandle<T> {
    fn clone(&self) -> Self {
        JobHandle {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<T> fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl<T> JobHandle<T> {
    fn pending() -> Self {
        JobHandle {
            cell: Arc::new(JobCell {
                slot: Mutex::new(None),
                done: Condvar::new(),
            }),
        }
    }

    /// A handle that is already complete with `value` — a cache hit wearing
    /// the same interface as a live job.
    pub fn ready(value: T) -> Self {
        let handle = JobHandle::pending();
        handle.fulfill(Ok(Arc::new(value)));
        handle
    }

    fn fulfill(&self, result: Result<Arc<T>, JobPanicked>) {
        let mut slot = lock_unpoisoned(&self.cell.slot);
        if slot.is_none() {
            *slot = Some(result);
        }
        self.cell.done.notify_all();
    }

    /// Whether the job has reached a terminal state.
    pub fn is_finished(&self) -> bool {
        lock_unpoisoned(&self.cell.slot).is_some()
    }

    /// The result if the job already finished, without blocking.
    pub fn try_get(&self) -> Option<Result<Arc<T>, JobPanicked>> {
        lock_unpoisoned(&self.cell.slot).clone()
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> Result<Arc<T>, JobPanicked> {
        let mut slot = lock_unpoisoned(&self.cell.slot);
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self
                .cell
                .done
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

struct QueueState<T> {
    jobs: VecDeque<(Job<T>, JobHandle<T>)>,
    /// Queued + running jobs: the quantity the capacity bounds.
    open: usize,
    shutdown: bool,
}

struct QueueShared<T> {
    state: Mutex<QueueState<T>>,
    /// Workers park here when the queue is empty.
    work: Condvar,
    /// Producers/drainers park here waiting for `open` to drop.
    settled: Condvar,
    capacity: usize,
}

/// A bounded multi-producer job queue executed by dedicated worker threads.
///
/// Dropping the queue drains it: workers finish every admitted job (queued
/// jobs included) before joining, so no accepted work is ever lost.
///
/// # Examples
///
/// ```
/// use tvs_exec::JobQueue;
///
/// let queue: JobQueue<u64> = JobQueue::new(2, 8);
/// let handle = queue.submit(|| 6 * 7).expect("under capacity");
/// assert_eq!(*handle.wait().expect("no panic"), 42);
/// ```
pub struct JobQueue<T> {
    shared: Arc<QueueShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

impl<T> fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobQueue")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .field("open", &lock_unpoisoned(&self.shared.state).open)
            .finish()
    }
}

impl<T: Send + Sync + 'static> JobQueue<T> {
    /// Creates a queue served by `workers` threads (clamped to at least 1)
    /// admitting at most `capacity` unfinished jobs (clamped likewise).
    ///
    /// If the OS refuses a worker thread the queue degrades to however many
    /// it got; admission keeps working as long as one worker exists, and
    /// even a fully worker-less queue still drains on drop (inline).
    pub fn new(workers: usize, capacity: usize) -> Self {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            settled: Condvar::new(),
            capacity: capacity.max(1),
        });
        let workers = (0..workers.max(1))
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tvs-queue-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        JobQueue { shared, workers }
    }

    /// Admits `job` if the queue has room, returning a shareable handle for
    /// its result.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] when `capacity` jobs are already unfinished; the job is
    /// not admitted and the caller should shed load (the typed backpressure
    /// the serve layer surfaces as `busy`).
    pub fn submit(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> Result<JobHandle<T>, QueueFull> {
        let mut state = lock_unpoisoned(&self.shared.state);
        if state.open >= self.shared.capacity || state.shutdown {
            return Err(QueueFull {
                open: state.open,
                capacity: self.shared.capacity,
            });
        }
        state.open += 1;
        let handle = JobHandle::pending();
        state.jobs.push_back((Box::new(job), handle.clone()));
        stats::counter("exec.jobs_submitted").incr();
        drop(state);
        self.shared.work.notify_one();
        Ok(handle)
    }

    /// Unfinished jobs right now (queued + running).
    pub fn open_jobs(&self) -> usize {
        lock_unpoisoned(&self.shared.state).open
    }

    /// The admission bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Blocks until every admitted job has finished. New submissions are
    /// still accepted while draining; callers wanting a terminal drain stop
    /// producing first (the serve layer's `draining` flag).
    pub fn drain(&self) {
        let mut state = lock_unpoisoned(&self.shared.state);
        while state.open > 0 {
            state = self
                .shared
                .settled
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl<T> Drop for JobQueue<T> {
    fn drop(&mut self) {
        // Run any still-queued jobs inline if every worker thread failed to
        // spawn; otherwise let the workers finish the backlog.
        let inline: Vec<(Job<T>, JobHandle<T>)> = {
            let mut state = lock_unpoisoned(&self.shared.state);
            state.shutdown = true;
            if self.workers.is_empty() {
                state.jobs.drain(..).collect()
            } else {
                Vec::new()
            }
        };
        for (job, handle) in inline {
            run_job(&self.shared, job, handle);
        }
        self.shared.work.notify_all();
        for worker in self.workers.drain(..) {
            let _joined = worker.join();
        }
    }
}

fn run_job<T>(shared: &QueueShared<T>, job: Job<T>, handle: JobHandle<T>) {
    let result = panic::catch_unwind(AssertUnwindSafe(job))
        .map(Arc::new)
        .map_err(|payload| {
            stats::counter("exec.jobs_panicked").incr();
            JobPanicked {
                message: crate::pool::payload_message(payload),
            }
        });
    handle.fulfill(result);
    stats::counter("exec.jobs_finished").incr();
    let mut state = lock_unpoisoned(&shared.state);
    state.open = state.open.saturating_sub(1);
    drop(state);
    shared.settled.notify_all();
}

fn worker_loop<T>(shared: &QueueShared<T>) {
    loop {
        let mut state = lock_unpoisoned(&shared.state);
        loop {
            if let Some((job, handle)) = state.jobs.pop_front() {
                drop(state);
                run_job(shared, job, handle);
                break;
            }
            if state.shutdown {
                return;
            }
            state = shared
                .work
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn jobs_complete_and_handles_share_the_value() {
        let queue: JobQueue<String> = JobQueue::new(2, 4);
        let handle = queue.submit(|| "hello".to_string()).expect("room");
        let clone = handle.clone();
        assert_eq!(*handle.wait().expect("ok"), "hello");
        assert_eq!(*clone.wait().expect("ok"), "hello");
        assert!(clone.is_finished());
        assert_eq!(*clone.try_get().expect("done").expect("ok"), "hello");
    }

    #[test]
    fn ready_handles_behave_like_finished_jobs() {
        let handle = JobHandle::ready(7u64);
        assert!(handle.is_finished());
        assert_eq!(*handle.wait().expect("ok"), 7);
    }

    #[test]
    fn capacity_is_a_hard_bound_and_frees_up_after_completion() {
        let queue: JobQueue<u64> = JobQueue::new(1, 2);
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        let first = queue
            .submit(move || {
                g.wait();
                1
            })
            .expect("room");
        // The worker may or may not have picked up the first job; either way
        // both it and the second occupy capacity.
        let second = queue.submit(|| 2).expect("room");
        let err = queue.submit(|| 3).expect_err("full");
        assert_eq!(err.capacity, 2);
        assert_eq!(err.open, 2);
        gate.wait();
        assert_eq!(*first.wait().expect("ok"), 1);
        assert_eq!(*second.wait().expect("ok"), 2);
        queue.drain();
        assert_eq!(queue.open_jobs(), 0);
        let third = queue.submit(|| 3).expect("room again");
        assert_eq!(*third.wait().expect("ok"), 3);
    }

    #[test]
    fn panicking_jobs_resolve_handles_and_spare_the_workers() {
        let queue: JobQueue<u64> = JobQueue::new(1, 4);
        let bad = queue.submit(|| panic!("boom")).expect("room");
        let err = bad.wait().expect_err("panicked");
        assert_eq!(err.message, "boom");
        // The single worker survived the panic and serves the next job.
        let good = queue.submit(|| 5).expect("room");
        assert_eq!(*good.wait().expect("ok"), 5);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let queue: JobQueue<()> = JobQueue::new(1, 64);
            for _ in 0..32 {
                let ran = Arc::clone(&ran);
                queue
                    .submit(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("room");
            }
        }
        assert_eq!(ran.load(Ordering::Relaxed), 32, "drop must drain");
    }

    #[test]
    fn many_waiters_on_one_job_all_wake() {
        let queue: JobQueue<u64> = JobQueue::new(2, 4);
        let gate = Arc::new(Barrier::new(2));
        let g = Arc::clone(&gate);
        let handle = queue
            .submit(move || {
                g.wait();
                99
            })
            .expect("room");
        let waiters: Vec<_> = (0..8)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || *h.wait().expect("ok"))
            })
            .collect();
        gate.wait();
        for w in waiters {
            assert_eq!(w.join().expect("waiter"), 99);
        }
    }
}
