//! The work-stealing thread pool and its scoped fan-out API.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::stats::{self, lock_unpoisoned};

/// A type-erased unit of work. Tasks are created by [`Scope::spawn`], which
/// guarantees (by blocking in [`ThreadPool::scope`] until every task has
/// finished) that the erased `'scope` borrows never outlive their owners.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Sleep/wake bookkeeping shared between workers and spawners.
struct SleepState {
    shutdown: bool,
}

struct Shared {
    /// Per-worker deques. The owner pops newest-first from the back (cache
    /// warmth); thieves steal oldest-first from the front (largest remaining
    /// work under recursive splitting). Spawners deal round-robin.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed but not yet taken; checked before parking.
    pending: AtomicUsize,
    sleep: Mutex<SleepState>,
    wake: Condvar,
}

impl Shared {
    /// Takes one task: own queue first (back), then steal (front), scanning
    /// from `home + 1` so thieves spread instead of convoying.
    fn take(&self, home: usize) -> Option<Task> {
        let n = self.queues.len();
        if n == 0 {
            return None;
        }
        let own = home % n;
        if let Some(task) = lock_unpoisoned(&self.queues[own]).pop_back() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(task);
        }
        for off in 1..n {
            let victim = (own + off) % n;
            if let Some(task) = lock_unpoisoned(&self.queues[victim]).pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                stats::counter("exec.steals").incr();
                return Some(task);
            }
        }
        None
    }

    fn push(&self, slot: usize, task: Task) {
        let n = self.queues.len();
        debug_assert!(n > 0, "push on a pool without queues");
        lock_unpoisoned(&self.queues[slot % n]).push_back(task);
        self.pending.fetch_add(1, Ordering::AcqRel);
        // Notify under the sleep lock: a worker that just observed
        // `pending == 0` is either still holding the lock (will re-check) or
        // already parked (will get this notification) — no missed wakeups.
        let _guard = lock_unpoisoned(&self.sleep);
        self.wake.notify_one();
    }
}

/// A std-only work-stealing thread pool with deterministic, order-preserving
/// reduction.
///
/// See the [crate docs](crate) for the determinism contract. Dropping the
/// pool shuts the workers down and joins them.
///
/// # Examples
///
/// ```
/// use tvs_exec::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let data = vec![10, 20, 30];
/// let mut doubled = vec![0; 3];
/// pool.scope(|s| {
///     for (d, out) in data.iter().zip(doubled.iter_mut()) {
///         s.spawn(move || *out = d * 2);
///     }
/// });
/// assert_eq!(doubled, vec![20, 40, 60]);
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Round-robin dealing cursor for spawners.
    deal: AtomicUsize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Resolves the thread count to use when the caller gave none: the
/// `TVS_THREADS` environment variable if set and valid, else the machine's
/// available parallelism, else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TVS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ThreadPool {
    /// Creates a pool targeting `threads`-way parallelism (clamped to at
    /// least 1).
    ///
    /// `threads - 1` background workers are spawned; the thread calling
    /// [`scope`](Self::scope) or [`map`](Self::map) contributes as the final
    /// worker while it waits. `ThreadPool::new(1)` therefore spawns nothing
    /// and runs every task inline — the sequential fallback.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let background = threads - 1;
        let shared = Arc::new(Shared {
            // One queue per participant (workers + the scoping caller).
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            sleep: Mutex::new(SleepState { shutdown: false }),
            wake: Condvar::new(),
        });
        // If the OS refuses a thread, degrade to fewer workers instead of
        // aborting: the scoping caller always participates, so the pool stays
        // functional (merely narrower) with zero background workers.
        let workers = (0..background)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tvs-exec-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .ok()
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
            deal: AtomicUsize::new(0),
        }
    }

    /// Creates a pool with [`default_threads`]-way parallelism.
    pub fn with_default_threads() -> Self {
        ThreadPool::new(default_threads())
    }

    /// The parallelism this pool targets (including the scoping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] that can spawn borrowed work items, then
    /// blocks until every spawned item has finished — helping to execute
    /// queued items while it waits.
    ///
    /// If a work item panics, the panic is re-raised here (after all other
    /// items finished) instead of poisoning a worker: a panicking item fails
    /// the run, it never hangs the pool.
    pub fn scope<'pool, 'scope, F, R>(&'pool self, f: F) -> R
    where
        F: FnOnce(&Scope<'pool, 'scope>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                remaining: AtomicUsize::new(0),
                done: Mutex::new(()),
                done_cv: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _scope: PhantomData,
        };
        // Even if `f` itself panics we must wait for already-spawned tasks
        // before unwinding: their borrows die with our caller's frame.
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.help_until_done(&scope.state);
        if let Some(payload) = lock_unpoisoned(&scope.state.panic).take() {
            panic::resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Applies `f` to every item and returns the results **in input order**,
    /// regardless of which thread computed what. `f(i, &items[i])` must be a
    /// pure function of its arguments for the determinism guarantee to hold.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let f = &f;
        self.scope(|s| {
            for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
                s.spawn(move || *slot = Some(f(i, item)));
            }
        });
        out.into_iter()
            // scope() re-raises any task panic first, so every slot is
            // filled here. lint:allow(SRC005)
            .map(|r| r.expect("every spawned task completed"))
            .collect()
    }

    /// Like [`map`](Self::map), but panics inside `f` are captured instead of
    /// re-raised: the call returns the lowest panicking input index and its
    /// stringified payload as a [`TaskPanic`]. The lowest-index rule makes the
    /// reported failure deterministic at any thread count, which lets callers
    /// salvage partial results reproducibly.
    pub fn try_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, TaskPanic>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut out: Vec<Option<Result<R, String>>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let f = &f;
        if self.threads <= 1 || items.len() <= 1 {
            for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
                *slot = Some(
                    panic::catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(payload_message),
                );
            }
        } else {
            self.scope(|s| {
                for (i, (item, slot)) in items.iter().zip(out.iter_mut()).enumerate() {
                    s.spawn(move || {
                        *slot = Some(
                            panic::catch_unwind(AssertUnwindSafe(|| f(i, item)))
                                .map_err(payload_message),
                        );
                    });
                }
            });
        }
        let mut results = Vec::with_capacity(out.len());
        for (index, slot) in out.into_iter().enumerate() {
            match slot {
                Some(Ok(r)) => results.push(r),
                Some(Err(message)) => return Err(TaskPanic { index, message }),
                // Unreachable: the scope barrier fills every slot, and panics
                // inside `f` were already captured into the slot itself.
                None => unreachable!("every spawned task completed"),
            }
        }
        Ok(results)
    }

    /// Like [`map`](Self::map), but spawns one task per `chunk` consecutive
    /// items instead of one per item — the right granularity when individual
    /// items are cheap (e.g. 64-fault simulation words).
    pub fn map_chunked<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let chunk = chunk.max(1);
        if self.threads <= 1 || items.len() <= chunk {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
        out.resize_with(items.len(), || None);
        let f = &f;
        self.scope(|s| {
            for (c, (item_chunk, out_chunk)) in
                items.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
            {
                let base = c * chunk;
                s.spawn(move || {
                    for (j, (item, slot)) in item_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                    {
                        *slot = Some(f(base + j, item));
                    }
                });
            }
        });
        out.into_iter()
            // scope() re-raises any task panic first, so every slot is
            // filled here. lint:allow(SRC005)
            .map(|r| r.expect("every spawned task completed"))
            .collect()
    }

    fn push_task(&self, task: Task) {
        let slot = self.deal.fetch_add(1, Ordering::Relaxed);
        self.shared.push(slot, task);
    }

    /// The caller's side of the barrier: run queued tasks while any task of
    /// `state` is unfinished, then park on the scope's condvar.
    fn help_until_done(&self, state: &ScopeState) {
        // The caller steals from slot index `threads - 1` (its own dealing
        // slot also receives tasks, so this drains them first).
        let home = self.threads - 1;
        while state.remaining.load(Ordering::Acquire) != 0 {
            if let Some(task) = self.shared.take(home) {
                task();
                continue;
            }
            // Nothing to help with: the stragglers run on workers. Park
            // until a completion notifies us (re-check with a timeout to
            // cover the completion-before-park race).
            let guard = lock_unpoisoned(&state.done);
            if state.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            let _unused = state
                .done_cv
                .wait_timeout(guard, std::time::Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut sleep = lock_unpoisoned(&self.shared.sleep);
            sleep.shutdown = true;
            self.shared.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _joined = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    loop {
        if let Some(task) = shared.take(home) {
            task();
            continue;
        }
        let mut sleep = lock_unpoisoned(&shared.sleep);
        loop {
            if sleep.shutdown {
                return;
            }
            if shared.pending.load(Ordering::Acquire) > 0 {
                break;
            }
            sleep = match shared.wake.wait(sleep) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

/// A work item inside [`ThreadPool::try_map`] panicked.
///
/// Carries the *lowest* panicking input index (deterministic at any thread
/// count) and the stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// Input index of the lowest-index panicking item.
    pub index: usize,
    /// Stringified panic payload of that item.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Renders a panic payload as a human-readable string.
pub(crate) fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Completion tracking for one [`ThreadPool::scope`] invocation.
struct ScopeState {
    remaining: AtomicUsize,
    done: Mutex<()>,
    done_cv: Condvar,
    /// First panic payload raised by a work item, re-thrown by `scope`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`ThreadPool::scope`].
///
/// Work items may borrow anything that outlives the `scope` call (`'scope`),
/// because `scope` does not return until every item has finished.
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariance over `'scope`: prevents the compiler from shrinking the
    /// borrow to less than the full scope call.
    _scope: PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queues a work item on the pool.
    ///
    /// The item runs on an arbitrary pool thread (possibly the scoping
    /// caller itself). Panics inside the item are captured and re-raised by
    /// the enclosing [`ThreadPool::scope`] call.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.remaining.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = lock_unpoisoned(&state.panic);
                slot.get_or_insert(payload);
            }
            stats::counter("exec.tasks").incr();
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = lock_unpoisoned(&state.done);
                state.done_cv.notify_all();
            }
        });
        // SAFETY: `scope` blocks (in `help_until_done`) until `remaining`
        // reaches zero, i.e. until this closure has run to completion, and
        // does so even when the scope body or another item panics. The
        // `'scope` borrows inside the closure are therefore never used after
        // their owners die, which is exactly the guarantee `'static` erasure
        // needs. The invariant `PhantomData` on `Scope` keeps callers from
        // shrinking `'scope` below the duration of the `scope` call.
        let task: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
        self.pool.push_task(task);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn startup_and_shutdown_do_not_hang() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.threads(), threads);
            drop(pool);
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(&[1, 2, 3], |_, x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn map_preserves_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            assert_eq!(pool.map(&items, |_, x| x * x), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = vec![10u64, 20, 30, 40];
        let pool = ThreadPool::new(4);
        let out = pool.map(&items, |i, x| (i, *x));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn map_chunked_matches_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = ThreadPool::new(1).map(&items, |i, x| x + i as u64);
        for chunk in [1, 7, 64, 2000] {
            let pool = ThreadPool::new(4);
            assert_eq!(pool.map_chunked(&items, chunk, |i, x| x + i as u64), seq);
        }
    }

    #[test]
    fn scope_tasks_can_borrow_and_mutate_locals() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..100).collect();
        let mut out = vec![0u64; 100];
        pool.scope(|s| {
            for (d, slot) in data.iter().zip(out.iter_mut()) {
                s.spawn(move || *slot = d + 1);
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn panicking_task_fails_the_run_but_not_the_pool() {
        let pool = ThreadPool::new(4);
        let finished = AtomicU64::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..64 {
                    let finished = &finished;
                    s.spawn(move || {
                        if i == 13 {
                            panic!("boom");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "task panic must propagate out of scope");
        // All non-panicking siblings still ran (the barrier held).
        assert_eq!(finished.load(Ordering::Relaxed), 63);
        // The pool survives and keeps working.
        assert_eq!(pool.map(&[1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn panicking_scope_body_still_waits_for_spawned_tasks() {
        let pool = ThreadPool::new(4);
        let ran = AtomicU64::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..32 {
                    let ran = &ran;
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("scope body dies");
            });
        }));
        assert!(result.is_err());
        assert_eq!(
            ran.load(Ordering::Relaxed),
            32,
            "spawned tasks must complete"
        );
    }

    #[test]
    fn counters_are_accurate_under_parallel_increments() {
        // A name only this test touches: the count is exact even though the
        // registry is process-global and other tests run concurrently.
        let counter = stats::counter("test.pool.accuracy");
        let before = counter.get();
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..200).collect();
        let _sums = pool.map(&items, |_, x| {
            stats::counter("test.pool.accuracy").incr();
            x + 1
        });
        assert_eq!(counter.get() - before, 200);
        // The pool's own bookkeeping saw at least those 200 tasks (other
        // concurrently running tests may add more).
        assert!(stats::counter("exec.tasks").get() >= 200);
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let caller = std::thread::current().id();
        let ids = pool.map(&[1u64, 2, 3], |_, _| std::thread::current().id());
        assert!(
            ids.iter().all(|&id| id == caller),
            "threads=1 must run on the caller"
        );
    }

    #[test]
    fn multiple_concurrent_panics_reraise_one_payload_without_deadlock() {
        let pool = ThreadPool::new(4);
        let started = stats::counter("test.pool.multipanic");
        let before = started.get();
        let finished = AtomicU64::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..64u64 {
                    let finished = &finished;
                    s.spawn(move || {
                        stats::counter("test.pool.multipanic").incr();
                        if i % 8 == 0 {
                            panic!("boom #{i}");
                        }
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        // One of the eight payloads (the first to be captured) is re-raised.
        let payload = result.expect_err("concurrent panics must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            message.starts_with("boom #"),
            "re-raised payload must come from a panicking item, got {message:?}"
        );
        // The barrier held: every non-panicking sibling still ran, and every
        // task (panicking or not) advanced the counter — no lost bookkeeping.
        assert_eq!(finished.load(Ordering::Relaxed), 56);
        assert_eq!(started.get() - before, 64);
        // The pool survives and keeps working.
        assert_eq!(pool.map(&[1, 2, 3], |_, x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn try_map_reports_the_lowest_panicking_index_at_any_thread_count() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let items: Vec<usize> = (0..50).collect();
            let err = pool
                .try_map(&items, |i, &x| {
                    if x % 7 == 3 {
                        panic!("item {i} failed");
                    }
                    x * 2
                })
                .expect_err("panicking items must surface as TaskPanic");
            assert_eq!(err.index, 3, "threads={threads}");
            assert_eq!(err.message, "item 3 failed");
            // No panic: results come back in order, and the pool is fine.
            let ok = pool.try_map(&items, |_, &x| x + 1);
            assert_eq!(ok, Ok((1..=50).collect()));
        }
    }

    #[test]
    fn nested_scopes_complete() {
        let pool = ThreadPool::new(4);
        let total = AtomicU64::new(0);
        pool.scope(|outer| {
            for _ in 0..8 {
                let total = &total;
                let pool = &pool;
                outer.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }
}
