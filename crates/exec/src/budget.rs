//! Deterministic work budgets.
//!
//! A [`Budget`] bounds how much *work* a pipeline stage may perform, measured
//! in abstract work units — PODEM backtracks, fault-simulation slots, stitch
//! cycles — never wall-clock time (clock reads are deny-linted by SRC002 and
//! would break bit-identical reproducibility). Charges are computed on the
//! caller side at stage barriers from input sizes and sequentially observed
//! counters, so the amount charged is identical at any worker-thread count.
//!
//! Budgets are checked at stage boundaries: the stage that crosses the limit
//! is allowed to complete, and the *next* boundary observes exhaustion. An
//! exhausted budget never aborts the process — callers surface a typed
//! `Exhausted` outcome carrying whatever partial results were salvaged.

/// A deterministic work budget measured in work units.
///
/// # Examples
///
/// ```
/// use tvs_exec::Budget;
///
/// let mut budget = Budget::limited(10);
/// budget.charge(4);
/// assert!(!budget.exhausted());
/// budget.charge(7);
/// assert!(budget.exhausted());
/// assert_eq!(budget.spent(), 11);
/// assert_eq!(budget.remaining(), 0);
///
/// let mut open = Budget::unlimited();
/// open.charge(u64::MAX);
/// assert!(!open.exhausted());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    limit: Option<u64>,
    spent: u64,
}

impl Budget {
    /// A budget that never exhausts.
    pub fn unlimited() -> Self {
        Budget {
            limit: None,
            spent: 0,
        }
    }

    /// A budget of `limit` work units.
    pub fn limited(limit: u64) -> Self {
        Budget {
            limit: Some(limit),
            spent: 0,
        }
    }

    /// A budget from an optional limit (`None` = unlimited) — the shape
    /// configuration structs carry.
    pub fn from_limit(limit: Option<u64>) -> Self {
        Budget { limit, spent: 0 }
    }

    /// Rebuilds a budget that has already spent `spent` units — used when
    /// resuming from a checkpoint so the resumed run charges from the same
    /// baseline as the uninterrupted one.
    pub fn with_spent(limit: Option<u64>, spent: u64) -> Self {
        Budget { limit, spent }
    }

    /// Records `units` of completed work. Saturates instead of wrapping.
    pub fn charge(&mut self, units: u64) {
        self.spent = self.spent.saturating_add(units);
    }

    /// True once the spent units meet or exceed the limit.
    pub fn exhausted(&self) -> bool {
        match self.limit {
            Some(limit) => self.spent >= limit,
            None => false,
        }
    }

    /// Work units charged so far.
    pub fn spent(&self) -> u64 {
        self.spent
    }

    /// Units left before exhaustion (`u64::MAX` when unlimited).
    pub fn remaining(&self) -> u64 {
        match self.limit {
            Some(limit) => limit.saturating_sub(self.spent),
            None => u64::MAX,
        }
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let mut b = Budget::unlimited();
        b.charge(u64::MAX);
        b.charge(u64::MAX);
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), u64::MAX);
        assert_eq!(b.limit(), None);
    }

    #[test]
    fn limited_exhausts_at_the_boundary() {
        let mut b = Budget::limited(5);
        b.charge(4);
        assert!(!b.exhausted());
        assert_eq!(b.remaining(), 1);
        b.charge(1);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn charge_saturates() {
        let mut b = Budget::limited(10);
        b.charge(u64::MAX);
        b.charge(u64::MAX);
        assert_eq!(b.spent(), u64::MAX);
        assert!(b.exhausted());
    }

    #[test]
    fn with_spent_restores_progress() {
        let b = Budget::with_spent(Some(100), 42);
        assert_eq!(b.spent(), 42);
        assert_eq!(b.remaining(), 58);
        assert!(!b.exhausted());
    }
}
