//! Deterministic fault-injection points for chaos testing.
//!
//! Library code plants named *injection points* at interesting failure sites
//! (`inject::fire("stitch.sim.batch")`); chaos tests arm those sites with a
//! [`Trigger`] and assert that the forced failure degrades into a typed error
//! or a salvaged partial result — never a process abort. In release builds
//! every entry point here compiles to a no-op that reports "not armed", so
//! shipping code pays nothing for the instrumentation.
//!
//! Determinism contract: sites are keyed either by a *sequential hit counter*
//! ([`fire`]) that callers must advance from exactly one thread (fire on the
//! caller side of a parallel barrier, then pass the decision into workers),
//! or by an explicit *caller-supplied key* ([`fire_at`], [`flip_bit`]) such
//! as a fault index. Both schemes make an injected failure land on the same
//! logical work item at any worker-thread count.

#[cfg(debug_assertions)]
use std::collections::BTreeMap;
#[cfg(debug_assertions)]
use std::sync::{Mutex, OnceLock, PoisonError};

/// When an armed site actually fires: hits `after..after + count` trigger
/// (zero-based), all others pass through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// Number of hits (or keys, for keyed sites) to let through untouched.
    pub after: u64,
    /// Number of consecutive hits that fire once the window opens.
    pub count: u64,
}

impl Trigger {
    /// Fire on every hit — an injection "storm".
    pub fn always() -> Self {
        Trigger {
            after: 0,
            count: u64::MAX,
        }
    }

    /// Fire exactly once, on the `n`-th hit (zero-based).
    pub fn once_at(n: u64) -> Self {
        Trigger { after: n, count: 1 }
    }

    #[cfg(debug_assertions)]
    fn covers(&self, hit: u64) -> bool {
        hit >= self.after && hit - self.after < self.count
    }
}

#[cfg(debug_assertions)]
struct Site {
    trigger: Trigger,
    hits: u64,
    fired: u64,
}

#[cfg(debug_assertions)]
fn registry() -> &'static Mutex<BTreeMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

#[cfg(debug_assertions)]
fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, Site>) -> R) -> R {
    // A panicking test can poison this lock by design (panic_now fires while
    // it is not held, but a failed assertion between arm/disarm might); the
    // map itself is always consistent, so recover instead of cascading.
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// Arms `site` with `trigger`. Re-arming resets the hit counters. No-op in
/// release builds.
pub fn arm(site: &str, trigger: Trigger) {
    #[cfg(debug_assertions)]
    with_registry(|map| {
        map.insert(
            site.to_owned(),
            Site {
                trigger,
                hits: 0,
                fired: 0,
            },
        );
    });
    #[cfg(not(debug_assertions))]
    {
        let _ = (site, trigger);
    }
}

/// Disarms every site and clears all counters. Chaos tests call this before
/// and after each scenario so sites never leak between tests.
pub fn disarm_all() {
    #[cfg(debug_assertions)]
    with_registry(|map| map.clear());
}

/// Advances `site`'s sequential hit counter and reports whether this hit
/// falls inside the armed trigger window. Always `false` when the site is
/// not armed, and always `false` in release builds.
///
/// Call this from exactly one thread per pipeline (typically the caller side
/// of a parallel barrier) so the hit sequence is deterministic.
pub fn fire(site: &str) -> bool {
    #[cfg(debug_assertions)]
    {
        with_registry(|map| match map.get_mut(site) {
            Some(s) => {
                let hit = s.hits;
                s.hits += 1;
                let firing = s.trigger.covers(hit);
                if firing {
                    s.fired += 1;
                }
                firing
            }
            None => false,
        })
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = site;
        false
    }
}

/// Like [`fire`], but stateless with respect to ordering: the trigger window
/// is evaluated against the caller-supplied `key` (e.g. a fault index)
/// instead of a hit counter, so the decision is identical no matter how work
/// items are scheduled.
pub fn fire_at(site: &str, key: u64) -> bool {
    #[cfg(debug_assertions)]
    {
        with_registry(|map| match map.get_mut(site) {
            Some(s) => {
                let firing = s.trigger.covers(key);
                if firing {
                    s.fired += 1;
                }
                firing
            }
            None => false,
        })
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (site, key);
        false
    }
}

/// For an armed corruption site, returns the bit position to flip in a
/// `len`-bit word identified by `key` — a deterministic pseudo-random
/// function of `(site, key)` — or `None` when the site is not armed, the
/// key is outside the trigger window, `len` is zero, or this is a release
/// build.
pub fn flip_bit(site: &str, key: u64, len: usize) -> Option<usize> {
    #[cfg(debug_assertions)]
    {
        if len == 0 || !fire_at(site, key) {
            return None;
        }
        let mut x = key ^ 0x9e37_79b9_7f4a_7c15;
        for b in site.bytes() {
            x = (x ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        // SplitMix64 finalizer for good low-bit diffusion.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        Some((x % len as u64) as usize)
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (site, key, len);
        None
    }
}

/// Number of times `site` actually fired since it was last armed (always 0
/// in release builds or for unarmed sites).
pub fn fired_count(site: &str) -> u64 {
    #[cfg(debug_assertions)]
    {
        with_registry(|map| map.get(site).map_or(0, |s| s.fired))
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = site;
        0
    }
}

/// Panics with a recognizable message for an injected failure. Only ever
/// reached behind a [`fire`] decision, so release builds never hit it.
pub fn panic_now(site: &str) -> ! {
    panic!("{}", panic_message(site));
}

/// The panic payload [`panic_now`] raises for `site` — chaos tests match
/// salvaged error messages against this.
pub fn panic_message(site: &str) -> String {
    format!("injected failure at {site}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock, PoisonError};

    // The registry is process-global; tests in this module serialize on it.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let _guard = locked();
        disarm_all();
        assert!(!fire("nope"));
        assert!(!fire_at("nope", 7));
        assert_eq!(flip_bit("nope", 0, 8), None);
        assert_eq!(fired_count("nope"), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    fn sequential_trigger_window() {
        let _guard = locked();
        disarm_all();
        arm("t.seq", Trigger { after: 2, count: 2 });
        let hits: Vec<bool> = (0..5).map(|_| fire("t.seq")).collect();
        assert_eq!(hits, vec![false, false, true, true, false]);
        assert_eq!(fired_count("t.seq"), 2);
        disarm_all();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn keyed_trigger_is_order_independent() {
        let _guard = locked();
        disarm_all();
        arm("t.key", Trigger::once_at(3));
        assert!(!fire_at("t.key", 5));
        assert!(fire_at("t.key", 3));
        assert!(!fire_at("t.key", 0));
        assert!(fire_at("t.key", 3));
        disarm_all();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn flip_bit_is_deterministic_and_in_range() {
        let _guard = locked();
        disarm_all();
        arm("t.flip", Trigger::always());
        let a = flip_bit("t.flip", 11, 64);
        let b = flip_bit("t.flip", 11, 64);
        assert_eq!(a, b);
        assert!(a.is_some_and(|bit| bit < 64));
        assert_eq!(flip_bit("t.flip", 11, 0), None);
        disarm_all();
    }

    #[test]
    #[cfg(debug_assertions)]
    fn rearming_resets_counters() {
        let _guard = locked();
        disarm_all();
        arm("t.rearm", Trigger::once_at(0));
        assert!(fire("t.rearm"));
        assert!(!fire("t.rearm"));
        arm("t.rearm", Trigger::once_at(0));
        assert!(fire("t.rearm"));
        disarm_all();
    }
}
